/root/repo/target/debug/examples/time_bounded-979ade851979d1ce.d: examples/time_bounded.rs

/root/repo/target/debug/examples/time_bounded-979ade851979d1ce: examples/time_bounded.rs

examples/time_bounded.rs:
