/root/repo/target/debug/deps/rustc_hash-f5258a29d13edb7e.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/rustc_hash-f5258a29d13edb7e: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
