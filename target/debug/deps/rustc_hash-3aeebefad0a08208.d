/root/repo/target/debug/deps/rustc_hash-3aeebefad0a08208.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-3aeebefad0a08208.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
