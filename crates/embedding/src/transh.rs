//! TransH (Wang et al., AAAI 2014), cited by the paper among the embedding
//! family (§IV-A \[57\]).
//!
//! TransH translates on a relation-specific hyperplane: entities are first
//! projected, `h⊥ = h − (wᵣᵀh)wᵣ`, then the TransE objective applies between
//! projections: `h⊥ + dᵣ ≈ t⊥`. This lets one entity participate in many
//! relations with different roles (1-N / N-1 relations), which plain TransE
//! conflates.

use crate::model::{row, row_mut, xavier_init, IdxTriple, KgeModel};
use crate::vector;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// TransH parameters: entity matrix plus per-relation (normal `w`,
/// translation `d`) pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransH {
    dim: usize,
    entities: Vec<f32>,
    /// Relation translation vectors `dᵣ`.
    translations: Vec<f32>,
    /// Relation hyperplane normals `wᵣ` (kept unit-norm).
    normals: Vec<f32>,
}

impl TransH {
    fn project(&self, e: usize, r: usize, out: &mut [f32]) {
        let ev = row(&self.entities, self.dim, e);
        let wv = row(&self.normals, self.dim, r);
        let c = vector::dot(wv, ev);
        for i in 0..self.dim {
            out[i] = ev[i] - c * wv[i];
        }
    }

    /// `h⊥ + d − t⊥` into `out`.
    fn delta(&self, (h, r, t): IdxTriple, out: &mut [f32]) {
        let mut hp = vec![0.0; self.dim];
        let mut tp = vec![0.0; self.dim];
        self.project(h, r, &mut hp);
        self.project(t, r, &mut tp);
        let dv = row(&self.translations, self.dim, r);
        for i in 0..self.dim {
            out[i] = hp[i] + dv[i] - tp[i];
        }
    }

    fn entity_count(&self) -> usize {
        self.entities.len() / self.dim
    }

    fn relation_count(&self) -> usize {
        self.translations.len() / self.dim
    }
}

impl KgeModel for TransH {
    fn init(n_entities: usize, n_relations: usize, dim: usize, rng: &mut StdRng) -> Self {
        let entities = xavier_init(dim, n_entities * dim, rng);
        let mut translations = xavier_init(dim, n_relations * dim, rng);
        let mut normals = xavier_init(dim, n_relations * dim, rng);
        for r in 0..n_relations {
            vector::normalize(row_mut(&mut translations, dim, r));
            vector::normalize(row_mut(&mut normals, dim, r));
        }
        Self {
            dim,
            entities,
            translations,
            normals,
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, triple: IdxTriple) -> f32 {
        let mut d = vec![0.0; self.dim];
        self.delta(triple, &mut d);
        -vector::dot(&d, &d)
    }

    fn sgd_step(&mut self, pos: IdxTriple, neg: IdxTriple, lr: f32, margin: f32) -> f32 {
        let mut dp = vec![0.0; self.dim];
        let mut dn = vec![0.0; self.dim];
        self.delta(pos, &mut dp);
        self.delta(neg, &mut dn);
        let loss = margin + vector::dot(&dp, &dp) - vector::dot(&dn, &dn);
        if loss <= 0.0 {
            return 0.0;
        }
        // Approximate gradient: treat the hyperplane normals as constants for
        // the entity/translation update (the dominant terms), then take an
        // explicit step on the normals through the projection term. This is
        // the standard simplification used by open-source TransH trainers.
        let step = 2.0 * lr;
        for (sign, (h, r, t), d) in [(1.0f32, pos, &dp), (-1.0f32, neg, &dn)] {
            let w = row(&self.normals, self.dim, r).to_vec();
            // ∂Δ/∂h = I − wwᵀ ⇒ grad_h = s·(Δ − (wᵀΔ)w)
            let c = vector::dot(&w, d);
            let mut proj_grad = d.clone();
            vector::axpy(&mut proj_grad, -c, &w);
            vector::axpy(
                row_mut(&mut self.entities, self.dim, h),
                -sign * step,
                &proj_grad,
            );
            vector::axpy(
                row_mut(&mut self.entities, self.dim, t),
                sign * step,
                &proj_grad,
            );
            vector::axpy(
                row_mut(&mut self.translations, self.dim, r),
                -sign * step,
                d,
            );
            // ∂Δ/∂w ≈ −(wᵀ(h−t))·(h−t direction) term; fold into one step.
            let hv = row(&self.entities, self.dim, h).to_vec();
            let tv = row(&self.entities, self.dim, t).to_vec();
            let mut ht = hv;
            vector::axpy(&mut ht, -1.0, &tv);
            let c2 = vector::dot(&w, &ht);
            let mut wgrad = vec![0.0; self.dim];
            // grad_w of Δ·Δ where Δ depends on w through −(wᵀh)w + (wᵀt)w:
            // ≈ −2( (Δᵀw)(h−t) + (Δᵀ(h−t))w ) — symmetric simplification.
            vector::axpy(&mut wgrad, -(c), &ht);
            vector::axpy(&mut wgrad, -(c2), d);
            // The normal update uses a damped step and an immediate
            // re-normalisation: the approximate gradient is unstable at the
            // learning rates that suit the entity/translation parameters.
            let wrow = row_mut(&mut self.normals, self.dim, r);
            vector::axpy(wrow, -sign * step * 0.1, &wgrad);
            vector::normalize(wrow);
        }
        loss
    }

    fn constrain(&mut self) {
        for e in 0..self.entity_count() {
            vector::project_to_unit_ball(row_mut(&mut self.entities, self.dim, e));
        }
        for r in 0..self.relation_count() {
            vector::normalize(row_mut(&mut self.normals, self.dim, r));
        }
    }

    fn relation_embedding(&self, r: usize) -> &[f32] {
        row(&self.translations, self.dim, r)
    }

    fn entity_embedding(&self, e: usize) -> &[f32] {
        row(&self.entities, self.dim, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> TransH {
        let mut rng = StdRng::seed_from_u64(11);
        TransH::init(6, 3, 8, &mut rng)
    }

    #[test]
    fn init_constraints() {
        let m = model();
        for r in 0..3 {
            assert!((vector::norm(row(&m.normals, m.dim, r)) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn training_reduces_positive_distance() {
        let mut m = model();
        let pos = (0, 0, 1);
        let neg = (0, 0, 2);
        let before = -m.score(pos);
        for _ in 0..80 {
            m.sgd_step(pos, neg, 0.02, 1.0);
            m.constrain();
        }
        let after = -m.score(pos);
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn projection_is_orthogonal_to_normal() {
        let m = model();
        let mut p = vec![0.0; m.dim];
        m.project(0, 1, &mut p);
        let w = row(&m.normals, m.dim, 1);
        assert!(vector::dot(&p, w).abs() < 1e-4);
    }

    #[test]
    fn score_negative() {
        let m = model();
        assert!(m.score((1, 2, 3)) <= 0.0);
    }
}
