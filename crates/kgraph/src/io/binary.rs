//! Binary snapshot codec for the frozen CSR graph.
//!
//! The JSON snapshot path re-parses every number through a text
//! representation; on paper-scale graphs (millions of edges) that dominates
//! cold-start time. This format instead dumps the interner tables and the
//! CSR arrays as checksummed little-endian sections, so reload is a bulk
//! byte copy plus O(n) lookup-table rebuilds — ≥10× faster than JSON on a
//! 100k-edge graph (measured in `benches/cold_start.rs`).
//!
//! ## File layout
//!
//! ```text
//! magic    8 bytes   "KGBSNAP1"
//! version  u32       format version (currently 1)
//! epoch    u64       versioned-store epoch the snapshot was taken at
//!                    (0 for a plain frozen graph)
//! count    u32       number of sections
//! section* :
//!   tag      u8      section id (see `tag::*`)
//!   len      u64     payload byte length
//!   payload  len bytes
//!   checksum u64     checksum (see [`super::codec::checksum64`]) of the payload
//! ```
//!
//! Sections: the three interners (`u32` string count, then length-prefixed
//! UTF-8 strings), the node arrays, the edge records (`src,dst,predicate`
//! interleaved), the four CSR arrays, and a trailing metadata section. All
//! integers are little-endian. Unknown *trailing* sections are ignored so
//! version-1 readers tolerate additive extensions.
//!
//! The reader *streams*: each section's payload passes through one reused
//! buffer and is decoded into its typed form before the next section is
//! read, so cold start's peak transient memory is ~one section rather than
//! a full second copy of the file ([`LoadStats::peak_buffer_bytes`] reports
//! the high-water mark).

use super::codec::{checksum64, put_str, put_u32, put_u32_array, put_u64, Cursor};
use crate::error::{KgError, Result};
use crate::graph::{EdgeRecord, KnowledgeGraph};
use crate::ids::{EdgeId, NodeId, PredicateId, TypeId};
use crate::interner::Interner;
use std::io::{Read, Write};
use std::path::Path;

/// File magic, followed by the `u32` format version.
pub const MAGIC: &[u8; 8] = b"KGBSNAP1";
/// Current format version.
pub const VERSION: u32 = 1;

mod tag {
    pub const NAMES: u8 = 1;
    pub const TYPES: u8 = 2;
    pub const PREDICATES: u8 = 3;
    pub const NODE_NAME: u8 = 4;
    pub const NODE_TYPE: u8 = 5;
    pub const EDGES: u8 = 6;
    pub const OUT_OFFSETS: u8 = 7;
    pub const OUT_EDGES: u8 = 8;
    pub const IN_OFFSETS: u8 = 9;
    pub const IN_EDGES: u8 = 10;
    pub const META: u8 = 11;
}

pub(crate) fn encode_interner(interner: &Interner) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, interner.len() as u32);
    for (_, s) in interner.iter() {
        put_str(&mut out, s);
    }
    out
}

pub(crate) fn decode_interner(payload: &[u8], what: &str) -> std::result::Result<Interner, String> {
    let mut c = Cursor::new(payload);
    let n = c.u32(what)? as usize;
    let mut strings = Vec::with_capacity(n.min(payload.len()));
    for _ in 0..n {
        strings.push(Box::<str>::from(c.str(what)?));
    }
    if c.remaining() != 0 {
        return Err(format!("{what}: {} trailing bytes", c.remaining()));
    }
    Interner::from_strings(strings).ok_or_else(|| format!("{what}: duplicate interned string"))
}

/// Serializes `graph` (tagged with `epoch`) to `writer`.
pub fn write_graph<W: Write>(mut writer: W, graph: &KnowledgeGraph, epoch: u64) -> Result<()> {
    let sections: Vec<(u8, Vec<u8>)> = {
        let mut s = Vec::with_capacity(11);
        s.push((tag::NAMES, encode_interner(&graph.names)));
        s.push((tag::TYPES, encode_interner(&graph.types)));
        s.push((tag::PREDICATES, encode_interner(&graph.predicates)));
        let mut node_name = Vec::new();
        put_u32_array(&mut node_name, graph.node_name.iter().copied());
        s.push((tag::NODE_NAME, node_name));
        let mut node_type = Vec::new();
        put_u32_array(&mut node_type, graph.node_type.iter().map(|t| t.0));
        s.push((tag::NODE_TYPE, node_type));
        let mut edges = Vec::new();
        put_u32(&mut edges, graph.edges.len() as u32);
        for e in &graph.edges {
            put_u32(&mut edges, e.src.0);
            put_u32(&mut edges, e.dst.0);
            put_u32(&mut edges, e.predicate.0);
        }
        s.push((tag::EDGES, edges));
        for (t, vals) in [
            (tag::OUT_OFFSETS, &graph.out_offsets),
            (tag::IN_OFFSETS, &graph.in_offsets),
        ] {
            let mut out = Vec::new();
            put_u32_array(&mut out, vals.iter().copied());
            s.push((t, out));
        }
        for (t, vals) in [
            (tag::OUT_EDGES, &graph.out_edges),
            (tag::IN_EDGES, &graph.in_edges),
        ] {
            let mut out = Vec::new();
            put_u32_array(&mut out, vals.iter().map(|e| e.0));
            s.push((t, out));
        }
        let mut meta = Vec::new();
        put_u64(&mut meta, graph.duplicate_edges_dropped as u64);
        s.push((tag::META, meta));
        s
    };

    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(MAGIC);
    put_u32(&mut header, VERSION);
    put_u64(&mut header, epoch);
    put_u32(&mut header, sections.len() as u32);
    writer.write_all(&header)?;
    for (t, payload) in &sections {
        let mut frame = Vec::with_capacity(payload.len() + 17);
        frame.push(*t);
        put_u64(&mut frame, payload.len() as u64);
        frame.extend_from_slice(payload);
        put_u64(&mut frame, checksum64(payload));
        writer.write_all(&frame)?;
    }
    writer.flush()?;
    Ok(())
}

/// Counters of one streamed snapshot read (see [`load_with_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Bytes consumed from the reader (header + section frames).
    pub bytes_read: u64,
    /// Sections encountered, including skipped unknown trailing tags.
    pub sections: usize,
    /// High-water mark of the reused section buffer — the streamed read's
    /// peak transient allocation. The pre-streaming loader buffered the
    /// whole file (`bytes_read`) before decoding; this is ~one section.
    pub peak_buffer_bytes: usize,
}

/// Internal streamed-read failure, split so [`read_graph`] can preserve the
/// historical error classification: malformed/truncated bytes surface as
/// [`KgError::Serde`] (what decoding a fully-buffered file produced), real
/// device errors as [`KgError::Io`].
enum StreamError {
    Io(std::io::Error),
    Decode(String),
}

impl From<String> for StreamError {
    fn from(detail: String) -> Self {
        StreamError::Decode(detail)
    }
}

impl StreamError {
    fn into_detail(self) -> String {
        match self {
            StreamError::Io(e) => e.to_string(),
            StreamError::Decode(d) => d,
        }
    }
}

/// An EOF mid-field is a truncated file (a decode problem), not a device
/// failure.
fn io_error(e: std::io::Error, what: &str) -> StreamError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StreamError::Decode(format!("{what}: unexpected end of file"))
    } else {
        StreamError::Io(e)
    }
}

fn read_u32<R: std::io::Read>(r: &mut R, what: &str) -> std::result::Result<u32, StreamError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|e| io_error(e, what))?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: std::io::Read>(r: &mut R, what: &str) -> std::result::Result<u64, StreamError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| io_error(e, what))?;
    Ok(u64::from_le_bytes(b))
}

fn decode_u32_array(payload: &[u8], what: &str) -> std::result::Result<Vec<u32>, String> {
    let mut c = Cursor::new(payload);
    let vals = c.u32_array(what)?;
    if c.remaining() != 0 {
        return Err(format!("{what}: {} trailing bytes", c.remaining()));
    }
    Ok(vals)
}

/// Sections decoded so far during a streamed read. Each known tag is decoded
/// into its typed form the moment its payload passes the checksum, so the
/// raw bytes never outlive the reused section buffer; a duplicated tag
/// last-wins (as the pre-streaming map-based decoder did) and unknown
/// trailing tags are skipped for additive extensions.
#[derive(Default)]
struct Sections {
    names: Option<Interner>,
    types: Option<Interner>,
    predicates: Option<Interner>,
    node_name: Option<Vec<u32>>,
    node_type: Option<Vec<TypeId>>,
    edges: Option<Vec<EdgeRecord>>,
    out_offsets: Option<Vec<u32>>,
    out_edges: Option<Vec<EdgeId>>,
    in_offsets: Option<Vec<u32>>,
    in_edges: Option<Vec<EdgeId>>,
    duplicate_edges_dropped: Option<usize>,
}

impl Sections {
    fn decode(&mut self, t: u8, payload: &[u8]) -> std::result::Result<(), String> {
        match t {
            tag::NAMES => self.names = Some(decode_interner(payload, "names")?),
            tag::TYPES => self.types = Some(decode_interner(payload, "types")?),
            tag::PREDICATES => {
                self.predicates = Some(decode_interner(payload, "predicates")?);
            }
            tag::NODE_NAME => self.node_name = Some(decode_u32_array(payload, "node names")?),
            tag::NODE_TYPE => {
                self.node_type = Some(
                    decode_u32_array(payload, "node types")?
                        .into_iter()
                        .map(TypeId::new)
                        .collect(),
                );
            }
            tag::EDGES => {
                let mut c = Cursor::new(payload);
                let m = c.u32("edge count")? as usize;
                // checked_mul: a corrupt count must not wrap usize into a
                // small in-bounds read on 32-bit targets.
                let byte_len = m
                    .checked_mul(12)
                    .ok_or_else(|| format!("corrupt edge count {m}: byte length overflows"))?;
                let raw = c.take(byte_len, "edge records")?;
                if c.remaining() != 0 {
                    return Err(format!("edges: {} trailing bytes", c.remaining()));
                }
                self.edges = Some(
                    raw.chunks_exact(12)
                        .map(|rec| EdgeRecord {
                            src: NodeId::new(u32::from_le_bytes(rec[0..4].try_into().unwrap())), // lint-ok(panic-freedom): chunks_exact(12) yields exactly 12-byte records; the sub-slices are 4 bytes
                            dst: NodeId::new(u32::from_le_bytes(rec[4..8].try_into().unwrap())), // lint-ok(panic-freedom): chunks_exact(12) yields exactly 12-byte records; the sub-slices are 4 bytes
                            predicate: PredicateId::new(u32::from_le_bytes(
                                rec[8..12].try_into().unwrap(), // lint-ok(panic-freedom): chunks_exact(12) yields exactly 12-byte records; the sub-slices are 4 bytes
                            )),
                        })
                        .collect::<Vec<_>>(),
                );
            }
            tag::OUT_OFFSETS => {
                self.out_offsets = Some(decode_u32_array(payload, "out offsets")?);
            }
            tag::IN_OFFSETS => self.in_offsets = Some(decode_u32_array(payload, "in offsets")?),
            tag::OUT_EDGES => {
                self.out_edges = Some(
                    decode_u32_array(payload, "out edges")?
                        .into_iter()
                        .map(EdgeId::new)
                        .collect(),
                );
            }
            tag::IN_EDGES => {
                self.in_edges = Some(
                    decode_u32_array(payload, "in edges")?
                        .into_iter()
                        .map(EdgeId::new)
                        .collect(),
                );
            }
            tag::META => {
                let mut c = Cursor::new(payload);
                self.duplicate_edges_dropped = Some(c.u64("duplicate edge count")? as usize);
            }
            _ => {} // unknown trailing section: tolerated, skipped
        }
        Ok(())
    }
}

/// Streams a snapshot from `reader`: header, then one section at a time
/// through a single reused buffer, decoding each known section into typed
/// form before the next one is read — peak transient memory is ~one section
/// instead of the whole file.
fn stream_graph<R: std::io::Read>(
    reader: &mut R,
) -> std::result::Result<(KnowledgeGraph, u64, LoadStats), StreamError> {
    let mut stats = LoadStats::default();
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|e| io_error(e, "magic"))?;
    if &magic != MAGIC {
        return Err(StreamError::Decode(format!(
            "bad magic {magic:02x?} (expected {MAGIC:02x?})"
        )));
    }
    let version = read_u32(reader, "format version")?;
    if version != VERSION {
        return Err(StreamError::Decode(format!(
            "unsupported format version {version}"
        )));
    }
    let epoch = read_u64(reader, "epoch")?;
    let section_count = read_u32(reader, "section count")? as usize;
    stats.bytes_read = 24;

    let mut buf: Vec<u8> = Vec::new();
    let mut sections = Sections::default();
    for _ in 0..section_count {
        let mut tb = [0u8; 1];
        reader
            .read_exact(&mut tb)
            .map_err(|e| io_error(e, "section tag"))?;
        let t = tb[0];
        let len = read_u64(reader, "section length")?;
        buf.clear();
        // Pre-size to the declared length (capped, so a corrupt huge `len`
        // cannot trigger an absurd allocation) — `read_to_end` then fills
        // the exact capacity instead of doubling past it, keeping the peak
        // buffer at ~the largest section. `take` bounds the read itself: a
        // short section surfaces as the truncation error below.
        const PREALLOC_CAP: usize = 1 << 26; // 64 MiB
        buf.reserve_exact((len as usize).min(PREALLOC_CAP));
        let got = reader
            .take(len)
            .read_to_end(&mut buf)
            .map_err(StreamError::Io)?;
        if got as u64 != len {
            return Err(StreamError::Decode(format!(
                "section {t}: truncated payload ({got} of {len} bytes)"
            )));
        }
        let stored = read_u64(reader, "section checksum")?;
        let actual = checksum64(&buf);
        if stored != actual {
            return Err(StreamError::Decode(format!(
                "section {t}: checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
        sections.decode(t, &buf)?;
        stats.sections += 1;
        stats.bytes_read += 9 + len + 8;
        stats.peak_buffer_bytes = stats.peak_buffer_bytes.max(buf.capacity());
    }
    let (graph, epoch) = assemble_graph(sections, epoch)?;
    Ok((graph, epoch, stats))
}

/// Assembles and cross-validates the decoded sections into a
/// [`KnowledgeGraph`]. Returns `(graph, epoch)` or a detail string (no path
/// context — the caller adds it).
fn assemble_graph(
    sections: Sections,
    epoch: u64,
) -> std::result::Result<(KnowledgeGraph, u64), String> {
    fn missing(t: u8, what: &str) -> String {
        format!("missing section {t} ({what})")
    }
    let names = sections.names.ok_or_else(|| missing(tag::NAMES, "names"))?;
    let types = sections.types.ok_or_else(|| missing(tag::TYPES, "types"))?;
    let predicates = sections
        .predicates
        .ok_or_else(|| missing(tag::PREDICATES, "predicates"))?;
    let node_name = sections
        .node_name
        .ok_or_else(|| missing(tag::NODE_NAME, "node names"))?;
    let node_type = sections
        .node_type
        .ok_or_else(|| missing(tag::NODE_TYPE, "node types"))?;
    let edges = sections.edges.ok_or_else(|| missing(tag::EDGES, "edges"))?;
    let out_offsets = sections
        .out_offsets
        .ok_or_else(|| missing(tag::OUT_OFFSETS, "out offsets"))?;
    let out_edges = sections
        .out_edges
        .ok_or_else(|| missing(tag::OUT_EDGES, "out edges"))?;
    let in_offsets = sections
        .in_offsets
        .ok_or_else(|| missing(tag::IN_OFFSETS, "in offsets"))?;
    let in_edges = sections
        .in_edges
        .ok_or_else(|| missing(tag::IN_EDGES, "in edges"))?;
    let duplicate_edges_dropped = sections
        .duplicate_edges_dropped
        .ok_or_else(|| missing(tag::META, "meta"))?;

    // Cross-section consistency: a checksum protects each section against
    // corruption, these checks protect against a well-formed file whose
    // sections disagree (truncated rewrite, mixed versions, hand edits).
    let n = node_name.len();
    let m = edges.len();
    if node_type.len() != n {
        return Err(format!(
            "node arrays disagree: {n} names vs {} types",
            node_type.len()
        ));
    }
    if node_name.iter().any(|&id| id as usize >= names.len()) {
        return Err("node name id out of interner range".into());
    }
    if node_type.iter().any(|t| t.index() >= types.len()) {
        return Err("node type id out of interner range".into());
    }
    for e in &edges {
        if e.src.index() >= n || e.dst.index() >= n {
            return Err(format!("edge endpoint out of range ({} nodes)", n));
        }
        if e.predicate.index() >= predicates.len() {
            return Err("edge predicate id out of interner range".into());
        }
    }
    for (what, offsets, adjacency) in [
        ("out", &out_offsets, &out_edges),
        ("in", &in_offsets, &in_edges),
    ] {
        if offsets.len() != n + 1 {
            return Err(format!(
                "{what} offsets length {} (expected {})",
                offsets.len(),
                n + 1
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("{what} offsets not monotone"));
        }
        if offsets.last().copied().unwrap_or(0) as usize != m || adjacency.len() != m {
            return Err(format!("{what} adjacency disagrees with edge count {m}"));
        }
        if adjacency.iter().any(|e| e.index() >= m) {
            return Err(format!("{what} adjacency edge id out of range"));
        }
    }

    // Derived lookup tables, exactly as `rebuild_after_deserialize` would.
    let name_to_node = node_name
        .iter()
        .enumerate()
        .map(|(i, &name)| (name, NodeId::new(i as u32)))
        .collect();
    let mut nodes_by_type: Vec<Vec<NodeId>> = vec![Vec::new(); types.len()];
    for (idx, ty) in node_type.iter().enumerate() {
        nodes_by_type[ty.index()].push(NodeId::new(idx as u32));
    }

    Ok((
        KnowledgeGraph {
            names,
            types,
            predicates,
            node_name,
            node_type,
            name_to_node,
            nodes_by_type,
            edges,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            duplicate_edges_dropped,
        },
        epoch,
    ))
}

/// Deserializes a graph from `reader`; returns the graph and the epoch it
/// was saved at. Streams section by section — peak transient memory is one
/// section, not the whole snapshot.
pub fn read_graph<R: std::io::Read>(mut reader: R) -> Result<(KnowledgeGraph, u64)> {
    read_graph_with_stats(&mut reader).map(|(g, epoch, _)| (g, epoch))
}

/// [`read_graph`] reporting the streamed read's [`LoadStats`].
pub fn read_graph_with_stats<R: std::io::Read>(
    mut reader: R,
) -> Result<(KnowledgeGraph, u64, LoadStats)> {
    stream_graph(&mut reader).map_err(|e| match e {
        StreamError::Io(e) => KgError::Io(e),
        StreamError::Decode(detail) => KgError::Serde(detail),
    })
}

/// Saves a binary snapshot of `graph` at `path`, tagged with `epoch`
/// (pass 0 for a plain frozen graph outside any versioned store).
///
/// The write goes to a `.tmp` sibling first and is atomically renamed into
/// place, so a crash mid-save never leaves a half-written snapshot under
/// the real name. The parent directory is fsynced after the rename: when
/// this function returns, the new snapshot is durable — the checkpoint
/// protocol truncates the WAL immediately after, which is only safe if the
/// rename cannot be reordered past the truncation by a power loss.
pub fn save(graph: &KnowledgeGraph, epoch: u64, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let wrap = |e: KgError| KgError::snapshot(path, "binary", e);
    let file = std::fs::File::create(&tmp).map_err(|e| KgError::snapshot(path, "binary", e))?;
    let mut w = std::io::BufWriter::new(file);
    write_graph(&mut w, graph, epoch).map_err(wrap)?;
    w.into_inner()
        .map_err(|e| KgError::snapshot(path, "binary", e.to_string()))?
        .sync_all()
        .map_err(|e| KgError::snapshot(path, "binary", e))?;
    std::fs::rename(&tmp, path).map_err(|e| KgError::snapshot(path, "binary", e))?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)
            .and_then(|dir| dir.sync_all())
            .map_err(|e| KgError::snapshot(path, "binary", format!("directory fsync: {e}")))?;
    }
    Ok(())
}

/// Loads a binary snapshot saved by [`save`]; returns the graph and its
/// epoch. All failures carry the path and `binary` format context.
pub fn load(path: impl AsRef<Path>) -> Result<(KnowledgeGraph, u64)> {
    load_with_stats(path).map(|(g, epoch, _)| (g, epoch))
}

/// [`load`] reporting the streamed read's [`LoadStats`] — `benches/cold_start`
/// uses `peak_buffer_bytes` to show the reload no longer buffers the file.
pub fn load_with_stats(path: impl AsRef<Path>) -> Result<(KnowledgeGraph, u64, LoadStats)> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| KgError::snapshot(path, "binary", e))?;
    let mut reader = std::io::BufReader::with_capacity(1 << 16, file);
    stream_graph(&mut reader).map_err(|e| KgError::snapshot(path, "binary", e.into_detail()))
}

#[cfg(test)]
mod tests {
    use super::super::test_dir::TestDir;
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let audi = b.add_node("Audi_TT", "Automobile");
        let de = b.add_node("Germany", "Country");
        let kia = b.add_node("KIA_K5", "Automobile");
        b.add_edge(audi, de, "assembly");
        b.add_edge(kia, de, "export");
        b.add_edge(audi, de, "assembly"); // duplicate, dropped
        b.finish()
    }

    fn assert_graphs_equal(a: &KnowledgeGraph, b: &KnowledgeGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.type_count(), b.type_count());
        assert_eq!(a.predicate_count(), b.predicate_count());
        assert_eq!(a.duplicate_edges_dropped(), b.duplicate_edges_dropped());
        for node in a.nodes() {
            assert_eq!(a.node_name(node), b.node_name(node));
            assert_eq!(a.node_type(node), b.node_type(node));
            assert_eq!(
                a.neighbors(node).collect::<Vec<_>>(),
                b.neighbors(node).collect::<Vec<_>>(),
                "adjacency diverged at {node}"
            );
            assert_eq!(b.node_by_name(a.node_name(node)), Some(node));
        }
        for (id, rec) in a.edges() {
            assert_eq!(b.edge(id), rec);
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = TestDir::new("bin_roundtrip");
        let path = dir.path("g.kgb");
        let g = sample();
        save(&g, 42, &path).unwrap();
        let (back, epoch) = load(&path).unwrap();
        assert_eq!(epoch, 42);
        assert_graphs_equal(&g, &back);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let dir = TestDir::new("bin_empty");
        let path = dir.path("empty.kgb");
        let g = GraphBuilder::new().finish();
        save(&g, 0, &path).unwrap();
        let (back, epoch) = load(&path).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = TestDir::new("bin_magic");
        let path = dir.path("bad.kgb");
        std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxx").unwrap();
        let err = load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad magic"), "{msg}");
        assert!(msg.contains("bad.kgb"), "{msg}");
        assert!(msg.contains("binary format"), "{msg}");
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let dir = TestDir::new("bin_trunc");
        let path = dir.path("g.kgb");
        save(&sample(), 7, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Every strict prefix must fail cleanly, never panic or mis-load.
        for cut in [4, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            let p = dir.path("cut.kgb");
            std::fs::write(&p, &bytes[..cut]).unwrap();
            let err = load(&p).unwrap_err();
            assert!(
                matches!(err, KgError::Snapshot { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn detects_payload_corruption_via_checksum() {
        let dir = TestDir::new("bin_corrupt");
        let path = dir.path("g.kgb");
        save(&sample(), 7, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first section's payload (skip the
        // 24-byte header + 9 bytes of section framing).
        let idx = 24 + 9 + 2;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn rejects_unsupported_version() {
        let dir = TestDir::new("bin_version");
        let path = dir.path("g.kgb");
        save(&sample(), 0, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version lives right after the 8-byte magic
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn streamed_load_buffers_at_most_one_section() {
        let dir = TestDir::new("bin_stream");
        let path = dir.path("g.kgb");
        // Enough nodes/edges that no single section approaches file size.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("Hub", "Anchor");
        for i in 0..500usize {
            let t = b.add_node(&format!("N{i}"), "Goal");
            b.add_edge(hub, t, &format!("p{}", i % 7));
        }
        let g = b.finish();
        save(&g, 3, &path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len();
        let (back, epoch, stats) = load_with_stats(&path).unwrap();
        assert_eq!(epoch, 3);
        assert_graphs_equal(&g, &back);
        assert_eq!(stats.bytes_read, file_len);
        assert_eq!(stats.sections, 11);
        assert!(
            (stats.peak_buffer_bytes as u64) < file_len / 2,
            "peak buffer {} should be well under file size {file_len}",
            stats.peak_buffer_bytes
        );
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let dir = TestDir::new("bin_tmp");
        let path = dir.path("g.kgb");
        save(&sample(), 0, &path).unwrap();
        assert!(path.exists());
        assert!(!path.with_extension("tmp").exists());
    }
}
