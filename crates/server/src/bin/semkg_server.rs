//! `semkg-server` — stand up a [`sgq::ShardedDeployment`] over a generated
//! dbpedia-like dataset (or an existing deployment directory) and serve it
//! over TCP.
//!
//! ```text
//! semkg-server [--addr 127.0.0.1:0] [--scale 1.0] [--shards 2] [--k 10]
//!              [--duration SECS] [--dir PATH]
//! ```
//!
//! Prints `semkg-server listening on ADDR` on stdout once ready (CI and
//! scripts parse this line, since `--addr :0` binds an ephemeral port).
//! Runs until `--duration` elapses or a wire `Shutdown` request drains it.

use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datagen::dataset::DatasetSpec;
use semkg_server::server::{self, ServerConfig};
use sgq::{SchedConfig, SgqConfig, ShardedDeployment};

struct Args {
    addr: String,
    scale: f64,
    shards: usize,
    k: usize,
    duration: Option<Duration>,
    dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        scale: 1.0,
        shards: 2,
        k: 10,
        duration: None,
        dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--k" => {
                args.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
            }
            "--duration" => {
                let secs: u64 = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
                args.duration = Some(Duration::from_secs(secs));
            }
            "--dir" => args.dir = Some(PathBuf::from(value("--dir")?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // An explicit --dir with a manifest is opened in place; otherwise a
    // fresh deployment is created (ephemeral temp dir when --dir is absent).
    let (dir, ephemeral) = match &args.dir {
        Some(dir) => (dir.clone(), false),
        None => (
            std::env::temp_dir().join(format!("semkg-server-{}", std::process::id())),
            true,
        ),
    };
    if ephemeral && dir.exists() {
        std::fs::remove_dir_all(&dir).map_err(|e| format!("clear {}: {e}", dir.display()))?;
    }
    let deployment = if kgraph::io::shard::manifest_path(&dir).exists() {
        eprintln!(
            "semkg-server: opening existing deployment at {}",
            dir.display()
        );
        ShardedDeployment::open(&dir).map_err(|e| format!("open deployment: {e}"))?
    } else {
        eprintln!(
            "semkg-server: building dbpedia-like dataset (scale {}) into {}",
            args.scale,
            dir.display()
        );
        let ds = DatasetSpec::dbpedia_like(args.scale).build();
        let space = ds.oracle_space();
        ShardedDeployment::create(&dir, ds.graph, space, ds.library, args.shards)
            .map_err(|e| format!("create deployment: {e}"))?
    };
    let service = deployment.service(SgqConfig {
        k: args.k,
        ..SgqConfig::default()
    });
    let service_registry = Arc::clone(service.registry());

    let listener = TcpListener::bind(&args.addr).map_err(|e| format!("bind {}: {e}", args.addr))?;
    let result = server::serve(
        listener,
        &service,
        SchedConfig::default(),
        ServerConfig::default(),
        &[service_registry],
        |handle| {
            println!("semkg-server listening on {}", handle.addr());
            let _ = std::io::stdout().flush();
            let started = Instant::now();
            while !handle.is_draining() {
                if let Some(limit) = args.duration {
                    if started.elapsed() >= limit {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("semkg-server: draining");
        },
    );
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result.map_err(|e| format!("serve: {e}"))?;
    eprintln!("semkg-server: drained, exiting");
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("semkg-server: {e}");
        std::process::exit(1);
    }
}
