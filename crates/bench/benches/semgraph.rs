//! On-the-fly semantic-graph materialisation: sub-query plan construction
//! (similarity rows + φ candidate sets), the per-query fixed cost.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::workload::produced_workload;
use lexicon::NodeMatcher;
use sgq::decompose::decompose;
use sgq::semgraph::SubQueryPlan;
use sgq::PivotStrategy;
use std::hint::black_box;

fn bench_semgraph(c: &mut Criterion) {
    let ds = DatasetSpec::dbpedia_like(3.0).build();
    let space = ds.oracle_space();
    let q = &produced_workload(&ds)[0];
    let d = decompose(&q.graph, PivotStrategy::MinCost, 24.0, 4).unwrap();
    let mut group = c.benchmark_group("semgraph");
    group.bench_function("matcher_index_build", |b| {
        b.iter(|| black_box(NodeMatcher::new(&ds.graph, &ds.library).match_name("Germany")))
    });
    let matcher = NodeMatcher::new(&ds.graph, &ds.library);
    group.bench_function("subquery_plan_build", |b| {
        b.iter(|| {
            black_box(
                SubQueryPlan::build(
                    &ds.graph,
                    &space,
                    &matcher,
                    &q.graph,
                    &d.subqueries[0],
                    4,
                    0.8,
                )
                .sources
                .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_semgraph);
criterion_main!(benches);
