//! Typed triples and their text representation.
//!
//! The on-disk format is a 5-column TSV:
//! `head \t head_type \t predicate \t tail \t tail_type`
//! — a lightweight stand-in for the N-Triples dumps the paper loads from
//! DBpedia / Freebase / YAGO2, keeping the type annotations the engine needs.
//!
//! Field values are escaped so that *any* label round-trips: `\` → `\\`,
//! tab → `\t`, newline → `\n`, carriage return → `\r`, and a `#` at the
//! start of a field → `\#` (so a head entity cannot turn its line into a
//! comment). Real dump labels rarely need any of this, in which case
//! escaping is a no-op pass-through.
//!
//! Compatibility note: a dump written *before* escaping existed whose
//! labels contain a literal `\` now fails to parse with an "unknown
//! escape" error (line-numbered) instead of silently loading a different
//! label — re-export such a graph, or escape the backslashes, to migrate.
//! Backslash-free dumps (the overwhelmingly common case) are bytewise
//! unchanged in both directions.

use crate::error::KgError;
use serde::{Deserialize, Serialize};

/// Escapes one TSV field (see module docs for the escape set).
fn escape_field(out: &mut String, field: &str) {
    for (i, c) in field.chars().enumerate() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '#' if i == 0 => out.push_str("\\#"),
            c => out.push(c),
        }
    }
}

/// Reverses [`escape_field`]. Unknown escapes and a trailing lone `\` are
/// parse errors — they can only come from hand-edited or corrupt files.
fn unescape_field(field: &str, line_no: usize) -> Result<String, KgError> {
    if !field.contains('\\') {
        return Ok(field.to_string());
    }
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('#') => out.push('#'),
            other => {
                return Err(KgError::ParseTriple {
                    line: line_no,
                    reason: match other {
                        Some(c) => format!("unknown escape `\\{c}`"),
                        None => "dangling `\\` at end of field".into(),
                    },
                })
            }
        }
    }
    Ok(out)
}

/// A fully-labelled knowledge-graph triple `<head, predicate, tail>` with
/// entity types attached (paper Definition 1 assumes every node carries a
/// type and a unique name).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Head entity name.
    pub head: String,
    /// Head entity type.
    pub head_type: String,
    /// Predicate label.
    pub predicate: String,
    /// Tail entity name.
    pub tail: String,
    /// Tail entity type.
    pub tail_type: String,
}

impl Triple {
    /// Builds a triple from borrowed parts.
    pub fn new(head: &str, head_type: &str, predicate: &str, tail: &str, tail_type: &str) -> Self {
        Self {
            head: head.into(),
            head_type: head_type.into(),
            predicate: predicate.into(),
            tail: tail.into(),
            tail_type: tail_type.into(),
        }
    }

    /// Serializes to one TSV line (no trailing newline), escaping field
    /// values so any label round-trips through [`Self::from_tsv`].
    pub fn to_tsv(&self) -> String {
        let mut out = String::with_capacity(
            self.head.len()
                + self.head_type.len()
                + self.predicate.len()
                + self.tail.len()
                + self.tail_type.len()
                + 4,
        );
        for (i, field) in [
            &self.head,
            &self.head_type,
            &self.predicate,
            &self.tail,
            &self.tail_type,
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push('\t');
            }
            escape_field(&mut out, field);
        }
        out
    }

    /// Parses one TSV line, reversing [`Self::to_tsv`]'s escaping;
    /// `line_no` is used for error reporting only.
    pub fn from_tsv(line: &str, line_no: usize) -> Result<Self, KgError> {
        let mut fields = line.split('\t');
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| KgError::ParseTriple {
                    line: line_no,
                    reason: format!("missing field `{what}`"),
                })
                .and_then(|raw| unescape_field(raw, line_no))
        };
        let head = next("head")?;
        let head_type = next("head_type")?;
        let predicate = next("predicate")?;
        let tail = next("tail")?;
        let tail_type = next("tail_type")?;
        if fields.next().is_some() {
            return Err(KgError::ParseTriple {
                line: line_no,
                reason: "too many fields (expected 5)".into(),
            });
        }
        if head.is_empty() || predicate.is_empty() || tail.is_empty() {
            return Err(KgError::ParseTriple {
                line: line_no,
                reason: "empty head/predicate/tail".into(),
            });
        }
        Ok(Self::new(&head, &head_type, &predicate, &tail, &tail_type))
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}, {}, {}>", self.head, self.predicate, self.tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tsv_roundtrip() {
        let t = Triple::new("BMW_320", "Automobile", "assembly", "Germany", "Country");
        let line = t.to_tsv();
        let back = Triple::from_tsv(&line, 1).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = Triple::new("Germany", "Country", "product", "BMW_X6", "Automobile");
        assert_eq!(t.to_string(), "<Germany, product, BMW_X6>");
    }

    #[test]
    fn rejects_short_lines() {
        let err = Triple::from_tsv("a\tb\tc", 3).unwrap_err();
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn rejects_long_lines() {
        assert!(Triple::from_tsv("a\tT\tp\tb\tT\textra", 1).is_err());
    }

    #[test]
    fn rejects_empty_core_fields() {
        assert!(Triple::from_tsv("\tT\tp\tb\tT", 1).is_err());
        assert!(Triple::from_tsv("a\tT\t\tb\tT", 1).is_err());
        assert!(Triple::from_tsv("a\tT\tp\t\tT", 1).is_err());
        // Empty types are tolerated (typing pass can fill them in).
        assert!(Triple::from_tsv("a\t\tp\tb\t", 1).is_ok());
    }

    #[test]
    fn hostile_labels_roundtrip() {
        // Tabs would shift columns, newlines would split the record, a
        // leading `#` would turn the line into a comment, and backslashes
        // collide with the escape character itself.
        let t = Triple::new(
            "#looks\tlike\na comment",
            "Ty\\pe",
            "has\tpart",
            "line\r\nbreak",
            "#T",
        );
        let line = t.to_tsv();
        assert!(!line.contains('\n'), "escaped line must stay one line");
        assert!(!line.starts_with('#'), "leading # must be escaped");
        assert_eq!(line.matches('\t').count(), 4, "exactly 4 separators");
        assert_eq!(Triple::from_tsv(&line, 1).unwrap(), t);
    }

    #[test]
    fn interior_hash_is_not_escaped() {
        let t = Triple::new("a#b", "T", "p#q", "c", "T");
        let line = t.to_tsv();
        assert_eq!(line, "a#b\tT\tp#q\tc\tT");
        assert_eq!(Triple::from_tsv(&line, 1).unwrap(), t);
    }

    #[test]
    fn rejects_bad_escapes() {
        let err = Triple::from_tsv("a\\x\tT\tp\tb\tT", 4).unwrap_err();
        assert!(err.to_string().contains("unknown escape"), "{err}");
        assert!(err.to_string().contains("line 4"), "{err}");
        let err = Triple::from_tsv("a\\\tT\tp\tb\tT", 2).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            head in "[A-Za-z0-9_\\\t\n\r#]{1,12}",
            ht in "[A-Za-z0-9_\\\t\n\r#]{0,8}",
            pred in "[a-z\\\t\n\r#]{1,10}",
            tail in "[A-Za-z0-9_\\\t\n\r#]{1,12}",
            tt in "[A-Za-z0-9_\\\t\n\r#]{0,8}",
        ) {
            let t = Triple::new(&head, &ht, &pred, &tail, &tt);
            prop_assert_eq!(Triple::from_tsv(&t.to_tsv(), 0).unwrap(), t);
        }
    }
}
