/root/repo/target/debug/deps/sgq-7d1381b22a80b0c8.d: crates/sgq/src/lib.rs crates/sgq/src/answer.rs crates/sgq/src/astar.rs crates/sgq/src/config.rs crates/sgq/src/decompose.rs crates/sgq/src/engine.rs crates/sgq/src/error.rs crates/sgq/src/pss.rs crates/sgq/src/query.rs crates/sgq/src/runtime.rs crates/sgq/src/semgraph.rs crates/sgq/src/service.rs crates/sgq/src/ta.rs crates/sgq/src/timebound.rs Cargo.toml

/root/repo/target/debug/deps/libsgq-7d1381b22a80b0c8.rmeta: crates/sgq/src/lib.rs crates/sgq/src/answer.rs crates/sgq/src/astar.rs crates/sgq/src/config.rs crates/sgq/src/decompose.rs crates/sgq/src/engine.rs crates/sgq/src/error.rs crates/sgq/src/pss.rs crates/sgq/src/query.rs crates/sgq/src/runtime.rs crates/sgq/src/semgraph.rs crates/sgq/src/service.rs crates/sgq/src/ta.rs crates/sgq/src/timebound.rs Cargo.toml

crates/sgq/src/lib.rs:
crates/sgq/src/answer.rs:
crates/sgq/src/astar.rs:
crates/sgq/src/config.rs:
crates/sgq/src/decompose.rs:
crates/sgq/src/engine.rs:
crates/sgq/src/error.rs:
crates/sgq/src/pss.rs:
crates/sgq/src/query.rs:
crates/sgq/src/runtime.rs:
crates/sgq/src/semgraph.rs:
crates/sgq/src/service.rs:
crates/sgq/src/ta.rs:
crates/sgq/src/timebound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
