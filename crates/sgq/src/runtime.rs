//! Persistent query runtime: an engine-lifetime worker pool with scoped,
//! borrow-friendly job submission.
//!
//! The paper runs "one search thread per sub-query graph" (§V-B Remarks).
//! The seed implementation realised that with `std::thread::scope` — which
//! spawns and joins **fresh OS threads on every doubling-batch round** of
//! every query. Under production traffic that is thousands of thread
//! creations per second for work items that often run microseconds.
//!
//! [`WorkerPool`] keeps a fixed set of workers alive for the engine's whole
//! lifetime; sub-query searches become jobs resumed on pooled workers.
//! [`WorkerPool::scope`] preserves the ergonomics of `std::thread::scope`:
//! jobs may borrow from the caller's stack (each search mutates its own
//! match stream in place), because the scope provably joins every submitted
//! job before returning — the same guarantee scoped threads give, here
//! enforced by a completion latch. While a scope waits it *helps*: it pulls
//! queued jobs (from any scope sharing the pool) and runs them inline, so a
//! saturated pool never idles the calling thread and concurrent queries
//! cannot deadlock each other.
//!
//! Panics inside a job are caught, forwarded to the owning scope, and
//! re-raised on the submitting thread after all of that scope's jobs have
//! settled — again matching `std::thread::scope` semantics.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased job. Jobs are stored `'static`; the lifetime erasure is
/// sound because [`Scope`] joins every job before its borrows expire (see
/// the safety argument on [`Scope::spawn`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queue {
    /// Jobs tagged with the id of the scope that submitted them, so a
    /// waiting scope can help with *its own* queued jobs without absorbing
    /// an unrelated (possibly long-running) scope's work inline.
    jobs: VecDeque<(u64, Job)>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<Queue>,
    /// Signals workers that a job arrived or shutdown began.
    work_cv: Condvar,
}

impl PoolShared {
    fn pop_job(&self) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some((_, job)) = queue.jobs.pop_front() {
                return Some(job);
            }
            if queue.shutdown {
                return None;
            }
            queue = self.work_cv.wait(queue).unwrap();
        }
    }

    /// Pops the first queued job belonging to `scope_id`, if any.
    fn try_pop_scope_job(&self, scope_id: u64) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap();
        let idx = queue.jobs.iter().position(|(id, _)| *id == scope_id)?;
        queue.jobs.remove(idx).map(|(_, job)| job)
    }
}

/// A fixed-size worker pool living as long as its owner (the engine).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` threads; `0` selects the machine's available
    /// parallelism (capped at 16 — sub-query counts are small). Explicit
    /// counts are clamped to 1024 so a corrupt config cannot exhaust the
    /// process's thread budget.
    pub fn new(workers: usize) -> Self {
        let n = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(16)
        } else {
            workers.min(1024)
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue::default()),
            work_cv: Condvar::new(),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sgq-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = shared.pop_job() {
                            job();
                        }
                    })
                    // lint-ok(panic-freedom): pool construction, not a query path — no request exists yet to degrade
                    .expect("failed to spawn sgq worker thread")
            })
            .collect();
        Self { shared, workers }
    }

    /// The process-wide shared pool, sized to the machine's available
    /// parallelism (same cap as `WorkerPool::new(0)`), spawned lazily on
    /// first use and alive for the rest of the process.
    ///
    /// This is the default pool for every engine whose config asks for
    /// "one worker per core" (`workers == 0`). Before it existed, each such
    /// engine resolved `available_parallelism` *independently* and spawned
    /// its own full-size pool — a live service's epoch engines already
    /// shared one, but N engines (or N sharded services) stacked N× the
    /// machine's cores in threads. Sharing one pool keeps the total thread
    /// budget at the hardware's parallelism no matter how many engines,
    /// services, or shards a process stands up; work-helping scopes (see
    /// module docs) make the sharing starvation- and deadlock-free.
    /// Explicit worker counts still get dedicated pools.
    pub fn shared() -> Arc<WorkerPool> {
        static SHARED: std::sync::OnceLock<Arc<WorkerPool>> = std::sync::OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(WorkerPool::new(0))))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (submitted, not yet picked up by a worker or
    /// a helping scope) — a backlog gauge for service dashboards.
    pub fn pending_jobs(&self) -> usize {
        self.shared.queue.lock().unwrap().jobs.len()
    }

    /// Runs `f` with a [`Scope`] on which borrow-carrying jobs can be
    /// spawned; returns only after every spawned job has finished. Panics
    /// from jobs are re-raised here.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        static NEXT_SCOPE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let scope = Scope {
            pool: self,
            id: NEXT_SCOPE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            state: Arc::new(ScopeState::default()),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join unconditionally — also when `f` itself panicked — so no job
        // can outlive the borrows it captured.
        scope.join();
        let panic = scope.state.panic.lock().unwrap().take();
        match (result, panic) {
            (Ok(value), None) => value,
            (Ok(_), Some(payload)) | (Err(payload), _) => resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            // A worker can only panic if a job panicked *and* the owning
            // scope already re-raised; nothing useful left to propagate.
            let _ = handle.join();
        }
    }
}

#[derive(Default)]
struct ScopeState {
    /// Jobs submitted but not yet finished.
    pending: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by a job of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Job-submission handle passed to the closure of [`WorkerPool::scope`].
///
/// `'env` ties submitted jobs to borrows living at least as long as the
/// scope call, exactly like `std::thread::Scope`.
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    /// Process-unique id tagging this scope's queued jobs.
    id: u64,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Submits a job that may borrow from `'env`.
    ///
    /// # Safety argument
    /// The job box is transmuted to `'static` so it can sit in the shared
    /// queue. This is sound because every control path through
    /// [`WorkerPool::scope`] — normal return, closure panic, job panic —
    /// passes through `join()`, which blocks until this scope's pending
    /// count reaches zero. Hence the job is guaranteed to have finished
    /// (and been dropped) before any `'env` borrow it captured expires.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: lifetime erasure of the boxed closure from 'env to
        // 'static. Sound because the job cannot outlive 'env:
        //  1. spawn() incremented this scope's `pending` count above,
        //     *before* the job became reachable from the shared queue;
        //  2. the job wrapper below decrements `pending` only after the
        //     job has run (or panicked) and been dropped;
        //  3. every exit from `WorkerPool::scope` — normal return, closure
        //     panic, job panic — goes through `ScopeState::join`, which
        //     drains this scope's queued jobs inline and then blocks on
        //     `done_cv` until `pending == 0`;
        //  4. `'env` borrows are live for the whole `scope` call, so by
        //     the time they can expire the job is finished and dropped.
        // The transmute only erases the lifetime parameter: source and
        // target are both `Box<dyn FnOnce() + Send>`, identical layout.
        let job: Job = unsafe { std::mem::transmute(job) };
        let tracked: Job = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = outcome {
                let mut slot = state.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.done_cv.notify_all();
            }
        });
        {
            let mut queue = self.pool.shared.queue.lock().unwrap();
            queue.jobs.push_back((self.id, tracked));
        }
        self.pool.shared.work_cv.notify_one();
    }

    /// Blocks until all jobs spawned on this scope have finished, running
    /// this scope's still-queued jobs inline while waiting (work helping).
    ///
    /// Helping is restricted to *own* jobs: absorbing another scope's job
    /// inline could couple this caller's latency to an unrelated —
    /// possibly long-running — query. Foreign jobs are left to the
    /// persistent workers, which never block, so waiting here cannot
    /// deadlock.
    fn join(&self) {
        // First drain this scope's still-queued jobs inline. No new own
        // jobs can appear once join starts (spawn happens only on the
        // scope-owning thread, which is here), so one pass suffices.
        while let Some(job) = self.pool.shared.try_pop_scope_job(self.id) {
            job();
        }
        // Whatever remains is running on workers; a plain wait is enough —
        // the last decrement notifies `done_cv`.
        let mut pending = self.state.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.state.done_cv.wait(pending).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn jobs_borrow_and_mutate_disjoint_slots() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0usize; 64];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = i * i);
            }
        });
        for (i, &v) in slots.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = WorkerPool::new(2);
        let n = pool.scope(|scope| {
            scope.spawn(|| {});
            42
        });
        assert_eq!(n, 42);
    }

    #[test]
    fn nested_sequential_scopes_reuse_workers() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn concurrent_scopes_share_one_pool() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20 {
                        pool.scope(|scope| {
                            for _ in 0..4 {
                                scope.spawn(|| {
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 * 20 * 4);
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_join() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicBool::new(false));
        let finished2 = Arc::clone(&finished);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("job exploded"));
                scope.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    finished2.store(true, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "panic must surface on the caller");
        assert!(
            finished.load(Ordering::Relaxed),
            "sibling jobs must have joined before the panic re-raised"
        );
        // The pool survives a panicked scope.
        let ok = pool.scope(|scope| {
            scope.spawn(|| {});
            true
        });
        assert!(ok);
    }

    #[test]
    fn join_does_not_absorb_foreign_jobs() {
        // One worker, busy with a long foreign job: a concurrent scope with
        // short jobs must help itself to completion instead of either
        // waiting for the worker or inlining the foreign 500 ms job.
        let pool = WorkerPool::new(1);
        std::thread::scope(|s| {
            let pool = &pool;
            s.spawn(move || {
                pool.scope(|scope| {
                    scope.spawn(|| std::thread::sleep(std::time::Duration::from_millis(500)));
                });
            });
            // Give the worker time to pick up the long job.
            std::thread::sleep(std::time::Duration::from_millis(50));
            let start = std::time::Instant::now();
            let counter = AtomicUsize::new(0);
            pool.scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 4);
            assert!(
                start.elapsed() < std::time::Duration::from_millis(250),
                "short scope was blocked behind the foreign long job: {:?}",
                start.elapsed()
            );
        });
    }

    #[test]
    fn shared_pool_is_a_process_singleton() {
        let a = WorkerPool::shared();
        let b = WorkerPool::shared();
        assert!(Arc::ptr_eq(&a, &b), "one pool per process");
        assert!(a.workers() >= 1);
        // And it is a fully functional pool.
        let counter = AtomicUsize::new(0);
        a.scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn helping_makes_single_worker_pools_live() {
        // One worker, more jobs than workers: the scope's join must help.
        let pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..32 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }
}
