/root/repo/target/debug/deps/repro-8758abec8ce68c3f.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-8758abec8ce68c3f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
