/root/repo/target/debug/deps/lexicon-9302e6e77afcd188.d: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

/root/repo/target/debug/deps/lexicon-9302e6e77afcd188: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/library.rs:
crates/lexicon/src/matcher.rs:
crates/lexicon/src/normalize.rs:
