//! Minimal offline shim of `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `finish`, `Bencher::iter` — backed by a
//! plain wall-clock sampler: per benchmark it warms up, picks an iteration
//! count targeting a fixed sample duration, takes `sample_size` samples and
//! prints min/median/mean nanoseconds per iteration. No statistics beyond
//! that, no plots, no baselines; enough to compare hot paths offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent per sample measurement.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);
/// Hard per-benchmark budget so `cargo bench` stays bounded.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_bench(&id.into(), 10, &mut f);
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, &mut f);
    }

    /// Ends the group (upstream writes reports here; the shim prints as it
    /// goes, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    /// Nanoseconds per iteration of each collected sample.
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, collecting `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit the target sample?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
            if budget_start.elapsed() > BENCH_BUDGET {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("  {id:<48} (no samples — closure never called iter)");
        return;
    }
    let mut s = bencher.samples_ns.clone();
    s.sort_by(|a, b| a.total_cmp(b));
    let min = s[0];
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "  {id:<48} min {:>12} | median {:>12} | mean {:>12}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        s.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a runner (shim of upstream's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
    }
}
