/root/repo/target/debug/deps/proptest-4be33c51408c8c1c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4be33c51408c8c1c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4be33c51408c8c1c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
