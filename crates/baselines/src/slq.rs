//! SLQ (Yang et al., PVLDB 2014) — schemaless querying through a
//! transformation library.
//!
//! SLQ's signature capability is its library of node *and* edge
//! transformations (synonym, abbreviation, ontology) — it is the only
//! comparator that handles both the `<Car>` and `GER` mismatches of the
//! paper's Fig. 1. It does not map edges to longer paths, so recall stays at
//! the directly-materialised schema (Table I: P 1.0 / R 0.39 on all four
//! query variants).

use crate::common::{
    run_baseline, Features, GraphQueryMethod, MethodAnswer, NodeMode, SegmentScorer,
};
use kgraph::{KnowledgeGraph, PredicateId};
use lexicon::TransformationLibrary;
use sgq::query::QueryGraph;

/// The SLQ comparator.
#[derive(Debug, Default, Clone, Copy)]
pub struct Slq;

impl Slq {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }
}

/// One hop; predicate accepted when identical or related via the library
/// (SLQ edge transformations).
struct LibraryEdge<'l> {
    library: &'l TransformationLibrary,
}

impl SegmentScorer for LibraryEdge<'_> {
    fn max_hops(&self) -> usize {
        1
    }
    fn score(
        &self,
        graph: &KnowledgeGraph,
        query_pred: &str,
        preds: &[PredicateId],
    ) -> Option<f64> {
        if preds.len() != 1 {
            return None;
        }
        let label = graph.predicate_name(preds[0]);
        if label == query_pred || self.library.matches(query_pred, label) {
            Some(1.0)
        } else {
            None
        }
    }
}

impl GraphQueryMethod for Slq {
    fn name(&self) -> &'static str {
        "SLQ"
    }

    fn features(&self) -> Features {
        Features {
            node_similarity: true,
            edge_to_path: false,
            predicates: false,
            idea: "transformation library",
        }
    }

    fn query(
        &self,
        graph: &KnowledgeGraph,
        library: &TransformationLibrary,
        query: &QueryGraph,
        k: usize,
    ) -> Vec<MethodAnswer> {
        run_baseline(
            graph,
            library,
            query,
            k,
            NodeMode::Similar,
            &LibraryEdge { library },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn setup() -> (KnowledgeGraph, TransformationLibrary) {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("A1", "Automobile");
        let de = b.add_node("Germany", "Country");
        b.add_edge(a1, de, "assembly");
        let g = b.finish();
        let mut lib = TransformationLibrary::new();
        lib.add_synonym_row("Automobile", &["Car"]);
        lib.add_abbreviation_row("Germany", &["GER"]);
        lib.add_synonym_row("assembly", &["product"]);
        (g, lib)
    }

    #[test]
    fn handles_synonym_type_and_abbreviated_name() {
        let (g, lib) = setup();
        // Fig. 1 G¹_Q: <Car> type.
        let mut q1 = QueryGraph::new();
        let car = q1.add_target("Car");
        let de = q1.add_specific("Germany", "Country");
        q1.add_edge(car, "assembly", de);
        assert_eq!(Slq::new().query(&g, &lib, &q1, 10).len(), 1);
        // Fig. 1 G²_Q: GER name.
        let mut q2 = QueryGraph::new();
        let auto = q2.add_target("Automobile");
        let ger = q2.add_specific("GER", "Country");
        q2.add_edge(auto, "assembly", ger);
        assert_eq!(Slq::new().query(&g, &lib, &q2, 10).len(), 1);
    }

    #[test]
    fn edge_transformation_through_library() {
        let (g, lib) = setup();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "product", de); // library: product → assembly
        assert_eq!(Slq::new().query(&g, &lib, &q, 10).len(), 1);
    }

    #[test]
    fn no_edge_to_path() {
        let mut b = GraphBuilder::new();
        let a2 = b.add_node("A2", "Automobile");
        let city = b.add_node("Munich", "City");
        let de = b.add_node("Germany", "Country");
        b.add_edge(a2, city, "assembly");
        b.add_edge(city, de, "country");
        let g = b.finish();
        let lib = TransformationLibrary::new();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de_q = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de_q);
        assert!(Slq::new().query(&g, &lib, &q, 10).is_empty());
    }
}
