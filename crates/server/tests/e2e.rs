//! End-to-end tests for the socket serving tier: a real `TcpListener`, a
//! real `ShardedDeployment`, real client connections. Covers the happy
//! path, the hostile-input edge cases from the wire spec, drain
//! semantics, and the socket-vs-in-process differential.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use datagen::dataset::{BenchDataset, DatasetSpec};
use datagen::workload::produced_workload;
use semkg_server::proto::{self, Request, Response};
use semkg_server::server::{self, ServerConfig, ServerHandle};
use semkg_server::{Client, ClientError, ErrorCode, WireOutcome};
use sgq::{
    LiveQueryService, Priority, QueryGraph, SchedConfig, SgqConfig, ShardedDeployment, ShedReason,
};

/// Built once per test binary; each test clones it into its own deployment.
fn dataset() -> &'static BenchDataset {
    static DATASET: OnceLock<BenchDataset> = OnceLock::new();
    DATASET.get_or_init(|| DatasetSpec::dbpedia_like(0.2).build())
}

struct TestDir(PathBuf);
impl TestDir {
    fn new(label: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "semkg_server_e2e_{label}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Stands up a server over a fresh deployment of the shared dataset and
/// runs `f` with the handle and the (in-process) backing service.
fn with_server<R>(
    config: ServerConfig,
    f: impl FnOnce(&ServerHandle<'_>, &LiveQueryService) -> R,
) -> R {
    let dir = TestDir::new("srv");
    let ds = dataset().clone();
    let space = ds.oracle_space();
    let deployment =
        ShardedDeployment::create(dir.0.join("kg"), ds.graph, space, ds.library, 2).unwrap();
    let service = deployment.service(SgqConfig::default());
    let registry = Arc::clone(service.registry());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    server::serve(
        listener,
        &service,
        SchedConfig::default(),
        config,
        &[registry],
        |handle| f(handle, &service),
    )
    .unwrap()
}

/// A workload query with a generous deadline — must resolve `Exact`.
fn slack() -> Duration {
    Duration::from_secs(30)
}

#[test]
fn query_ping_and_scrape_roundtrip() {
    with_server(ServerConfig::default(), |handle, _service| {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();

        let queries = produced_workload(dataset());
        let q = &queries.first().unwrap().graph;
        match client.query(q, slack(), Priority::Normal).unwrap() {
            WireOutcome::Exact(result) => assert!(!result.matches.is_empty()),
            other => panic!("expected an exact answer, got {other:?}"),
        }

        let scrape = client.metrics().unwrap();
        assert!(scrape.contains("# TYPE semkg_server_requests_total counter"));
        assert!(scrape.contains("semkg_server_requests_total{kind=\"query\"} 1"));
        assert!(scrape.contains("# TYPE sgq_sched_latency_us summary"));
        assert!(scrape.contains("semkg_server_info{addr=\""));
        // Exposition format: every line is a comment or `name[{labels}] value`.
        for line in scrape.lines() {
            assert!(
                line.starts_with('#') || line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(),
                "malformed scrape line: {line:?}"
            );
        }
    });
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    with_server(ServerConfig::default(), |handle, _service| {
        let mut client = Client::connect(handle.addr()).unwrap();
        // A length prefix of 256 MiB: the server must answer with a typed
        // error frame (and close), not attempt the allocation.
        let hostile = (256u32 * 1024 * 1024).to_le_bytes();
        client.send_raw(&hostile).unwrap();
        match client.recv_response().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
            other => panic!("expected an error frame, got {other:?}"),
        }
    });
}

#[test]
fn corrupt_checksum_is_rejected_before_dispatch() {
    with_server(ServerConfig::default(), |handle, _service| {
        let mut client = Client::connect(handle.addr()).unwrap();
        let mut bytes = proto::frame(&proto::encode_request(&Request::Ping));
        bytes[4] ^= 0xff; // first payload byte
        client.send_raw(&bytes).unwrap();
        match client.recv_response().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::ChecksumMismatch),
            other => panic!("expected an error frame, got {other:?}"),
        }
    });
}

#[test]
fn unknown_request_kind_is_a_typed_error() {
    with_server(ServerConfig::default(), |handle, _service| {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.send_raw(&proto::frame(&[0x7f])).unwrap();
        match client.recv_response().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownKind),
            other => panic!("expected an error frame, got {other:?}"),
        }
    });
}

#[test]
fn torn_frame_and_disconnect_do_not_wedge_the_server() {
    with_server(ServerConfig::default(), |handle, _service| {
        // A client that sends half a header and vanishes...
        let mut torn = Client::connect(handle.addr()).unwrap();
        torn.send_raw(&[0x03, 0x00]).unwrap();
        drop(torn);
        // ...and one that disconnects mid-request (header promises a body
        // that never comes).
        let mut cut = Client::connect(handle.addr()).unwrap();
        cut.send_raw(&64u32.to_le_bytes()).unwrap();
        drop(cut);
        // The server keeps serving new connections.
        let mut client = Client::connect(handle.addr()).unwrap();
        client.ping().unwrap();
    });
}

#[test]
fn invalid_query_fails_without_killing_the_connection() {
    with_server(ServerConfig::default(), |handle, _service| {
        let mut client = Client::connect(handle.addr()).unwrap();
        // No specific node: the engine must refuse it (Definition 6), the
        // refusal must come back as a typed Failed outcome, and the
        // connection must survive.
        let mut q = QueryGraph::new();
        q.add_target("Automobile");
        match client.query(&q, slack(), Priority::Normal).unwrap() {
            WireOutcome::Failed(msg) => assert!(!msg.is_empty()),
            other => panic!("expected a failed outcome, got {other:?}"),
        }
        client.ping().unwrap();
    });
}

#[test]
fn connection_cap_rejects_with_busy() {
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    with_server(config, |handle, _service| {
        let mut first = Client::connect(handle.addr()).unwrap();
        first.ping().unwrap();
        let mut second = Client::connect(handle.addr()).unwrap();
        match second.ping() {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Busy),
            other => panic!("expected a busy rejection, got {other:?}"),
        }
        // Closing the first slot frees capacity for a new connection.
        drop(first);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let mut retry = Client::connect(handle.addr()).unwrap();
            match retry.ping() {
                Ok(_) => break,
                Err(ClientError::Server {
                    code: ErrorCode::Busy,
                    ..
                }) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "slot never freed after disconnect"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(other) => panic!("unexpected failure: {other}"),
            }
        }
    });
}

#[test]
fn submits_after_drain_are_shed_as_shutdown() {
    let config = ServerConfig {
        drain_grace: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    with_server(config, |handle, _service| {
        let queries = produced_workload(dataset());
        let q = &queries.first().unwrap().graph;

        // One connection established *before* the drain begins...
        let mut survivor = Client::connect(handle.addr()).unwrap();
        survivor.ping().unwrap();

        // ...then a second connection asks the server to shut down.
        let mut closer = Client::connect(handle.addr()).unwrap();
        closer.shutdown_server().unwrap();
        assert!(handle.is_draining());

        // The surviving connection's in-pipe queries are answered — with a
        // typed Shed(Shutdown), not a hang or a slammed socket.
        match survivor.query(q, slack(), Priority::Normal).unwrap() {
            WireOutcome::Shed(reason) => assert_eq!(reason, ShedReason::Shutdown),
            other => panic!("expected a shutdown shed, got {other:?}"),
        }
    });
}

#[test]
fn socket_answers_are_bit_identical_to_in_process() {
    with_server(ServerConfig::default(), |handle, service| {
        let mut client = Client::connect(handle.addr()).unwrap();
        let queries = produced_workload(dataset());
        assert!(queries.len() >= 4);
        for wq in queries.iter().take(12) {
            let local = service.query(&wq.graph).unwrap();
            let remote = match client.query(&wq.graph, slack(), Priority::Normal).unwrap() {
                WireOutcome::Exact(result) => result,
                other => panic!("expected an exact answer, got {other:?}"),
            };

            // Matches must agree to the bit: pivots, scores, path edge ids,
            // per-part ψ, node sequences, bindings.
            assert_eq!(remote.matches.len(), local.matches.len());
            for (r, l) in remote.matches.iter().zip(local.matches.iter()) {
                assert_eq!(r.pivot, l.pivot);
                assert_eq!(r.score.to_bits(), l.score.to_bits());
                assert_eq!(r.parts.len(), l.parts.len());
                for (rp, lp) in r.parts.iter().zip(l.parts.iter()) {
                    assert_eq!(rp.source, lp.source);
                    assert_eq!(rp.pivot, lp.pivot);
                    assert_eq!(rp.pss.to_bits(), lp.pss.to_bits());
                    assert_eq!(rp.nodes, lp.nodes);
                    assert_eq!(rp.edges, lp.edges, "path edge ids must match");
                    assert_eq!(rp.bindings, lp.bindings);
                }
            }

            // The deterministic execution statistics must also agree —
            // only the wall-clock fields may differ between the paths.
            assert_eq!(remote.stats.popped, local.stats.popped);
            assert_eq!(remote.stats.pushed, local.stats.pushed);
            assert_eq!(remote.stats.tau_pruned, local.stats.tau_pruned);
            assert_eq!(remote.stats.edges_examined, local.stats.edges_examined);
            assert_eq!(remote.stats.ta_accesses, local.stats.ta_accesses);
            assert_eq!(remote.stats.ta_certified, local.stats.ta_certified);
            assert_eq!(remote.stats.subqueries, local.stats.subqueries);
            assert_eq!(remote.stats.time_bound_hit, local.stats.time_bound_hit);
        }
    });
}
