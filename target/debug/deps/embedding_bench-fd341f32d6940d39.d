/root/repo/target/debug/deps/embedding_bench-fd341f32d6940d39.d: crates/bench/benches/embedding_bench.rs Cargo.toml

/root/repo/target/debug/deps/libembedding_bench-fd341f32d6940d39.rmeta: crates/bench/benches/embedding_bench.rs Cargo.toml

crates/bench/benches/embedding_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
