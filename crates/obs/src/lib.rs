//! # obs — lock-free telemetry substrate
//!
//! A minimal, dependency-free metrics layer for the workspace: atomic
//! counters and gauges, log-linear (HDR-style) latency histograms with
//! exact-bucket percentiles, a registry that hands out shared handles, and
//! a [`MetricsSnapshot`] that renders to Prometheus text format and JSON.
//!
//! ## Histogram layout
//!
//! Values `0..32` get one exact bucket each. Every power-of-two range above
//! that is split into 32 linear sub-buckets ([`SUB_BUCKETS`]), so the
//! relative quantisation error is at most 1/32 (~3.1 %) across the whole
//! `u64` range. That fixes the bucket count at [`BUCKETS`] = 1920, which
//! keeps recording a single `fetch_add` with no allocation and makes merges
//! a bucket-wise sum — the standard production-database scheme for cheap,
//! mergeable p50/p90/p99.
//!
//! ```
//! use obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let hits = registry.counter("cache_hits_total", "cache hits");
//! let latency = registry.histogram("req_latency_us", "request latency (µs)");
//! hits.inc();
//! latency.record(250);
//! let snap = registry.snapshot();
//! assert!(snap.to_prometheus().contains("# TYPE cache_hits_total counter"));
//! ```

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Linear sub-buckets per power-of-two range (and the number of exact
/// buckets at the bottom of the scale).
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// Total bucket count: 32 exact buckets for `0..32`, then 32 sub-buckets for
/// each of the 59 power-of-two groups covering `32..=u64::MAX`.
pub const BUCKETS: usize = 1920;

/// Bucket index for a recorded value. Values below [`SUB_BUCKETS`] map to an
/// exact bucket; larger values map to one of 32 linear sub-buckets within
/// their power-of-two range.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS
    let group = exp - SUB_BITS;
    let sub = (value >> group) - SUB_BUCKETS;
    SUB_BUCKETS as usize + group as usize * SUB_BUCKETS as usize + sub as usize
}

/// Inclusive `(lower, upper)` value bounds of a bucket index.
///
/// Every value `v` satisfies `lower <= v <= upper` for
/// `bucket_bounds(bucket_index(v))`.
#[inline]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < SUB_BUCKETS as usize {
        return (index as u64, index as u64);
    }
    let group = ((index - SUB_BUCKETS as usize) / SUB_BUCKETS as usize) as u32;
    let sub = ((index - SUB_BUCKETS as usize) % SUB_BUCKETS as usize) as u64;
    let lower = (SUB_BUCKETS + sub) << group;
    let upper = lower + ((1u64 << group) - 1);
    (lower, upper)
}

/// A lock-free log-linear histogram. Recording is wait-free (three
/// `fetch_add`s and a `fetch_max`); reads produce a [`HistogramSnapshot`].
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // lint-ok(atomic-ordering): independent monotone bucket counter; RMW atomicity prevents lost increments
        self.sum.fetch_add(value, Ordering::Relaxed); // lint-ok(atomic-ordering): monotone sum; snapshots tolerate a sum/bucket skew of in-flight records
        self.max.fetch_max(value, Ordering::Relaxed); // lint-ok(atomic-ordering): fetch_max is order-insensitive — the high-water mark converges regardless
    }

    /// Point-in-time copy of all buckets. The observation count is derived
    /// from the bucket counts themselves so a snapshot is always internally
    /// coherent (`count == counts.iter().sum()`).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // lint-ok(atomic-ordering): snapshot derives count from these same loads, so it is internally coherent
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed), // lint-ok(atomic-ordering): telemetry snapshot; may trail in-flight records by design
            max: self.max.load(Ordering::Relaxed), // lint-ok(atomic-ordering): telemetry snapshot; may trail in-flight records by design
        }
    }
}

/// Immutable view of a histogram at one point in time. Supports exact-bucket
/// percentiles and lossless merging with other snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values. 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the ceil-rank observation, clamped to the exact tracked
    /// maximum. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Folds another snapshot into this one. Bucket-wise addition is
    /// lossless: a merged snapshot is identical to recording both streams
    /// into a single histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A monotonically increasing counter handle. Cloning shares the underlying
/// atomic.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed); // lint-ok(atomic-ordering): monotone counter; RMW atomicity prevents lost increments, no decision reads it
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // lint-ok(atomic-ordering): monotone counter; RMW atomicity prevents lost increments, no decision reads it
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // lint-ok(atomic-ordering): scrape-time read of telemetry; staleness is acceptable
    }
}

/// A gauge handle: a value that can move in both directions. Cloning shares
/// the underlying atomic.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed); // lint-ok(atomic-ordering): last-writer-wins gauge; readers are scrape-time only
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed); // lint-ok(atomic-ordering): gauge delta; RMW atomicity prevents lost updates, readers are scrape-time only
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed); // lint-ok(atomic-ordering): fetch_max is order-insensitive — the high-water mark converges regardless
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) // lint-ok(atomic-ordering): scrape-time read of telemetry; staleness is acceptable
    }
}

/// A histogram handle. Cloning shares the underlying buckets.
#[derive(Clone)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// A histogram not attached to any registry (useful in tests).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicHistogram::new()))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    label: Option<(String, String)>,
    help: String,
    instrument: Instrument,
}

/// A registry of named instruments. Registration takes a short lock;
/// recording through the returned handles is lock-free. Registering the same
/// `(name, label)` twice returns a handle to the same underlying instrument;
/// re-registering a name with a different instrument kind panics.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
        make: impl FnOnce() -> (T, Instrument),
        get: impl Fn(&Instrument) -> Option<T>,
    ) -> T {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name && e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == label {
                return get(&e.instrument).unwrap_or_else(|| {
                    // lint-ok(panic-freedom): registration-time type conflict is a programming error caught in tests, not a query path
                    panic!(
                        "metric `{name}` already registered as a {}",
                        e.instrument.kind()
                    )
                });
            }
        }
        let (handle, instrument) = make();
        entries.push(Entry {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            help: help.to_string(),
            instrument,
        });
        handle
    }

    /// Gets or registers an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.register(
            name,
            None,
            help,
            || {
                let c = Counter::detached();
                (c.clone(), Instrument::Counter(c))
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers a counter carrying one `key="value"` label pair.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str, help: &str) -> Counter {
        self.register(
            name,
            Some((key, value)),
            help,
            || {
                let c = Counter::detached();
                (c.clone(), Instrument::Counter(c))
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.register(
            name,
            None,
            help,
            || {
                let g = Gauge::detached();
                (g.clone(), Instrument::Gauge(g))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers a gauge carrying one `key="value"` label pair.
    pub fn gauge_labeled(&self, name: &str, key: &str, value: &str, help: &str) -> Gauge {
        self.register(
            name,
            Some((key, value)),
            help,
            || {
                let g = Gauge::detached();
                (g.clone(), Instrument::Gauge(g))
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.register(
            name,
            None,
            help,
            || {
                let h = Histogram::detached();
                (h.clone(), Instrument::Histogram(h))
            },
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Gets or registers a histogram carrying one `key="value"` label pair.
    pub fn histogram_labeled(&self, name: &str, key: &str, value: &str, help: &str) -> Histogram {
        self.register(
            name,
            Some((key, value)),
            help,
            || {
                let h = Histogram::detached();
                (h.clone(), Instrument::Histogram(h))
            },
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Point-in-time copy of every registered instrument, in registration
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap();
        MetricsSnapshot {
            samples: entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name.clone(),
                    label: e.label.clone(),
                    help: e.help.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// The value of one metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One metric (name + optional label pair + value) inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (Prometheus-style, e.g. `sgq_queries_total`).
    pub name: String,
    /// Optional single `(key, value)` label pair.
    pub label: Option<(String, String)>,
    /// Help text emitted as `# HELP`.
    pub help: String,
    /// The recorded value.
    pub value: MetricValue,
}

/// Point-in-time view of a registry, renderable as Prometheus text format or
/// JSON. Snapshots from several registries (e.g. a service and its
/// scheduler) can be combined with [`MetricsSnapshot::extend`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All samples, in registration order.
    pub samples: Vec<MetricSample>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text per the exposition format: only `\` and newline
/// (quotes stay literal — help text is not quoted). Help strings were all
/// static literals until the serving tier; now anything reaching a snapshot
/// must render to a single well-formed line.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn label_block(label: &Option<(String, String)>, extra: Option<(&str, &str)>) -> String {
    let mut pairs = Vec::new();
    if let Some((k, v)) = label {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl MetricsSnapshot {
    /// Appends all samples from another snapshot.
    pub fn extend(&mut self, other: MetricsSnapshot) {
        self.samples.extend(other.samples);
    }

    /// First sample with the given name (any label).
    pub fn find(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Sample with the given name and exact label pair.
    pub fn find_labeled(&self, name: &str, key: &str, value: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str())) == Some((key, value))
        })
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Histograms are rendered as `summary` metrics with `quantile` labels
    /// 0.5 / 0.9 / 0.99 / 1 (the exact max) plus `_sum` and `_count` series
    /// — a full 1920-bucket `_bucket` dump would dwarf the payload for no
    /// scrape-side benefit. `# HELP` / `# TYPE` headers are emitted once per
    /// metric name even when several labeled variants share it.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !seen.contains(&s.name.as_str()) {
                seen.push(&s.name);
                let kind = match &s.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                out.push_str(&format!("# HELP {} {}\n", s.name, escape_help(&s.help)));
                out.push_str(&format!("# TYPE {} {}\n", s.name, kind));
                // Emit every variant of this name right after its header.
                for v in self.samples.iter().filter(|v| v.name == s.name) {
                    Self::render_prometheus_sample(&mut out, v);
                }
            }
        }
        out
    }

    fn render_prometheus_sample(out: &mut String, s: &MetricSample) {
        match &s.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_block(&s.label, None),
                    v
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_block(&s.label, None),
                    v
                ));
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [
                    ("0.5", h.p50()),
                    ("0.9", h.p90()),
                    ("0.99", h.p99()),
                    ("1", h.max()),
                ] {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        label_block(&s.label, Some(("quantile", q))),
                        v
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    label_block(&s.label, None),
                    h.sum()
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    label_block(&s.label, None),
                    h.count()
                ));
            }
        }
    }

    /// Renders the snapshot as a JSON document:
    /// `{"metrics":[{"name":...,"kind":...,...}]}`. Histograms emit their
    /// derived statistics (`count`/`sum`/`max`/`mean`/`p50`/`p90`/`p99`)
    /// rather than raw buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"help\":\"{}\"",
                escape_json(&s.name),
                escape_json(&s.help)
            ));
            if let Some((k, v)) = &s.label {
                out.push_str(&format!(
                    ",\"label\":{{\"{}\":\"{}\"}}",
                    escape_json(k),
                    escape_json(v)
                ));
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(",\"kind\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"kind\":\"gauge\",\"value\":{v}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\
                         \"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                        h.count(),
                        h.sum(),
                        h.max(),
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99()
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_bounds(i), (v, v));
        }
    }

    #[test]
    fn bucket_edges_bracket_their_values() {
        for v in [
            32u64,
            33,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn buckets_tile_the_range_contiguously() {
        let mut expected_lower = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "gap or overlap before bucket {i}");
            assert!(hi >= lo);
            if i + 1 < BUCKETS {
                expected_lower = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / lower bound <= 1/32 for all log-linear buckets.
        for i in SUB_BUCKETS as usize..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            let width = hi - lo;
            assert!(
                (width as f64) / (lo as f64) <= 1.0 / 32.0,
                "bucket {i} too wide: [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let h = AtomicHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        assert_eq!(s.max(), 100);
        // Values 1..=100; buckets are exact below 32 and ~3% wide above.
        assert_eq!(s.p50(), 50);
        assert!(s.p90() >= 90 && s.p90() <= 93, "p90 = {}", s.p90());
        assert!(s.p99() >= 99 && s.p99() <= 100, "p99 = {}", s.p99());
        assert_eq!(s.percentile(1.0), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn single_value_pins_every_percentile() {
        let h = Histogram::detached();
        h.record(1_000_000);
        let s = h.snapshot();
        // The bucket is ~3% wide but percentile clamps to the exact max.
        assert_eq!(s.p50(), 1_000_000);
        assert_eq!(s.p99(), 1_000_000);
        assert_eq!(s.max(), 1_000_000);
    }

    #[test]
    fn registry_returns_same_handle_for_same_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("hits", "hits");
        let b = r.counter("hits", "hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().samples.len(), 1);

        let g1 = r.gauge_labeled("depth", "queue", "normal", "queue depth");
        let g2 = r.gauge_labeled("depth", "queue", "low", "queue depth");
        g1.set(5);
        g2.set(7);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 3);
        assert_eq!(
            snap.find_labeled("depth", "queue", "low").map(|s| &s.value),
            Some(&MetricValue::Gauge(7))
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x", "");
        let _ = r.gauge("x", "");
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::detached();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = MetricsRegistry::new();
        r.counter("sgq_queries_total", "queries served").add(42);
        r.gauge("sgq_epoch", "published epoch").set(3);
        let h = r.histogram("sgq_latency_us", "latency");
        h.record(100);
        h.record(200);
        let lo = r.histogram_labeled("sgq_sched_latency_us", "priority", "low", "sched latency");
        lo.record(9);
        let hi = r.histogram_labeled("sgq_sched_latency_us", "priority", "high", "sched latency");
        hi.record(1);

        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE sgq_queries_total counter\n"));
        assert!(text.contains("sgq_queries_total 42\n"));
        assert!(text.contains("# TYPE sgq_epoch gauge\n"));
        assert!(text.contains("sgq_epoch 3\n"));
        assert!(text.contains("# TYPE sgq_latency_us summary\n"));
        // 100 lands in the log-linear bucket [100, 101]; quantiles report
        // the bucket upper bound (clamped to the exact max for the tail).
        assert!(text.contains("sgq_latency_us{quantile=\"0.5\"} 101\n"));
        assert!(text.contains("sgq_latency_us{quantile=\"1\"} 200\n"));
        assert!(text.contains("sgq_latency_us_sum 300\n"));
        assert!(text.contains("sgq_latency_us_count 2\n"));
        assert!(text.contains("sgq_sched_latency_us{priority=\"low\",quantile=\"0.5\"} 9\n"));
        assert!(text.contains("sgq_sched_latency_us{priority=\"high\",quantile=\"0.5\"} 1\n"));
        // HELP/TYPE once per name even with two labeled variants.
        assert_eq!(
            text.matches("# TYPE sgq_sched_latency_us summary").count(),
            1
        );
        // Every non-comment line belongs to a `# TYPE`-declared family.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            let base = name.trim_end_matches("_sum").trim_end_matches("_count");
            assert!(
                text.contains(&format!("# TYPE {base} ")),
                "no TYPE header for {line}"
            );
        }
    }

    #[test]
    fn prometheus_escapes_hostile_label_values_and_help() {
        // Regression for the serving tier: label values and help text can
        // now be peer/endpoint-derived, so quotes, backslashes, and
        // newlines must render per the exposition format instead of
        // corrupting the scrape line structure.
        let r = MetricsRegistry::new();
        r.counter_labeled(
            "srv_requests_total",
            "peer",
            "10.0.0.1 \"spoof\" \\ line\nbreak",
            "per-peer requests",
        )
        .inc();
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("peer=\"10.0.0.1 \\\"spoof\\\" \\\\ line\\nbreak\""),
            "{text}"
        );

        let r = MetricsRegistry::new();
        let _ = r.gauge("srv_info", "addr of listener\nsecond \\ line");
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("# HELP srv_info addr of listener\\nsecond \\\\ line\n"),
            "{text}"
        );
        // No raw newline may split a HELP header across scrape lines.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("srv_info"),
                "stray line {line:?} in {text}"
            );
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let r = MetricsRegistry::new();
        r.counter("c_total", "a \"quoted\" help").add(7);
        r.gauge("g", "gauge").set(-4);
        let h = r.histogram_labeled("h_us", "phase", "expand", "phase time");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        use serde::Value;
        let json = r.snapshot().to_json();
        let value = serde_json::parse_value(&json).expect("valid JSON");
        let Value::Object(top) = value else {
            panic!("top level not an object")
        };
        let metrics = match &top.iter().find(|(k, _)| k == "metrics").unwrap().1 {
            Value::Array(a) => a,
            other => panic!("metrics not an array: {other:?}"),
        };
        assert_eq!(metrics.len(), 3);
        let field = |m: &Value, key: &str| -> Value {
            match m {
                Value::Object(o) => o.iter().find(|(k, _)| k == key).unwrap().1.clone(),
                _ => panic!("metric not an object"),
            }
        };
        assert_eq!(field(&metrics[0], "kind"), Value::Str("counter".into()));
        assert_eq!(field(&metrics[0], "value"), Value::UInt(7));
        assert_eq!(field(&metrics[1], "value"), Value::Int(-4));
        assert_eq!(field(&metrics[2], "kind"), Value::Str("histogram".into()));
        assert_eq!(field(&metrics[2], "count"), Value::UInt(3));
        assert_eq!(field(&metrics[2], "max"), Value::UInt(30));
        match field(&metrics[2], "label") {
            Value::Object(o) => {
                assert_eq!(o[0].0, "phase");
                assert_eq!(o[0].1, Value::Str("expand".into()));
            }
            other => panic!("label not an object: {other:?}"),
        }
    }

    #[test]
    fn snapshots_extend_across_registries() {
        let service = MetricsRegistry::new();
        service.counter("a_total", "").inc();
        let sched = MetricsRegistry::new();
        sched.counter("b_total", "").inc();
        let mut snap = service.snapshot();
        snap.extend(sched.snapshot());
        assert!(snap.find("a_total").is_some());
        assert!(snap.find("b_total").is_some());
        assert_eq!(snap.samples.len(), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::detached();
        let c = Counter::detached();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 40_000);
        assert_eq!(s.max(), 39_999);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            /// Every recorded value lands in a bucket whose bounds bracket it.
            #[test]
            fn recorded_values_are_bracketed(v in 0u64..=u64::MAX) {
                let i = bucket_index(v);
                prop_assert!(i < BUCKETS);
                let (lo, hi) = bucket_bounds(i);
                prop_assert!(lo <= v && v <= hi);
            }

            /// Merging two snapshots is identical to recording both value
            /// streams into a single histogram.
            #[test]
            fn merge_equals_single_histogram(
                a in proptest::collection::vec(0u64..2_000_000, 0..64),
                b in proptest::collection::vec(0u64..2_000_000, 0..64),
            ) {
                let ha = AtomicHistogram::new();
                let hb = AtomicHistogram::new();
                let hall = AtomicHistogram::new();
                for &v in &a {
                    ha.record(v);
                    hall.record(v);
                }
                for &v in &b {
                    hb.record(v);
                    hall.record(v);
                }
                let mut merged = ha.snapshot();
                merged.merge(&hb.snapshot());
                prop_assert_eq!(merged, hall.snapshot());
            }

            /// p50 <= p90 <= p99 <= max on arbitrary data, and every
            /// percentile is bracketed by the recorded extremes.
            #[test]
            fn percentiles_are_monotone(
                values in proptest::collection::vec(0u64..=u64::MAX - 1, 1..128),
            ) {
                let h = AtomicHistogram::new();
                for &v in &values {
                    h.record(v);
                }
                let s = h.snapshot();
                let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
                prop_assert!(p50 <= p90);
                prop_assert!(p90 <= p99);
                prop_assert!(p99 <= s.max());
                let lo = *values.iter().min().unwrap();
                prop_assert!(p50 >= lo, "p50 {} below min {}", p50, lo);
                prop_assert_eq!(s.max(), *values.iter().max().unwrap());
            }
        }
    }
}
