//! Update-churn workloads for the live-update subsystem.
//!
//! Real knowledge graphs (the paper's DBpedia/Freebase targets) receive a
//! constant stream of edge insertions and deletions. This module turns a
//! generated [`BenchDataset`] into a deterministic, seeded stream of
//! [`ChurnOp`]s that exercises every write path of
//! [`kgraph::VersionedGraph`]:
//!
//! * **growth** — brand-new automobile entities with `assembly` edges to
//!   existing countries (the produced-workload answer sets grow);
//! * **shrinkage** — deletions of ground-truth `assembly` edges (answer
//!   sets shrink, tombstones accumulate);
//! * **resurrection** — re-insertions of previously deleted triples;
//! * **duplicates** — re-insertions of live triples (must collapse, exactly
//!   like [`kgraph::GraphBuilder`]'s dedup);
//! * **vocabulary growth** — edges under fresh predicates / fresh entity
//!   types the offline-trained predicate space has never seen (exercises
//!   similarity-row invalidation).

use crate::dataset::BenchDataset;
use kgraph::VersionedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One logical update against a live graph, expressed by labels (never by
/// ids — ids are epoch-scoped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// Insert `head --predicate--> tail`, creating endpoints as needed.
    Insert {
        /// Head entity `(name, type)`.
        head: (String, String),
        /// Predicate label.
        predicate: String,
        /// Tail entity `(name, type)`.
        tail: (String, String),
    },
    /// Delete the live edge `head --predicate--> tail` (no-op if absent).
    Delete {
        /// Head entity name.
        head: String,
        /// Predicate label.
        predicate: String,
        /// Tail entity name.
        tail: String,
    },
}

/// A deterministic stream of `ops` churn operations against `ds`, seeded by
/// `seed`. Op mix (approximate): 40% growth inserts, 20% deletions, 15%
/// resurrections, 15% duplicate inserts, 10% fresh-vocabulary inserts.
pub fn churn_stream(ds: &BenchDataset, ops: usize, seed: u64) -> Vec<ChurnOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_D00D_F00D);
    let mut out = Vec::with_capacity(ops);

    // Deletable edges: the graph's *direct* assembly edges (ground-truth
    // cars can also be connected through multi-hop schemas, which a single
    // triple deletion cannot remove).
    let mut deletable: Vec<(String, String)> = Vec::new();
    if let Some(assembly) = ds.graph.predicate_id("assembly") {
        for (_, rec) in ds.graph.edges() {
            if rec.predicate == assembly {
                deletable.push((
                    ds.graph.node_name(rec.src).to_string(),
                    ds.graph.node_name(rec.dst).to_string(),
                ));
            }
        }
    }
    // Live triples eligible for duplicate inserts (stay live unless deleted).
    let mut dupable = deletable.clone();
    let mut deleted: Vec<(String, String)> = Vec::new();
    let mut fresh = 0usize;

    for i in 0..ops {
        let country = ds.countries[rng.random_range(0..ds.countries.len())].clone();
        let roll = rng.random_range(0..100u32);
        let op = if roll < 40 {
            // Growth: a new car assembled in a random country.
            ChurnOp::Insert {
                head: (format!("LiveCar_{seed}_{i}"), "Automobile".into()),
                predicate: "assembly".into(),
                tail: (country.clone(), "Country".into()),
            }
        } else if roll < 60 && !deletable.is_empty() {
            // Shrinkage: tombstone a ground-truth assembly edge.
            let (car, c) = deletable.swap_remove(rng.random_range(0..deletable.len()));
            dupable.retain(|(d, _)| d != &car);
            deleted.push((car.clone(), c.clone()));
            ChurnOp::Delete {
                head: car,
                predicate: "assembly".into(),
                tail: c,
            }
        } else if roll < 75 && !deleted.is_empty() {
            // Resurrection: bring a deleted edge back.
            let (car, c) = deleted.swap_remove(rng.random_range(0..deleted.len()));
            deletable.push((car.clone(), c.clone()));
            dupable.push((car.clone(), c.clone()));
            ChurnOp::Insert {
                head: (car, "Automobile".into()),
                predicate: "assembly".into(),
                tail: (c, "Country".into()),
            }
        } else if roll < 90 && !dupable.is_empty() {
            // Duplicate: re-insert a live triple; must collapse.
            let (car, c) = dupable[rng.random_range(0..dupable.len())].clone();
            ChurnOp::Insert {
                head: (car, "Automobile".into()),
                predicate: "assembly".into(),
                tail: (c, "Country".into()),
            }
        } else {
            // Vocabulary growth: fresh predicate and fresh entity type.
            fresh += 1;
            ChurnOp::Insert {
                head: (format!("LiveSensor_{seed}_{fresh}"), "Sensor".into()),
                predicate: format!("telemetry_{}", fresh % 4),
                tail: (country.clone(), "Country".into()),
            }
        };
        out.push(op);
    }
    out
}

/// Applies one op to a live graph. Returns `true` when the op changed the
/// staged state (a duplicate insert or a miss-delete returns `false`).
pub fn apply_churn(live: &VersionedGraph, op: &ChurnOp) -> bool {
    match op {
        ChurnOp::Insert {
            head,
            predicate,
            tail,
        } => live
            .insert_triple((&head.0, &head.1), predicate, (&tail.0, &tail.1))
            .changed(),
        ChurnOp::Delete {
            head,
            predicate,
            tail,
        } => live.delete_triple(head, predicate, tail),
    }
}

/// Applies a whole stream, returning how many ops changed state.
pub fn apply_churn_stream(live: &VersionedGraph, ops: &[ChurnOp]) -> usize {
    ops.iter().filter(|op| apply_churn(live, op)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use kgraph::GraphView;

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let ds = DatasetSpec::tiny().build();
        let a = churn_stream(&ds, 200, 7);
        let b = churn_stream(&ds, 200, 7);
        assert_eq!(a, b, "same seed ⇒ same stream");
        assert_ne!(a, churn_stream(&ds, 200, 8), "different seed ⇒ different");
        assert_eq!(a.len(), 200);
        let inserts = a
            .iter()
            .filter(|o| matches!(o, ChurnOp::Insert { .. }))
            .count();
        let deletes = a.len() - inserts;
        assert!(inserts > deletes, "insert-heavy mix");
        assert!(deletes > 0, "some deletions present");
        assert!(
            a.iter().any(|o| matches!(
                o,
                ChurnOp::Insert { predicate, .. } if predicate.starts_with("telemetry_")
            )),
            "fresh-vocabulary ops present"
        );
    }

    #[test]
    fn applying_the_stream_mutates_the_graph_consistently() {
        let ds = DatasetSpec::tiny().build();
        let base_edges = ds.graph.edge_count();
        let live = VersionedGraph::new(ds.graph.clone());
        let ops = churn_stream(&ds, 150, 42);
        let effective = apply_churn_stream(&live, &ops);
        assert!(effective > 0);
        let snap = live.commit();
        let stats = live.stats();
        assert_eq!(stats.epoch, 1);
        assert!(stats.inserts > 0 && stats.deletes > 0);
        assert_eq!(
            snap.edge_count(),
            base_edges + stats.delta_edges - stats.tombstones,
        );
        // Deletions only ever target edges that exist at that point, so
        // every Delete in the stream must have landed.
        let stream_deletes = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Delete { .. }))
            .count() as u64;
        assert_eq!(stats.deletes, stream_deletes);
    }
}
