/root/repo/target/debug/deps/semkg-5ef3ede0d40426f2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemkg-5ef3ede0d40426f2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
