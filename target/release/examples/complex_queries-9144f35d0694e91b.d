/root/repo/target/release/examples/complex_queries-9144f35d0694e91b.d: examples/complex_queries.rs

/root/repo/target/release/examples/complex_queries-9144f35d0694e91b: examples/complex_queries.rs

examples/complex_queries.rs:
