//! Deadline-aware batch scheduling in front of the query engine.
//!
//! [`QueryService`] and [`crate::live::LiveQueryService`] answer whatever
//! arrives, immediately, one query per calling thread. Under overload that
//! is exactly wrong: every client pays full decomposition and search cost,
//! duplicate requests burn the engine twice, and the TBQ estimator can only
//! shrink *individual* searches — it cannot shed or reorder load, so p99
//! latency collapses when traffic spikes (the gStore/S4 lesson: production
//! systems win by admission control and batching, not per-query smarts).
//!
//! [`BatchScheduler`] puts a scheduler between clients and the engine:
//!
//! * a **bounded admission queue** accepts `(QueryGraph, deadline,
//!   priority)` requests; when full, a lower-priority, later-deadline
//!   victim is shed to admit a more urgent request (or the arrival itself
//!   is shed);
//! * a **scheduler thread** groups compatible admitted requests — equal
//!   query graphs observed at the same graph epoch under the same engine
//!   configuration — into batches. A batch is planned **once** (via
//!   [`crate::engine::PreparedQuery`], whose plans hold shared
//!   [`embedding::SimilarityIndex`] rows) and executed **once**; the result
//!   fans out to every member;
//! * batches are dispatched **earliest-deadline-first** (higher priority
//!   classes first) as jobs on the engine's existing
//!   [`WorkerPool`] — the scheduler spawns no per-query threads;
//! * requests whose deadline is **provably unmeetable** — the Algorithm-3
//!   estimate [`crate::timebound::estimate_ns`] of the fixed dispatch
//!   overhead alone reaches the remaining time — are **shed** explicitly;
//!   requests whose predicted exact cost exceeds their remaining time are
//!   **degraded**: executed through the TBQ anytime path with the bound cut
//!   to the time they actually have, and *flagged* as such;
//! * everything is observable through [`SchedStats`].
//!
//! ## The semantic answer cache
//!
//! In front of all of that sits an **epoch-keyed answer cache**
//! ([`cache`]): a bounded LRU of `Arc`-shared certified top-k results,
//! keyed by query signature and configuration family and stamped with the
//! epoch they were computed against. A request whose answer is cached for
//! the *current* epoch resolves at submit time — it never enters the
//! admission queue and never touches the engine. Requests may carry their
//! own `(k, τ)` via [`QueryParams`]; a request **dominated** by a cached
//! entry (smaller `k`, larger `τ`, same structure) is answered by trimming
//! the cached certified result, provably bit-identical to a from-scratch
//! run (`tests/cache_differential.rs`). Entries invalidate by epoch stamp
//! exactly like the plan cache, so an answer computed before a commit,
//! compaction or recovery can never escape afterwards.
//!
//! ## Response contract
//!
//! Every submitted request is resolved, exactly once, with one of:
//!
//! * [`SchedOutcome::Exact`] — the bit-identical answer the direct,
//!   unscheduled service path would have produced (same prepared-execution
//!   code path, same determinism guarantees);
//! * [`SchedOutcome::Degraded`] — a TBQ answer under a reduced bound,
//!   explicitly flagged with the bound it ran under;
//! * [`SchedOutcome::Shed`] — an explicit refusal with a
//!   [`ShedReason`];
//! * [`SchedOutcome::Failed`] — the engine's own error, passed through.
//!
//! Never a silently wrong answer: a degraded response is always flagged,
//! and batches only merge *equal* queries (hash prefilter, then full
//! structural equality) at one epoch under one configuration — verified by
//! the property tests below and `tests/scheduler_differential.rs`.
//!
//! ## Epochs and live graphs
//!
//! Over a [`crate::live::LiveQueryService`] the scheduler stamps each batch
//! with the epoch it observed at grouping time; requests observed at
//! different epochs never share a batch. In-flight batches execute on
//! prepared queries pinned to their build epoch, so a commit or compaction
//! landing mid-batch drains cleanly — the batch finishes on the snapshot it
//! planned against while the next batch adopts the new epoch.
//!
//! The `semkg-server` crate fronts this scheduler over a TCP socket: the
//! full response contract — including every [`SchedOutcome`] variant and
//! its [`ShedReason`] — crosses the wire bit-identically, so remote
//! clients get the same never-silently-wrong guarantee as in-process
//! callers (see `crates/server/README.md`).

pub mod cache;

pub use cache::QueryParams;

use crate::answer::{QueryResult, QueryStats};
use crate::config::{SchedConfig, SgqConfig};
use crate::engine::PreparedQuery;
use crate::error::{Result, SgqError};
use crate::live::LiveQueryService;
use crate::query::QueryGraph;
use crate::runtime::WorkerPool;
use crate::service::QueryService;
use crate::timebound::{estimate_ns, TimeBoundConfig};
use crate::trace::{tick_sampled, QueryTrace, TraceSink};
use cache::{family_fingerprint, tuned_fingerprint, AnswerCache, AnswerLookup};
use kgraph::GraphView;
use obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Request priority class. Higher classes are dispatched first and are the
/// last to be shed when the admission queue overflows.
///
/// Deliberately **not** `Ord`: declaration order would make `High` compare
/// *smaller* than `Low`, an inviting trap. Compare urgency through
/// [`Priority::rank`] (0 = most urgent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-critical traffic (interactive users).
    High,
    /// Regular traffic.
    #[default]
    Normal,
    /// Best-effort traffic (crawlers, prefetchers); shed first.
    Low,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 3;

    /// Dense rank: 0 = most urgent.
    pub const fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// All classes, most urgent first.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];
}

/// Why the scheduler refused to execute a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full of equal-or-higher-urgency
    /// work.
    QueueFull,
    /// The deadline had already passed when the request reached the
    /// scheduler.
    Expired,
    /// The remaining time was provably insufficient: the estimated fixed
    /// dispatch overhead alone ([`crate::timebound::estimate_ns`] with zero
    /// collected matches) reached the deadline, so even a maximally
    /// degraded execution would miss it.
    Unmeetable,
    /// The scheduler was shutting down when the request arrived.
    Shutdown,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "admission queue full"),
            ShedReason::Expired => write!(f, "deadline already passed"),
            ShedReason::Unmeetable => write!(f, "deadline provably unmeetable"),
            ShedReason::Shutdown => write!(f, "scheduler shutting down"),
        }
    }
}

/// How a scheduled request was resolved (see the module-level response
/// contract).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedOutcome {
    /// The exact answer — bit-identical to the direct service path.
    Exact(QueryResult),
    /// A time-bounded (TBQ) answer under a reduced budget, flagged with the
    /// bound it ran under. More remaining time ⇒ closer to exact
    /// (paper Theorem 4).
    Degraded {
        /// The anytime result.
        result: QueryResult,
        /// The reduced time bound the TBQ run was given.
        bound: Duration,
    },
    /// The request was refused without touching the engine.
    Shed(ShedReason),
    /// The engine returned an error (validation, storage, …).
    Failed(SgqError),
}

impl SchedOutcome {
    /// The query result, if the request produced one.
    pub fn result(&self) -> Option<&QueryResult> {
        match self {
            SchedOutcome::Exact(r) | SchedOutcome::Degraded { result: r, .. } => Some(r),
            _ => None,
        }
    }

    /// True for [`SchedOutcome::Shed`].
    pub fn is_shed(&self) -> bool {
        matches!(self, SchedOutcome::Shed(_))
    }

    /// Collapses into the engine's `Result`: sheds become
    /// [`SgqError::Shed`], failures pass through, degraded answers are
    /// returned like exact ones (callers distinguishing them should match
    /// on the outcome instead).
    pub fn into_result(self) -> Result<QueryResult> {
        match self {
            SchedOutcome::Exact(r) | SchedOutcome::Degraded { result: r, .. } => Ok(r),
            SchedOutcome::Shed(reason) => Err(SgqError::Shed(reason)),
            SchedOutcome::Failed(e) => Err(e),
        }
    }
}

/// A resolved scheduled request: the outcome plus the submit-to-resolution
/// latency the client observed.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedResponse {
    /// How the request was resolved.
    pub outcome: SchedOutcome,
    /// Wall-clock time from submission to resolution.
    pub latency: Duration,
}

/// What the engine the scheduler fronts must provide. Implemented by
/// [`QueryService`] (static graphs; epoch constantly 0) and
/// [`LiveQueryService`] (prepared queries pin the epoch they were built
/// against).
pub trait SchedBackend: Sync {
    /// The backend's compiled-query handle.
    type Prepared: Send + Sync;

    /// The newest published graph epoch (0 for static graphs). Batches are
    /// stamped with this at grouping time; requests observed at different
    /// epochs never share a batch.
    fn current_epoch(&self) -> u64;

    /// The engine configuration (fingerprinted into the batch key).
    fn config(&self) -> &SgqConfig;

    /// Compiles a query for repeated execution.
    fn prepare(&self, query: &QueryGraph) -> Result<Self::Prepared>;

    /// Compiles a query under an explicit effective configuration (the
    /// backend's configuration with the batch's per-request `k` / `τ`
    /// substituted in). With `config == self.config()` this must behave
    /// exactly like [`SchedBackend::prepare`].
    fn prepare_tuned(&self, query: &QueryGraph, config: &SgqConfig) -> Result<Self::Prepared>;

    /// The epoch a prepared query is pinned to.
    fn prepared_epoch(&self, prepared: &Self::Prepared) -> u64;

    /// Exact execution (must be deterministic and identical to the
    /// backend's direct query path — the differential harness asserts it).
    fn execute(&self, prepared: &Self::Prepared) -> Result<QueryResult>;

    /// Exact execution with a per-phase [`QueryTrace`] attached. Must
    /// return the same answer as [`SchedBackend::execute`] — tracing only
    /// observes. The scheduler calls this for sampled batch executions and
    /// adds its own fan-out phase to the returned trace.
    fn execute_traced(&self, prepared: &Self::Prepared) -> Result<(QueryResult, QueryTrace)>;

    /// Anytime execution under a time bound.
    fn execute_time_bounded(
        &self,
        prepared: &Self::Prepared,
        tb: &TimeBoundConfig,
    ) -> Result<QueryResult>;

    /// The persistent worker pool batches are dispatched onto.
    fn pool(&self) -> &WorkerPool;
}

impl<'a, G> SchedBackend for QueryService<'a, G>
where
    G: GraphView + Clone + Send + Sync,
    QueryService<'a, G>: Sync,
{
    type Prepared = PreparedQuery;

    fn current_epoch(&self) -> u64 {
        0
    }

    fn config(&self) -> &SgqConfig {
        self.engine().config()
    }

    fn prepare(&self, query: &QueryGraph) -> Result<PreparedQuery> {
        QueryService::prepare(self, query)
    }

    fn prepare_tuned(&self, query: &QueryGraph, config: &SgqConfig) -> Result<PreparedQuery> {
        QueryService::prepare_with(self, query, config)
    }

    fn prepared_epoch(&self, _prepared: &PreparedQuery) -> u64 {
        0
    }

    fn execute(&self, prepared: &PreparedQuery) -> Result<QueryResult> {
        QueryService::execute(self, prepared)
    }

    fn execute_traced(&self, prepared: &PreparedQuery) -> Result<(QueryResult, QueryTrace)> {
        QueryService::execute_traced(self, prepared)
    }

    fn execute_time_bounded(
        &self,
        prepared: &PreparedQuery,
        tb: &TimeBoundConfig,
    ) -> Result<QueryResult> {
        QueryService::execute_time_bounded(self, prepared, tb)
    }

    fn pool(&self) -> &WorkerPool {
        self.engine().pool()
    }
}

impl<'a> SchedBackend for LiveQueryService<'a> {
    type Prepared = crate::live::LivePreparedQuery<'a>;

    fn current_epoch(&self) -> u64 {
        self.published_epoch()
    }

    fn config(&self) -> &SgqConfig {
        self.sgq_config()
    }

    fn prepare(&self, query: &QueryGraph) -> Result<Self::Prepared> {
        LiveQueryService::prepare(self, query)
    }

    fn prepare_tuned(&self, query: &QueryGraph, config: &SgqConfig) -> Result<Self::Prepared> {
        LiveQueryService::prepare_with(self, query, config)
    }

    fn prepared_epoch(&self, prepared: &Self::Prepared) -> u64 {
        prepared.epoch()
    }

    fn execute(&self, prepared: &Self::Prepared) -> Result<QueryResult> {
        LiveQueryService::execute(self, prepared)
    }

    fn execute_traced(&self, prepared: &Self::Prepared) -> Result<(QueryResult, QueryTrace)> {
        LiveQueryService::execute_traced(self, prepared)
    }

    fn execute_time_bounded(
        &self,
        prepared: &Self::Prepared,
        tb: &TimeBoundConfig,
    ) -> Result<QueryResult> {
        LiveQueryService::execute_time_bounded(self, prepared, tb)
    }

    fn pool(&self) -> &WorkerPool {
        self.worker_pool()
    }
}

/// Structural hash of a query graph — the batch-grouping prefilter. Equal
/// graphs hash equal; the `Batcher` additionally compares full structural
/// equality before merging, so a collision can never merge distinct
/// queries.
pub fn query_signature(query: &QueryGraph) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    for node in query.nodes() {
        match node.name() {
            Some(name) => {
                1u8.hash(&mut h);
                name.hash(&mut h);
            }
            None => 0u8.hash(&mut h),
        }
        node.type_label().hash(&mut h);
    }
    0xffu8.hash(&mut h);
    for edge in query.edges() {
        edge.from.0.hash(&mut h);
        edge.to.0.hash(&mut h);
        edge.predicate.hash(&mut h);
    }
    h.finish()
}

/// Fingerprint of the engine configuration a batch executes under; part of
/// the batch key so requests against different configurations never merge.
/// Composed as the `(k, τ)`-free `cache::family_fingerprint` extended
/// with the effective `(k, τ)` — the answer cache keys by the family part
/// alone and resolves `k` by dominance at equal `τ`.
pub fn config_fingerprint(config: &SgqConfig) -> u64 {
    tuned_fingerprint(family_fingerprint(config), config.k, config.tau)
}

// ---------------------------------------------------------------------------
// Tickets
// ---------------------------------------------------------------------------

struct TicketState {
    submitted: Instant,
    slot: Mutex<Option<SchedResponse>>,
    cv: Condvar,
}

impl TicketState {
    fn new() -> Self {
        Self {
            submitted: Instant::now(),
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, outcome: SchedOutcome) {
        let response = SchedResponse {
            outcome,
            latency: self.submitted.elapsed(),
        };
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(response);
        }
        self.cv.notify_all();
    }
}

/// A handle to one submitted request; resolves to a [`SchedResponse`]
/// exactly once.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until the request is resolved.
    pub fn wait(self) -> SchedResponse {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.state.cv.wait(slot).unwrap();
        }
    }

    /// Non-blocking: a copy of the response if the request has been
    /// resolved ([`Ticket::wait`] still works afterwards).
    pub fn peek(&self) -> Option<SchedResponse> {
        self.state.slot.lock().unwrap().clone()
    }
}

// ---------------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------------

/// One admitted request, stamped with its grouping key.
pub(crate) struct BatchRequest {
    query: Arc<QueryGraph>,
    sig: u64,
    epoch: u64,
    config_tag: u64,
    /// Effective top-k of this request (engine default or per-request).
    k: usize,
    /// Effective τ threshold of this request.
    tau: f64,
    priority: Priority,
    deadline: Instant,
    ticket: Arc<TicketState>,
}

/// A group of compatible requests answered by one prepared execution.
pub(crate) struct Batch {
    query: Arc<QueryGraph>,
    sig: u64,
    epoch: u64,
    config_tag: u64,
    /// Effective `(k, τ)` shared by every member (part of the merge key).
    k: usize,
    tau: f64,
    /// Most urgent member class.
    priority: Priority,
    /// Earliest member deadline — the EDF sort key.
    deadline: Instant,
    members: Vec<BatchRequest>,
}

impl Batch {
    /// Strict dispatch order: priority class first, deadline second.
    fn before(&self, other: &Batch) -> bool {
        (self.priority.rank(), self.deadline) < (other.priority.rank(), other.deadline)
    }
}

/// Groups admitted requests into batches and releases them
/// earliest-deadline-first. Two requests share a batch **only** when their
/// query graphs are structurally equal (hash prefilter + `==`), they were
/// observed at the same graph epoch, and they run under the same engine
/// configuration — the property tests below drive arbitrary interleavings
/// through exactly this type.
pub(crate) struct Batcher {
    ready: Vec<Batch>,
    max_batch: usize,
}

impl Batcher {
    pub(crate) fn new(max_batch: usize) -> Self {
        Self {
            ready: Vec::new(),
            max_batch: max_batch.max(1),
        }
    }

    /// Number of formed, undispatched batches.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.ready.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Requests waiting across all formed batches.
    #[cfg(test)]
    pub(crate) fn pending_requests(&self) -> usize {
        self.ready.iter().map(|b| b.members.len()).sum()
    }

    /// Adds a request to a compatible open batch, or opens a new one.
    /// Returns true when the request joined an existing batch.
    pub(crate) fn offer(&mut self, req: BatchRequest) -> bool {
        if let Some(batch) = self.ready.iter_mut().find(|b| {
            b.members.len() < self.max_batch
                && b.sig == req.sig
                && b.epoch == req.epoch
                && b.config_tag == req.config_tag
                // The tag hashes (k, τ) already; the exact comparison makes
                // a tag collision unable to merge different parameters.
                && b.k == req.k
                && b.tau.to_bits() == req.tau.to_bits()
                && *b.query == *req.query
        }) {
            batch.deadline = batch.deadline.min(req.deadline);
            if req.priority.rank() < batch.priority.rank() {
                batch.priority = req.priority;
            }
            batch.members.push(req);
            return true;
        }
        self.ready.push(Batch {
            query: Arc::clone(&req.query),
            sig: req.sig,
            epoch: req.epoch,
            config_tag: req.config_tag,
            k: req.k,
            tau: req.tau,
            priority: req.priority,
            deadline: req.deadline,
            members: vec![req],
        });
        false
    }

    /// Removes and returns the most urgent batch (highest priority class,
    /// earliest deadline).
    pub(crate) fn pop_earliest(&mut self) -> Option<Batch> {
        let mut best = 0;
        for i in 1..self.ready.len() {
            if self.ready[i].before(&self.ready[best]) {
                best = i;
            }
        }
        if self.ready.is_empty() {
            None
        } else {
            Some(self.ready.swap_remove(best))
        }
    }

    /// Drains every formed batch (shutdown path).
    fn drain(&mut self) -> Vec<Batch> {
        std::mem::take(&mut self.ready)
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Per-priority latency aggregates over *served* (exact or degraded)
/// requests, derived from one [`obs`] log-linear histogram snapshot per
/// class — so the percentiles, the count, the sum and the max are all read
/// from the same buckets and agree with each other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityLatency {
    /// Requests of this class resolved with an answer.
    pub served: u64,
    /// Summed submit-to-resolution latency, microseconds.
    pub total_latency_us: u64,
    /// Worst observed latency, microseconds (exact, not a bucket bound).
    pub max_latency_us: u64,
    /// Median submit-to-resolution latency, microseconds (bucket upper
    /// bound; relative error ≤ 1/[`obs::SUB_BUCKETS`]).
    pub p50_us: u64,
    /// 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
}

impl PriorityLatency {
    /// Mean submit-to-resolution latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.served as f64
        }
    }
}

/// Aggregated scheduler counters (consistent-enough snapshot; counters are
/// updated independently).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Requests handed to [`SchedHandle::submit`].
    pub submitted: u64,
    /// Requests that entered the admission queue.
    pub admitted: u64,
    /// Requests resolved with the exact answer.
    pub exact: u64,
    /// Requests resolved with a flagged TBQ degradation.
    pub degraded: u64,
    /// Requests shed because the admission queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because their deadline had already passed.
    pub shed_expired: u64,
    /// Requests shed because the estimator proved the deadline unmeetable.
    pub shed_unmeetable: u64,
    /// Requests shed because the scheduler was shutting down.
    pub shed_shutdown: u64,
    /// Requests resolved with an engine error.
    pub failed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests across all dispatched batches (`batched_requests /
    /// batches` = mean coalescing factor).
    pub batched_requests: u64,
    /// Batch executions that reused a cached prepared query.
    pub plan_cache_hits: u64,
    /// Batch executions that had to prepare (cold signature or new epoch).
    pub plan_cache_misses: u64,
    /// Requests answered verbatim from the semantic answer cache (same
    /// `(k, τ)`, same epoch) — resolved at submit time, engine untouched.
    pub answer_cache_hits: u64,
    /// Requests answered by trimming a dominating cached entry
    /// (`k ≤ k_cached`, `τ = τ_cached`, same structure and epoch).
    pub answer_cache_dominance_hits: u64,
    /// Cache probes that found an entry stamped with another epoch (the
    /// entry is evicted — stale answers never escape).
    pub answer_cache_stale: u64,
    /// Cache probes that found no usable entry (stale probes count here
    /// too — they proceed to execution like any miss).
    pub answer_cache_misses: u64,
    /// Entries resident in the answer cache at snapshot time.
    pub answer_cache_entries: u64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// High-water admission-queue depth.
    pub max_queue_depth: u64,
    /// Latency aggregates per priority class, indexed by
    /// [`Priority::rank`].
    pub per_priority: [PriorityLatency; Priority::COUNT],
}

impl SchedStats {
    /// Total requests shed, all reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_expired + self.shed_unmeetable + self.shed_shutdown
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Latency aggregate of one priority class.
    pub fn latency(&self, priority: Priority) -> PriorityLatency {
        self.per_priority[priority.rank()]
    }

    /// Requests served from the answer cache, verbatim or trimmed.
    pub fn answer_cache_served(&self) -> u64 {
        self.answer_cache_hits + self.answer_cache_dominance_hits
    }

    /// Fraction of submitted requests served from the answer cache.
    pub fn answer_cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.answer_cache_served() as f64 / self.submitted as f64
        }
    }
}

/// Scheduler counters, registered in the scheduler's own
/// [`MetricsRegistry`] (prefix `sgq_sched_`) so one Prometheus / JSON
/// scrape exposes them alongside everything else. Every mutation goes
/// through an [`obs`] handle; [`SchedStats`] is just a read of them.
struct SchedCounters {
    submitted: Counter,
    admitted: Counter,
    exact: Counter,
    degraded: Counter,
    shed_queue_full: Counter,
    shed_expired: Counter,
    shed_unmeetable: Counter,
    shed_shutdown: Counter,
    failed: Counter,
    batches: Counter,
    batched_requests: Counter,
    plan_cache_hits: Counter,
    plan_cache_misses: Counter,
    answer_hits: Counter,
    answer_dominance_hits: Counter,
    answer_stale: Counter,
    answer_misses: Counter,
    answer_entries: Gauge,
    queue_depth: Gauge,
    max_queue_depth: Gauge,
    /// Submit-to-resolution latency per priority class, indexed by
    /// [`Priority::rank`]. `served` / `total` / `max` in
    /// [`PriorityLatency`] are derived from these same buckets.
    latency_us: [Histogram; Priority::COUNT],
    /// Time spent fanning one executed batch result out to its members.
    fan_out_ns: Histogram,
}

impl SchedCounters {
    fn new(registry: &MetricsRegistry) -> Self {
        let shed = |reason: &str| {
            registry.counter_labeled(
                "sgq_sched_shed_total",
                "reason",
                reason,
                "requests refused without touching the engine",
            )
        };
        let latency = |priority: &str| {
            registry.histogram_labeled(
                "sgq_sched_latency_us",
                "priority",
                priority,
                "submit-to-resolution latency of served requests, microseconds",
            )
        };
        Self {
            submitted: registry.counter("sgq_sched_submitted_total", "requests handed to submit"),
            admitted: registry.counter(
                "sgq_sched_admitted_total",
                "requests that entered the admission queue",
            ),
            exact: registry.counter(
                "sgq_sched_exact_total",
                "requests resolved with the exact answer",
            ),
            degraded: registry.counter(
                "sgq_sched_degraded_total",
                "requests resolved with a flagged TBQ degradation",
            ),
            shed_queue_full: shed("queue_full"),
            shed_expired: shed("expired"),
            shed_unmeetable: shed("unmeetable"),
            shed_shutdown: shed("shutdown"),
            failed: registry.counter(
                "sgq_sched_failed_total",
                "requests resolved with an engine error",
            ),
            batches: registry.counter("sgq_sched_batches_total", "batches dispatched"),
            batched_requests: registry.counter(
                "sgq_sched_batched_requests_total",
                "requests across all dispatched batches",
            ),
            plan_cache_hits: registry.counter(
                "sgq_sched_plan_cache_hits_total",
                "batch executions reusing a cached prepared query",
            ),
            plan_cache_misses: registry.counter(
                "sgq_sched_plan_cache_misses_total",
                "batch executions that had to prepare",
            ),
            answer_hits: registry.counter(
                "sgq_sched_answer_cache_hits_total",
                "requests answered verbatim from the semantic answer cache",
            ),
            answer_dominance_hits: registry.counter(
                "sgq_sched_answer_cache_dominance_hits_total",
                "requests answered by trimming a dominating cached entry",
            ),
            answer_stale: registry.counter(
                "sgq_sched_answer_cache_stale_total",
                "answer-cache probes that evicted an entry from another epoch",
            ),
            answer_misses: registry.counter(
                "sgq_sched_answer_cache_misses_total",
                "answer-cache probes that found no usable entry",
            ),
            answer_entries: registry.gauge(
                "sgq_sched_answer_cache_entries",
                "entries resident in the semantic answer cache",
            ),
            queue_depth: registry.gauge(
                "sgq_sched_queue_depth",
                "admission-queue depth at scrape time",
            ),
            max_queue_depth: registry.gauge(
                "sgq_sched_max_queue_depth",
                "high-water admission-queue depth",
            ),
            latency_us: [latency("high"), latency("normal"), latency("low")],
            fan_out_ns: registry.histogram(
                "sgq_sched_fan_out_ns",
                "time fanning one batch result out to its members, nanoseconds",
            ),
        }
    }

    /// Reads the counters into a [`SchedStats`]. Outcome counters are read
    /// **before** `submitted`: submission increments `submitted` before any
    /// outcome for that request can exist, so reading the outcomes first
    /// and `submitted` last keeps the mid-traffic invariant
    /// `exact + degraded + shed() + failed <= submitted` (reading
    /// `submitted` first could miss a request submitted *and* resolved
    /// between the two reads, over-counting outcomes against an old
    /// `submitted`).
    fn snapshot(&self) -> SchedStats {
        let mut per_priority = [PriorityLatency::default(); Priority::COUNT];
        for (i, slot) in per_priority.iter_mut().enumerate() {
            let h = self.latency_us[i].snapshot();
            *slot = PriorityLatency {
                served: h.count(),
                total_latency_us: h.sum(),
                max_latency_us: h.max(),
                p50_us: h.p50(),
                p90_us: h.p90(),
                p99_us: h.p99(),
            };
        }
        // Answer-cache hit counters are read before `exact`: a hit
        // increments `exact` first and its hit counter second, so this
        // order keeps `answer_cache_served() <= exact` in every snapshot.
        let answer_cache_hits = self.answer_hits.get();
        let answer_cache_dominance_hits = self.answer_dominance_hits.get();
        let answer_cache_stale = self.answer_stale.get();
        let answer_cache_misses = self.answer_misses.get();
        let exact = self.exact.get();
        let degraded = self.degraded.get();
        let shed_queue_full = self.shed_queue_full.get();
        let shed_expired = self.shed_expired.get();
        let shed_unmeetable = self.shed_unmeetable.get();
        let shed_shutdown = self.shed_shutdown.get();
        let failed = self.failed.get();
        let admitted = self.admitted.get();
        SchedStats {
            submitted: self.submitted.get(),
            admitted,
            exact,
            degraded,
            shed_queue_full,
            shed_expired,
            shed_unmeetable,
            shed_shutdown,
            failed,
            batches: self.batches.get(),
            batched_requests: self.batched_requests.get(),
            plan_cache_hits: self.plan_cache_hits.get(),
            plan_cache_misses: self.plan_cache_misses.get(),
            answer_cache_hits,
            answer_cache_dominance_hits,
            answer_cache_stale,
            answer_cache_misses,
            answer_cache_entries: self.answer_entries.get() as u64,
            // queue_depth is a live gauge, filled from the admission queue
            // by SchedHandle::stats.
            queue_depth: 0,
            max_queue_depth: self.max_queue_depth.get() as u64,
            per_priority,
        }
    }

    fn record_shed(&self, reason: ShedReason) {
        let counter = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::Expired => &self.shed_expired,
            ShedReason::Unmeetable => &self.shed_unmeetable,
            ShedReason::Shutdown => &self.shed_shutdown,
        };
        counter.inc();
    }

    fn record_served(&self, priority: Priority, latency: Duration, degraded: bool) {
        if degraded {
            self.degraded.inc();
        } else {
            self.exact.inc();
        }
        self.latency_us[priority.rank()].record(latency.as_micros() as u64);
    }
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

/// A request sitting in the admission queue (not yet stamped with an
/// epoch — the scheduler stamps at grouping time).
struct Pending {
    query: Arc<QueryGraph>,
    /// Signature computed once at submission (it already keyed the
    /// answer-cache probe there) and reused at grouping time.
    sig: u64,
    /// Effective top-k for this request (the backend default unless the
    /// caller tuned it via [`QueryParams`]).
    k: usize,
    /// Effective pss threshold for this request.
    tau: f64,
    priority: Priority,
    deadline: Instant,
    ticket: Arc<TicketState>,
}

struct SchedState {
    queue: Vec<Pending>,
    draining: bool,
    inflight: usize,
}

/// A cached prepared query, valid while its epoch matches the backend's
/// and its tuned-config tag matches the batch's.
struct CachedPlan<P> {
    query: Arc<QueryGraph>,
    epoch: u64,
    /// Tuned-config fingerprint the plan was prepared under. One plan per
    /// query shape: a request with different (k, τ) replaces it rather
    /// than sharing it — mixed-parameter plans must never cross-serve.
    tag: u64,
    prepared: Arc<P>,
}

/// EWMA of one query shape's observed exact-execution profile, feeding the
/// [`estimate_ns`] admission estimator.
#[derive(Clone)]
struct CostProfile {
    /// The query the profile was measured on (signatures are only a hash
    /// prefilter; a collision must not lend one query another's costs).
    query: Arc<QueryGraph>,
    /// Critical-path search time (max per-sub-query wall clock), ns.
    search_ns: u64,
    /// TA sorted accesses of the run (the `Σ|M̂ᵢ|` proxy).
    accesses: u64,
}

struct Shared<B: SchedBackend> {
    config: SchedConfig,
    state: Mutex<SchedState>,
    /// Wakes the scheduler: new admissions, freed dispatch slots, drain.
    sched_cv: Condvar,
    /// The scheduler's own metrics registry (`sgq_sched_*` names) — the
    /// backend service keeps its registry; [`SchedHandle::metrics`]
    /// exposes this one, and callers can `extend` snapshots to merge.
    registry: Arc<MetricsRegistry>,
    stats: SchedCounters,
    /// Sampled per-query traces of batch executions, fan-out time filled.
    traces: TraceSink,
    /// Deterministic 1-in-N sampling tick for batch executions.
    trace_tick: AtomicU64,
    plans: Mutex<FxHashMap<u64, CachedPlan<B::Prepared>>>,
    costs: Mutex<FxHashMap<u64, CostProfile>>,
    /// The semantic answer cache (see module docs). Locked on its own —
    /// never while `state`, `plans`, or `costs` is held.
    answers: Mutex<AnswerCache>,
}

impl<B: SchedBackend> Shared<B> {
    fn new(config: SchedConfig) -> Self {
        let registry = Arc::new(MetricsRegistry::default());
        let stats = SchedCounters::new(&registry);
        let answers = Mutex::new(AnswerCache::new(config.answer_cache_capacity));
        Self {
            config,
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                draining: false,
                inflight: 0,
            }),
            sched_cv: Condvar::new(),
            registry,
            stats,
            traces: TraceSink::default(),
            trace_tick: AtomicU64::new(0),
            plans: Mutex::new(FxHashMap::default()),
            costs: Mutex::new(FxHashMap::default()),
            answers,
        }
    }

    /// Probes the answer cache for `query` at the backend's current epoch.
    /// `Some` is a finished outcome (verbatim or dominance-trimmed hit,
    /// the `bool` saying which) the caller fans out without touching the
    /// engine; `None` means miss (or a stale entry, now evicted) and the
    /// request takes the normal path. Miss/stale counters are recorded
    /// here; the caller records the hit counters *after* `record_served`
    /// so snapshots never show more cache-served answers than exacts.
    ///
    /// Called from `submit` *without* the state lock held — the cache has
    /// its own lock and the epoch read is a plain atomic load on both
    /// backends, so a hit costs two uncontended lock acquisitions total.
    fn serve_from_cache(
        &self,
        backend: &B,
        query: &QueryGraph,
        sig: u64,
        k: usize,
        tau: f64,
    ) -> Option<(SchedOutcome, bool)> {
        if self.config.answer_cache_capacity == 0 {
            return None;
        }
        // Out-of-contract parameters never touch the cache: the engine
        // rejects them at validation, and the dominance order is only
        // meaningful for finite τ ∈ [0, 1] and k ≥ 1.
        if k == 0 || !tau.is_finite() || !(0.0..=1.0).contains(&tau) {
            return None;
        }
        let family = family_fingerprint(backend.config());
        let epoch = backend.current_epoch();
        let lookup = {
            let mut answers = self.answers.lock().unwrap();
            let lookup = answers.lookup((family, sig), query, epoch, k, tau);
            self.stats.answer_entries.set(answers.len() as i64);
            lookup
        };
        match lookup {
            AnswerLookup::Hit(result) => Some((SchedOutcome::Exact((*result).clone()), false)),
            AnswerLookup::Trimmed(result) => Some((SchedOutcome::Exact(result), true)),
            AnswerLookup::Stale => {
                // A stale probe is also a miss: the request goes on to the
                // engine like any other.
                self.stats.answer_stale.inc();
                self.stats.answer_misses.inc();
                None
            }
            AnswerLookup::Miss => {
                self.stats.answer_misses.inc();
                None
            }
        }
    }

    /// Stores one exact batch result in the answer cache, stamped with the
    /// epoch the *prepared plan* answered from — the only epoch at which
    /// this answer is provably the direct path's answer.
    fn fill_answer(
        &self,
        backend: &B,
        batch: &Batch,
        result: &QueryResult,
        prepared: &B::Prepared,
    ) {
        if self.config.answer_cache_capacity == 0 {
            return;
        }
        let family = family_fingerprint(backend.config());
        let epoch = backend.prepared_epoch(prepared);
        let mut answers = self.answers.lock().unwrap();
        answers.insert(
            (family, batch.sig),
            &batch.query,
            epoch,
            batch.k,
            batch.tau,
            Arc::new(result.clone()),
        );
        self.stats.answer_entries.set(answers.len() as i64);
    }

    fn resolve_shed(&self, ticket: &TicketState, reason: ShedReason) {
        self.stats.record_shed(reason);
        ticket.resolve(SchedOutcome::Shed(reason));
    }

    /// Counters are updated **before** the ticket resolves: resolution
    /// releases the waiting client, which may immediately read the stats.
    fn resolve_served(&self, req: &BatchRequest, outcome: SchedOutcome) {
        if matches!(outcome, SchedOutcome::Failed(_)) {
            self.stats.failed.inc();
        } else {
            let degraded = matches!(outcome, SchedOutcome::Degraded { .. });
            self.stats
                .record_served(req.priority, req.ticket.submitted.elapsed(), degraded);
        }
        req.ticket.resolve(outcome);
    }

    fn begin_drain(&self) {
        self.state.lock().unwrap().draining = true;
        self.sched_cv.notify_all();
    }

    /// Predicted exact-execution cost for `batch`'s query in nanoseconds —
    /// the Algorithm-3 estimate over the shape's observed profile — or
    /// `None` before the first observation. Like every sig-keyed cache
    /// here, the hash is only a prefilter: the profile carries its query
    /// and a collision reads as "no profile", never as a borrowed one.
    fn predict_ns(&self, batch: &Batch) -> Option<u128> {
        let costs = self.costs.lock().unwrap();
        costs
            .get(&batch.sig)
            .filter(|p| *p.query == *batch.query)
            .map(|p| {
                estimate_ns(
                    Duration::from_nanos(p.search_ns),
                    self.config.per_match_ta_cost.as_nanos(),
                    p.accesses as usize,
                )
            })
    }

    /// Folds one observed exact execution into the query shape's EWMA
    /// profile. A sig-colliding profile of a *different* query is replaced,
    /// not blended.
    fn observe(&self, batch: &Batch, stats: &QueryStats) {
        let search_ns = stats
            .per_subquery_us
            .iter()
            .copied()
            .max()
            .unwrap_or(stats.elapsed_us)
            .saturating_mul(1_000);
        let accesses = stats.ta_accesses as u64;
        let mut costs = self.costs.lock().unwrap();
        if costs.len() >= self.config.plan_cache_capacity && !costs.contains_key(&batch.sig) {
            costs.clear();
        }
        let entry = costs
            .entry(batch.sig)
            .and_modify(|p| {
                if *p.query != *batch.query {
                    *p = CostProfile {
                        query: Arc::clone(&batch.query),
                        search_ns,
                        accesses,
                    };
                }
            })
            .or_insert_with(|| CostProfile {
                query: Arc::clone(&batch.query),
                search_ns,
                accesses,
            });
        entry.search_ns = (entry.search_ns / 4).saturating_mul(3) + search_ns / 4;
        entry.accesses = (entry.accesses / 4).saturating_mul(3) + accesses / 4;
    }

    /// Shrinks the query shape's predicted cost after a bound-limited
    /// degraded run. Without this, one inflated observation (a cold first
    /// execution) would route the shape to the degraded path forever —
    /// degraded runs are truncated by their bound, so they can never raise
    /// a fresh full-cost sample. Decaying the profile re-admits an exact
    /// attempt after a few degradations, whose observation then corrects
    /// the estimate in whichever direction is true.
    fn decay(&self, batch: &Batch) {
        let mut costs = self.costs.lock().unwrap();
        if let Some(p) = costs.get_mut(&batch.sig) {
            if *p.query == *batch.query {
                p.search_ns -= p.search_ns / 8;
                p.accesses -= p.accesses / 8;
            }
        }
    }

    /// The prepared query for `batch`, from the cache when it was built for
    /// the epoch the batch was stamped with, otherwise freshly prepared
    /// (and cached). The validity check anchors to `batch.epoch` — the
    /// stamp exists precisely so that a writer committing between grouping
    /// and execution neither thrashes the cache nor lets two batches of one
    /// stamp answer from different epochs.
    fn plan(&self, backend: &B, batch: &Batch) -> Result<Arc<B::Prepared>> {
        {
            let plans = self.plans.lock().unwrap();
            if let Some(entry) = plans.get(&batch.sig) {
                if entry.epoch == batch.epoch
                    && entry.tag == batch.config_tag
                    && *entry.query == *batch.query
                {
                    self.stats.plan_cache_hits.inc();
                    return Ok(Arc::clone(&entry.prepared));
                }
            }
        }
        self.stats.plan_cache_misses.inc();
        // Prepare under the batch's effective (k, τ): the backend's config
        // with the tuned parameters substituted. For untuned requests this
        // IS the backend config, and `prepare_tuned` is contractually
        // identical to `prepare` there.
        let mut tuned_config = backend.config().clone();
        tuned_config.k = batch.k;
        tuned_config.tau = batch.tau;
        let prepare = || match catch_unwind(AssertUnwindSafe(|| {
            backend.prepare_tuned(&batch.query, &tuned_config)
        })) {
            Ok(result) => result.map(Arc::new),
            Err(_) => Err(SgqError::Scheduler(
                "query preparation panicked inside the scheduler".into(),
            )),
        };
        // On a live backend, prepare() can pin an epoch *older* than the
        // batch's stamp: `pin()` hands out the previous engine when it
        // loses the rebuild race to a concurrent query. Retry briefly — but
        // never cache a stale plan under a newer stamp, or the staleness
        // outlives the (direct-path-equivalent) race window.
        let mut prepared = prepare()?;
        for _ in 0..2 {
            if backend.prepared_epoch(&prepared) >= batch.epoch {
                break;
            }
            std::thread::yield_now();
            prepared = prepare()?;
        }
        if backend.prepared_epoch(&prepared) >= batch.epoch {
            let mut plans = self.plans.lock().unwrap();
            if plans.len() >= self.config.plan_cache_capacity && !plans.contains_key(&batch.sig) {
                // Cache full: reset rather than grow without bound. Crude,
                // but the cache refills with the live working set within
                // one round.
                plans.clear();
            }
            // Cached under the batch's *stamp* (a plan pinned to a newer
            // epoch by a racing commit is fine — the direct path would
            // answer from that epoch at this moment too): every later
            // batch with this stamp reuses this one plan.
            plans.insert(
                batch.sig,
                CachedPlan {
                    query: Arc::clone(&batch.query),
                    epoch: batch.epoch,
                    tag: batch.config_tag,
                    prepared: Arc::clone(&prepared),
                },
            );
        }
        Ok(prepared)
    }
}

/// Client handle passed to the closure of [`BatchScheduler::serve`].
/// `&self` methods — share it freely across client threads.
pub struct SchedHandle<'s, B: SchedBackend> {
    backend: &'s B,
    shared: &'s Shared<B>,
}

impl<B: SchedBackend> SchedHandle<'_, B> {
    /// Submits a query with a deadline `within` from now. Returns
    /// immediately with a [`Ticket`]; the scheduler resolves it with an
    /// exact answer, a flagged degradation, an explicit shed, or the
    /// engine's error.
    pub fn submit(&self, query: &QueryGraph, within: Duration, priority: Priority) -> Ticket {
        self.submit_with(query, QueryParams::default(), within, priority)
    }

    /// [`SchedHandle::submit`] with per-request (k, τ) overrides. `None`
    /// fields fall back to the backend engine's configured values, so
    /// `QueryParams::default()` is exactly `submit`.
    ///
    /// The answer cache is probed here, on the client thread, before
    /// admission: a hit resolves the ticket immediately with the cached
    /// (or dominance-trimmed) certified answer and the request never
    /// enters the queue — it counts as `submitted` and `exact` but not as
    /// `admitted` or `batched_requests`.
    pub fn submit_with(
        &self,
        query: &QueryGraph,
        params: QueryParams,
        within: Duration,
        priority: Priority,
    ) -> Ticket {
        let state = Arc::new(TicketState::new());
        let ticket = Ticket {
            state: Arc::clone(&state),
        };
        let shared = self.shared;
        shared.stats.submitted.inc();
        let (k, tau) = params.resolve(self.backend.config());
        let sig = query_signature(query);
        // A huge `within` ("no deadline, ever") must read as slack, not
        // panic on Instant overflow; a year out is beyond any plausible
        // prediction, so such requests always take the exact path.
        let deadline = state
            .submitted
            .checked_add(within)
            .unwrap_or_else(|| state.submitted + Duration::from_secs(365 * 24 * 3600));
        // Drain is checked before the cache probe: once the scheduler is
        // shutting down, every submission sheds with `Shutdown`,
        // cache-warm or not — a drained scheduler serving some requests
        // from cache would make shutdown behaviour data-dependent.
        if shared.state.lock().unwrap().draining {
            shared.resolve_shed(&state, ShedReason::Shutdown);
            return ticket;
        }
        // Only requests with at least the shed margin of slack are served
        // from cache: tighter deadlines belong to admission control, and
        // their shed/unmeetable outcomes must not depend on cache warmth —
        // a zero-deadline request sheds whether or not its answer is warm.
        let cacheable = within > shared.config.shed_margin;
        if let Some((outcome, dominance)) = cacheable
            .then(|| shared.serve_from_cache(self.backend, query, sig, k, tau))
            .flatten()
        {
            shared
                .stats
                .record_served(priority, state.submitted.elapsed(), false);
            if dominance {
                shared.stats.answer_dominance_hits.inc();
            } else {
                shared.stats.answer_hits.inc();
            }
            state.resolve(outcome);
            return ticket;
        }
        let pending = Pending {
            query: Arc::new(query.clone()),
            sig,
            k,
            tau,
            priority,
            deadline,
            ticket: state,
        };
        let mut st = shared.state.lock().unwrap();
        if st.draining {
            // Re-check: drain may have begun while the cache was probed.
            drop(st);
            shared.resolve_shed(&pending.ticket, ShedReason::Shutdown);
            return ticket;
        }
        if st.queue.len() >= shared.config.queue_capacity {
            // Full: shed the least urgent queued request if it is strictly
            // less urgent than the arrival, otherwise shed the arrival.
            let victim = st
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| (p.priority.rank(), p.deadline))
                .map(|(i, _)| i)
                .filter(|&i| st.queue[i].priority.rank() > priority.rank());
            match victim {
                Some(i) => {
                    let evicted = st.queue.swap_remove(i);
                    st.queue.push(pending);
                    drop(st);
                    shared.resolve_shed(&evicted.ticket, ShedReason::QueueFull);
                }
                None => {
                    drop(st);
                    shared.resolve_shed(&pending.ticket, ShedReason::QueueFull);
                    return ticket;
                }
            }
        } else {
            st.queue.push(pending);
            let depth = st.queue.len() as i64;
            shared.stats.max_queue_depth.set_max(depth);
            drop(st);
        }
        shared.stats.admitted.inc();
        shared.sched_cv.notify_all();
        ticket
    }

    /// Submits and blocks for the response — the scheduled counterpart of
    /// [`QueryService::query`].
    pub fn query_within(
        &self,
        query: &QueryGraph,
        within: Duration,
        priority: Priority,
    ) -> SchedResponse {
        self.submit(query, within, priority).wait()
    }

    /// [`SchedHandle::query_within`] with per-request (k, τ) overrides.
    pub fn query_within_with(
        &self,
        query: &QueryGraph,
        params: QueryParams,
        within: Duration,
        priority: Priority,
    ) -> SchedResponse {
        self.submit_with(query, params, within, priority).wait()
    }

    /// Snapshot of the scheduler counters.
    pub fn stats(&self) -> SchedStats {
        let mut stats = self.shared.stats.snapshot();
        stats.queue_depth = self.shared.state.lock().unwrap().queue.len() as u64;
        stats
    }

    /// The scheduler's metrics registry (`sgq_sched_*` names). Extend a
    /// backend-service snapshot with [`SchedHandle::metrics`] to scrape
    /// both through one endpoint.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Point-in-time snapshot of every scheduler metric, with the
    /// queue-depth gauge refreshed first. Renders via
    /// [`MetricsSnapshot::to_prometheus`] / [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let depth = self.shared.state.lock().unwrap().queue.len() as i64;
        self.shared.stats.queue_depth.set(depth);
        self.shared.registry.snapshot()
    }

    /// Sampled batch-execution traces (fan-out phase filled by the
    /// scheduler). Sampling is controlled by the backend engine's
    /// [`SgqConfig::trace_sample_every`].
    pub fn traces(&self) -> &TraceSink {
        &self.shared.traces
    }
}

/// Sets `draining` even when the serve closure panics, so the scheduler
/// thread (and the enclosing `thread::scope`) can always finish.
struct DrainGuard<'s, B: SchedBackend>(&'s Shared<B>);

impl<B: SchedBackend> Drop for DrainGuard<'_, B> {
    fn drop(&mut self) {
        self.0.begin_drain();
    }
}

/// The deadline-aware batch scheduler (see module docs).
pub struct BatchScheduler;

impl BatchScheduler {
    /// Runs a scheduler over `backend` for the duration of `f`. The closure
    /// receives a [`SchedHandle`] that any number of client threads may
    /// share; when it returns, the scheduler drains — every already
    /// admitted request is still resolved (executed or explicitly shed)
    /// before `serve` returns.
    pub fn serve<B, F, R>(backend: &B, config: SchedConfig, f: F) -> Result<R>
    where
        B: SchedBackend,
        F: FnOnce(&SchedHandle<'_, B>) -> R,
    {
        config.validate()?;
        let shared = Shared::<B>::new(config);
        Ok(std::thread::scope(|ts| {
            ts.spawn(|| scheduler_main(backend, &shared));
            let _drain = DrainGuard(&shared);
            f(&SchedHandle {
                backend,
                shared: &shared,
            })
        }))
    }
}

/// The scheduler thread: drains admissions, groups batches, dispatches
/// them EDF as jobs on the backend's worker pool.
fn scheduler_main<B: SchedBackend>(backend: &B, shared: &Shared<B>) {
    let max_inflight = if shared.config.max_inflight == 0 {
        backend.pool().workers()
    } else {
        shared.config.max_inflight
    };
    // The config *family* (everything but k and τ) is fixed for the
    // backend's lifetime; each request's tag combines it with the
    // request's effective (k, τ), so tuned and untuned requests of one
    // shape never share a batch or a plan.
    let family = family_fingerprint(backend.config());
    let mut batcher = Batcher::new(shared.config.max_batch);

    backend.pool().scope(|scope| {
        loop {
            // Wait for admissions, a freed dispatch slot, or drain.
            let (drained, draining) = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    let can_dispatch = !batcher.is_empty() && st.inflight < max_inflight;
                    // While draining with work still in flight, keep
                    // sleeping — completions wake this thread; draining
                    // alone must not spin.
                    let drained_out = st.draining && st.inflight == 0;
                    if !st.queue.is_empty() || can_dispatch || drained_out {
                        break;
                    }
                    st = shared.sched_cv.wait(st).unwrap();
                }
                (std::mem::take(&mut st.queue), st.draining)
            };

            // Group, stamping each request with the epoch observed now —
            // requests observed at different epochs never share a batch.
            let epoch = backend.current_epoch();
            let now = Instant::now();
            for p in drained {
                if p.deadline <= now {
                    shared.resolve_shed(&p.ticket, ShedReason::Expired);
                    continue;
                }
                batcher.offer(BatchRequest {
                    sig: p.sig,
                    query: p.query,
                    epoch,
                    config_tag: tuned_fingerprint(family, p.k, p.tau),
                    k: p.k,
                    tau: p.tau,
                    priority: p.priority,
                    deadline: p.deadline,
                    ticket: p.ticket,
                });
            }

            // Dispatch EDF while slots are free.
            while !batcher.is_empty() {
                {
                    let mut st = shared.state.lock().unwrap();
                    if st.inflight >= max_inflight {
                        break;
                    }
                    st.inflight += 1;
                }
                let Some(batch) = batcher.pop_earliest() else {
                    // Unreachable given the loop guard, but inflight was
                    // already claimed — release it rather than panic.
                    shared.state.lock().unwrap().inflight -= 1;
                    break;
                };
                shared.stats.batches.inc();
                shared
                    .stats
                    .batched_requests
                    .add(batch.members.len() as u64);
                scope.spawn(move || {
                    run_batch(backend, shared, batch);
                    shared.state.lock().unwrap().inflight -= 1;
                    shared.sched_cv.notify_all();
                });
            }

            if draining {
                let st = shared.state.lock().unwrap();
                if st.queue.is_empty() && batcher.is_empty() && st.inflight == 0 {
                    break;
                }
            }
        }
        // Defensive: resolve anything the loop logic somehow left behind
        // (there should be none — the drain condition above requires an
        // empty batcher).
        for batch in batcher.drain() {
            for m in batch.members {
                shared.resolve_shed(&m.ticket, ShedReason::Shutdown);
            }
        }
    });
}

/// Executes one batch: partitions members into exact / degraded / shed by
/// deadline feasibility, plans once, executes at most twice (one exact run,
/// one reduced-bound TBQ run), fans results out.
fn run_batch<B: SchedBackend>(backend: &B, shared: &Shared<B>, mut batch: Batch) {
    let cfg = &shared.config;
    let per_match_ns = cfg.per_match_ta_cost.as_nanos();
    // The fixed cost of getting any answer out: dispatch, preparation (on
    // a plan-cache miss), fan-out — modelled as elapsed time with zero
    // collected matches.
    let overhead_ns = estimate_ns(cfg.shed_margin, per_match_ns, 0);
    let predicted_ns = shared.predict_ns(&batch);

    let now = Instant::now();
    let mut exact_members: Vec<BatchRequest> = Vec::new();
    let mut tight_members: Vec<BatchRequest> = Vec::new();
    for m in std::mem::take(&mut batch.members) {
        let Some(remaining) = m.deadline.checked_duration_since(now) else {
            shared.resolve_shed(&m.ticket, ShedReason::Expired);
            continue;
        };
        let remaining_ns = remaining.as_nanos();
        if overhead_ns >= remaining_ns {
            // Provably unmeetable: even a zero-work answer misses.
            shared.resolve_shed(&m.ticket, ShedReason::Unmeetable);
            continue;
        }
        match predicted_ns {
            Some(p) if p.saturating_add(overhead_ns) > remaining_ns => tight_members.push(m),
            // Unknown cost: run exact optimistically; the observation
            // feeds the estimator for every later request of this shape.
            _ => exact_members.push(m),
        }
    }
    if exact_members.is_empty() && tight_members.is_empty() {
        return;
    }

    let prepared = match shared.plan(backend, &batch) {
        Ok(p) => p,
        Err(e) => {
            for m in exact_members.iter().chain(&tight_members) {
                shared.resolve_served(m, SchedOutcome::Failed(e.clone()));
            }
            return;
        }
    };

    if !exact_members.is_empty() {
        // Deterministic 1-in-N sampling of batch executions: a sampled run
        // goes through the backend's traced path (same answer, proven by
        // `tests/trace_differential.rs`) and the scheduler adds the one
        // phase only it can see — fanning the result out to the members.
        let sampled = tick_sampled(&shared.trace_tick, backend.config().trace_sample_every);
        let (outcome, mut trace) = if sampled {
            match catch_unwind(AssertUnwindSafe(|| backend.execute_traced(&prepared))) {
                Ok(Ok((result, trace))) => {
                    shared.observe(&batch, &result.stats);
                    (SchedOutcome::Exact(result), Some(trace))
                }
                Ok(Err(e)) => (SchedOutcome::Failed(e), None),
                Err(_) => (
                    SchedOutcome::Failed(SgqError::Scheduler(
                        "exact execution panicked inside the scheduler".into(),
                    )),
                    None,
                ),
            }
        } else {
            let guarded = catch_unwind(AssertUnwindSafe(|| backend.execute(&prepared)));
            let outcome = match guarded {
                Ok(Ok(result)) => {
                    shared.observe(&batch, &result.stats);
                    SchedOutcome::Exact(result)
                }
                Ok(Err(e)) => SchedOutcome::Failed(e),
                Err(_) => SchedOutcome::Failed(SgqError::Scheduler(
                    "exact execution panicked inside the scheduler".into(),
                )),
            };
            (outcome, None)
        };
        // Fill the answer cache *before* fan-out: a client woken by its
        // ticket can resubmit the same query and find the answer warm.
        if let SchedOutcome::Exact(result) = &outcome {
            shared.fill_answer(backend, &batch, result, &prepared);
        }
        let fan_t = trace.as_ref().map(|_| Instant::now());
        for m in &exact_members {
            shared.resolve_served(m, outcome.clone());
        }
        if let (Some(mut tr), Some(t0)) = (trace.take(), fan_t) {
            tr.fan_out_ns = t0.elapsed().as_nanos() as u64;
            shared.stats.fan_out_ns.record(tr.fan_out_ns);
            shared.traces.push(tr);
        }
    }

    if !tight_members.is_empty() {
        // Re-check feasibility: the exact run above may have consumed the
        // tight members' remaining time.
        let now = Instant::now();
        let mut bound = Duration::MAX;
        let mut survivors: Vec<BatchRequest> = Vec::new();
        for m in tight_members {
            let Some(remaining) = m.deadline.checked_duration_since(now) else {
                shared.resolve_shed(&m.ticket, ShedReason::Expired);
                continue;
            };
            if estimate_ns(cfg.shed_margin, per_match_ns, 0) >= remaining.as_nanos() {
                shared.resolve_shed(&m.ticket, ShedReason::Unmeetable);
                continue;
            }
            bound = bound.min(remaining.saturating_sub(cfg.shed_margin));
            survivors.push(m);
        }
        if survivors.is_empty() {
            return;
        }
        let tb = TimeBoundConfig {
            bound,
            alert_ratio: cfg.degrade_alert_ratio,
            per_match_ta_cost: cfg.per_match_ta_cost,
        };
        let guarded = catch_unwind(AssertUnwindSafe(|| {
            backend.execute_time_bounded(&prepared, &tb)
        }));
        let outcome = match guarded {
            Ok(Ok(result)) => {
                if result.stats.time_bound_hit {
                    // Truncated by the bound: the true cost is unknowable
                    // from this run; decay the profile so exact attempts
                    // are eventually re-admitted.
                    shared.decay(&batch);
                } else {
                    // Drained naturally inside the bound — a genuine
                    // full-cost sample.
                    shared.observe(&batch, &result.stats);
                }
                SchedOutcome::Degraded { result, bound }
            }
            Ok(Err(e)) => SchedOutcome::Failed(e),
            Err(_) => SchedOutcome::Failed(SgqError::Scheduler(
                "time-bounded execution panicked inside the scheduler".into(),
            )),
        };
        for m in &survivors {
            shared.resolve_served(m, outcome.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embedding::PredicateSpace;
    use kgraph::{GraphBuilder, KnowledgeGraph};
    use lexicon::TransformationLibrary;
    use proptest::prelude::*;

    fn fixture() -> (KnowledgeGraph, PredicateSpace, TransformationLibrary) {
        let mut b = GraphBuilder::new();
        let audi = b.add_node("Audi_TT", "Automobile");
        let bmw = b.add_node("BMW_320", "Automobile");
        let de = b.add_node("Germany", "Country");
        b.add_edge(audi, de, "assembly");
        b.add_edge(bmw, de, "product");
        let g = b.finish();
        let (vecs, labels): (Vec<Vec<f32>>, Vec<String>) = g
            .predicates()
            .map(|(_, l)| (vec![1.0f32, 0.0], l.to_string()))
            .unzip();
        let space = PredicateSpace::from_raw(vecs, labels);
        (g, space, TransformationLibrary::new())
    }

    fn product_query() -> QueryGraph {
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "product", de);
        q
    }

    fn assembly_query() -> QueryGraph {
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de);
        q
    }

    fn sched_config() -> SchedConfig {
        SchedConfig::default()
    }

    #[test]
    fn scheduled_exact_matches_direct_path() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let direct = service.query(&product_query()).unwrap();
        let response = BatchScheduler::serve(&service, sched_config(), |handle| {
            handle.query_within(&product_query(), Duration::from_secs(10), Priority::Normal)
        })
        .unwrap();
        match response.outcome {
            SchedOutcome::Exact(r) => assert_eq!(r.matches, direct.matches),
            other => panic!("slack deadline must yield the exact answer, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let direct = service.query(&product_query()).unwrap();
        // Answer cache off: this test asserts the *batching* counters, and
        // cache hits would keep repeats out of the queue entirely.
        let config = SchedConfig {
            answer_cache_capacity: 0,
            ..SchedConfig::default()
        };
        let stats = BatchScheduler::serve(&service, config, |handle| {
            let tickets: Vec<Ticket> = (0..32)
                .map(|_| handle.submit(&product_query(), Duration::from_secs(10), Priority::Normal))
                .collect();
            for t in tickets {
                match t.wait().outcome {
                    SchedOutcome::Exact(r) => assert_eq!(r.matches, direct.matches),
                    other => panic!("expected exact, got {other:?}"),
                }
            }
            handle.stats()
        })
        .unwrap();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.exact, 32);
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.batched_requests, 32);
        assert!(
            stats.batches < 32,
            "32 identical concurrent requests must coalesce into fewer executions: {stats:?}"
        );
        assert!(stats.mean_batch_size() > 1.0);
    }

    #[test]
    fn zero_deadline_requests_are_shed_not_answered_wrong() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let stats = BatchScheduler::serve(&service, sched_config(), |handle| {
            for _ in 0..8 {
                let r = handle.query_within(&product_query(), Duration::ZERO, Priority::Low);
                assert!(
                    r.outcome.is_shed(),
                    "an already-expired deadline must shed, got {:?}",
                    r.outcome
                );
            }
            handle.stats()
        })
        .unwrap();
        assert_eq!(stats.shed(), 8);
        assert_eq!(stats.exact + stats.degraded, 0);
    }

    /// A backend that never executes anything — for tests that exercise
    /// pure admission-queue mechanics without a scheduler thread.
    struct NullBackend {
        config: SgqConfig,
        pool: Arc<WorkerPool>,
    }

    impl NullBackend {
        fn new() -> Self {
            Self {
                config: SgqConfig::default(),
                pool: Arc::new(WorkerPool::new(1)),
            }
        }
    }

    impl SchedBackend for NullBackend {
        type Prepared = ();

        fn current_epoch(&self) -> u64 {
            0
        }

        fn config(&self) -> &SgqConfig {
            &self.config
        }

        fn prepare(&self, _query: &QueryGraph) -> Result<()> {
            Err(SgqError::Scheduler("null backend".into()))
        }

        fn prepare_tuned(&self, _query: &QueryGraph, _config: &SgqConfig) -> Result<()> {
            Err(SgqError::Scheduler("null backend".into()))
        }

        fn prepared_epoch(&self, _prepared: &()) -> u64 {
            0
        }

        fn execute(&self, _prepared: &()) -> Result<QueryResult> {
            Err(SgqError::Scheduler("null backend".into()))
        }

        fn execute_traced(&self, _prepared: &()) -> Result<(QueryResult, QueryTrace)> {
            Err(SgqError::Scheduler("null backend".into()))
        }

        fn execute_time_bounded(
            &self,
            _prepared: &(),
            _tb: &TimeBoundConfig,
        ) -> Result<QueryResult> {
            Err(SgqError::Scheduler("null backend".into()))
        }

        fn pool(&self) -> &WorkerPool {
            &self.pool
        }
    }

    /// Victim selection at queue overflow, deterministically: no scheduler
    /// thread runs, so the admission queue is drained by nobody and every
    /// overflow decision is observable.
    #[test]
    fn queue_overflow_sheds_lowest_priority_first() {
        let backend = NullBackend::new();
        let shared = Shared::<NullBackend>::new(SchedConfig {
            queue_capacity: 2,
            ..SchedConfig::default()
        });
        let handle = SchedHandle {
            backend: &backend,
            shared: &shared,
        };
        let q = product_query();
        let within = Duration::from_secs(5);

        let low_a = handle.submit(&q, within, Priority::Low);
        let low_b = handle.submit(&q, within, Priority::Low);
        assert!(low_a.peek().is_none(), "queued, not resolved");

        // A High arrival evicts the least urgent queued Low.
        let high_a = handle.submit(&q, within, Priority::High);
        assert!(matches!(
            low_b.peek().map(|r| r.outcome),
            Some(SchedOutcome::Shed(ShedReason::QueueFull))
        ));
        let high_b = handle.submit(&q, within, Priority::High);
        assert!(matches!(
            low_a.peek().map(|r| r.outcome),
            Some(SchedOutcome::Shed(ShedReason::QueueFull))
        ));

        // Queue now holds two Highs: an equal-urgency arrival is shed
        // itself, the queued ones survive.
        let high_c = handle.submit(&q, within, Priority::High);
        assert!(matches!(
            high_c.wait().outcome,
            SchedOutcome::Shed(ShedReason::QueueFull)
        ));
        assert!(high_a.peek().is_none());
        assert!(high_b.peek().is_none());

        let stats = handle.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.shed_queue_full, 3);
        assert_eq!(stats.queue_depth, 2);
    }

    /// Overload burst end-to-end: every ticket resolves exactly once, no
    /// hangs, and the counters account for every request.
    #[test]
    fn overload_burst_resolves_every_ticket() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 1,
                ..SgqConfig::default()
            },
        );
        let config = SchedConfig {
            queue_capacity: 4,
            max_inflight: 1,
            ..SchedConfig::default()
        };
        let stats = BatchScheduler::serve(&service, config, |handle| {
            let tickets: Vec<Ticket> = (0..64)
                .map(|i| {
                    let prio = if i % 2 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    };
                    handle.submit(&product_query(), Duration::from_secs(5), prio)
                })
                .collect();
            for t in tickets {
                let _ = t.wait();
            }
            handle.stats()
        })
        .unwrap();
        assert_eq!(
            stats.exact + stats.degraded + stats.shed() + stats.failed,
            64,
            "every request resolves exactly once: {stats:?}"
        );
    }

    /// Regression: [`SchedStats`] snapshots taken *mid-traffic* must never
    /// show more outcomes than submissions. The old snapshot read
    /// `submitted` first, so a request submitted and resolved between the
    /// two reads counted as an outcome against a stale `submitted`;
    /// outcome counters are now read first and `submitted` last.
    #[test]
    fn mid_traffic_snapshots_never_overcount_outcomes() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let config = SchedConfig {
            queue_capacity: 8,
            max_inflight: 1,
            ..SchedConfig::default()
        };
        BatchScheduler::serve(&service, config, |handle| {
            std::thread::scope(|ts| {
                // Two client threads racing submissions against the
                // snapshot reader below.
                for t in 0..2 {
                    ts.spawn(move || {
                        for i in 0..64 {
                            let prio = if (t + i) % 2 == 0 {
                                Priority::Low
                            } else {
                                Priority::High
                            };
                            let _ = handle
                                .submit(&product_query(), Duration::from_secs(5), prio)
                                .wait();
                        }
                    });
                }
                for _ in 0..512 {
                    let s = handle.stats();
                    let outcomes = s.exact + s.degraded + s.shed() + s.failed;
                    assert!(
                        outcomes <= s.submitted,
                        "snapshot shows {outcomes} outcomes for {} submissions: {s:?}",
                        s.submitted
                    );
                    std::thread::yield_now();
                }
            });
            let s = handle.stats();
            assert_eq!(s.exact + s.degraded + s.shed() + s.failed, 128);
        })
        .unwrap();
    }

    /// Sampled batch executions land in the scheduler's trace sink with the
    /// fan-out phase filled, the registry exposes `sgq_sched_*` metrics in
    /// both exposition formats, and the served-latency percentiles are
    /// coherent (p50 ≤ p90 ≤ p99 ≤ max, mean within [0, max]).
    #[test]
    fn sampled_batches_are_traced_and_metrics_expose_percentiles() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                trace_sample_every: 1, // trace every batch execution
                ..SgqConfig::default()
            },
        );
        // Answer cache off: this test is about traced *batch executions* —
        // with the cache on, repeats never execute, and the single batch's
        // trace push would race the client's sink check.
        let config = SchedConfig {
            answer_cache_capacity: 0,
            ..SchedConfig::default()
        };
        let (stats, snapshot) = BatchScheduler::serve(&service, config, |handle| {
            for _ in 0..8 {
                let r = handle.query_within(
                    &product_query(),
                    Duration::from_secs(10),
                    Priority::Normal,
                );
                assert!(matches!(r.outcome, SchedOutcome::Exact(_)));
            }
            assert!(
                !handle.traces().is_empty(),
                "sampling every execution must populate the sched sink"
            );
            let tr = handle.traces().recent()[0].clone();
            assert!(tr.total_ns > 0, "engine phases recorded: {tr:?}");
            (handle.stats(), handle.metrics())
        })
        .unwrap();

        let lat = stats.latency(Priority::Normal);
        assert_eq!(lat.served, 8);
        assert!(lat.p50_us <= lat.p90_us);
        assert!(lat.p90_us <= lat.p99_us);
        assert!(lat.p99_us <= lat.max_latency_us || lat.p99_us <= lat.max_latency_us + 1);
        assert!(lat.mean_latency_us() >= 0.0);
        assert!(lat.mean_latency_us() <= lat.max_latency_us as f64);

        let prom = snapshot.to_prometheus();
        assert!(prom.contains("# TYPE sgq_sched_submitted_total counter"));
        assert!(prom.contains("sgq_sched_submitted_total 8"));
        assert!(prom.contains("sgq_sched_latency_us{priority=\"normal\",quantile=\"0.99\"}"));
        assert!(prom.contains("sgq_sched_fan_out_ns"));
        let json = snapshot.to_json();
        assert!(json.contains("\"sgq_sched_exact_total\""));
        assert!(
            snapshot
                .find_labeled("sgq_sched_shed_total", "reason", "queue_full")
                .is_some(),
            "shed counters registered per reason"
        );
    }

    /// Regression (live backends): the plan cache anchors to the batch's
    /// epoch *stamp*. Same-epoch traffic must hit the cache; a commit must
    /// invalidate exactly once; and post-commit answers must see the new
    /// data.
    #[test]
    fn live_plan_cache_hits_within_an_epoch_and_rolls_on_commit() {
        let (g, space, lib) = fixture();
        let versioned = Arc::new(kgraph::VersionedGraph::new(g));
        let service = LiveQueryService::new(
            Arc::clone(&versioned),
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let q = product_query();
        // Answer cache off: this test asserts exact *plan-cache* hit/miss
        // counts, and answer-cache hits would bypass planning altogether.
        let config = SchedConfig {
            answer_cache_capacity: 0,
            ..SchedConfig::default()
        };
        let stats = BatchScheduler::serve(&service, config, |handle| {
            let within = Duration::from_secs(10);
            // Two sequential rounds at epoch 0: prepare once, then hit.
            let r1 = handle.query_within(&q, within, Priority::Normal);
            let r2 = handle.query_within(&q, within, Priority::Normal);
            assert_eq!(r1.outcome.result().unwrap().matches.len(), 2);
            assert_eq!(r2.outcome.result().unwrap().matches.len(), 2);
            let mid = handle.stats();
            assert_eq!(mid.plan_cache_misses, 1, "one preparation for epoch 0");
            assert_eq!(mid.plan_cache_hits, 1, "same stamp reuses the plan");

            versioned.insert_triple(
                ("Lamando", "Automobile"),
                "assembly",
                ("Germany", "Country"),
            );
            versioned.commit();

            // Two rounds at epoch 1: one fresh preparation, then a hit —
            // and the answers include the committed edge.
            let r3 = handle.query_within(&q, within, Priority::Normal);
            let r4 = handle.query_within(&q, within, Priority::Normal);
            assert_eq!(
                r3.outcome.result().unwrap().matches.len(),
                3,
                "post-commit batch must answer from the new epoch"
            );
            assert_eq!(
                r4.outcome.result().unwrap().matches,
                r3.outcome.result().unwrap().matches
            );
            handle.stats()
        })
        .unwrap();
        assert_eq!(stats.plan_cache_misses, 2, "exactly one miss per epoch");
        assert_eq!(stats.plan_cache_hits, 2);
        assert_eq!(stats.exact, 4);
    }

    /// Sequential repeats of one query: the first miss executes and fills
    /// the answer cache, every later submission is served from it without
    /// entering the queue — and the served answer is the direct path's.
    #[test]
    fn answer_cache_serves_repeats_without_execution() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let direct = service.query(&product_query()).unwrap();
        let stats = BatchScheduler::serve(&service, sched_config(), |handle| {
            for _ in 0..8 {
                let r = handle.query_within(
                    &product_query(),
                    Duration::from_secs(10),
                    Priority::Normal,
                );
                match r.outcome {
                    SchedOutcome::Exact(res) => assert_eq!(res.matches, direct.matches),
                    other => panic!("expected exact, got {other:?}"),
                }
            }
            handle.stats()
        })
        .unwrap();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.exact, 8);
        assert_eq!(
            stats.answer_cache_misses, 1,
            "only the cold submission misses"
        );
        assert_eq!(
            stats.answer_cache_hits, 7,
            "warm repeats are served from cache"
        );
        assert_eq!(stats.answer_cache_dominance_hits, 0);
        assert_eq!(
            stats.batches, 1,
            "only the cold submission reaches the engine"
        );
        assert_eq!(stats.batched_requests, 1);
        assert_eq!(stats.admitted, 1, "cache hits never enter the queue");
        assert_eq!(stats.answer_cache_entries, 1);
    }

    /// Dominance serving: a cached (k=5, τ=0) answer serves a later k=1
    /// request of the same query by trimming — counted separately, and the
    /// trimmed answer equals the from-scratch k=1 prefix.
    #[test]
    fn answer_cache_serves_dominated_requests_by_trimming() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let direct = service.query(&product_query()).unwrap();
        assert!(direct.matches.len() >= 2, "fixture yields multiple matches");
        let stats = BatchScheduler::serve(&service, sched_config(), |handle| {
            let warm =
                handle.query_within(&product_query(), Duration::from_secs(10), Priority::Normal);
            assert!(matches!(warm.outcome, SchedOutcome::Exact(_)));
            let trimmed = handle.query_within_with(
                &product_query(),
                QueryParams {
                    k: Some(1),
                    tau: None,
                },
                Duration::from_secs(10),
                Priority::Normal,
            );
            match trimmed.outcome {
                SchedOutcome::Exact(res) => {
                    assert_eq!(res.matches.len(), 1);
                    assert_eq!(res.matches[0], direct.matches[0]);
                }
                other => panic!("expected trimmed exact, got {other:?}"),
            }
            handle.stats()
        })
        .unwrap();
        assert_eq!(stats.answer_cache_dominance_hits, 1);
        assert_eq!(stats.answer_cache_hits, 0);
        assert_eq!(stats.batches, 1, "the dominated request never executes");
        assert_eq!(stats.exact, 2);
    }

    /// Epoch invalidation: a commit between two submissions of one query
    /// makes the cached answer stale — it is evicted, counted, and the
    /// fresh execution answers from the new epoch.
    #[test]
    fn answer_cache_never_serves_stale_epochs() {
        let (g, space, lib) = fixture();
        let versioned = Arc::new(kgraph::VersionedGraph::new(g));
        let service = LiveQueryService::new(
            Arc::clone(&versioned),
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 2,
                ..SgqConfig::default()
            },
        );
        let q = product_query();
        let stats = BatchScheduler::serve(&service, sched_config(), |handle| {
            let within = Duration::from_secs(10);
            let r1 = handle.query_within(&q, within, Priority::Normal);
            assert_eq!(r1.outcome.result().unwrap().matches.len(), 2);

            versioned.insert_triple(
                ("Lamando", "Automobile"),
                "assembly",
                ("Germany", "Country"),
            );
            versioned.commit();

            let r2 = handle.query_within(&q, within, Priority::Normal);
            assert_eq!(
                r2.outcome.result().unwrap().matches.len(),
                3,
                "the post-commit answer must come from the new epoch, not the cache"
            );
            handle.stats()
        })
        .unwrap();
        assert_eq!(stats.answer_cache_stale, 1, "the commit staled the entry");
        assert_eq!(stats.answer_cache_hits, 0);
        assert_eq!(stats.answer_cache_misses, 2, "a stale probe is also a miss");
        assert_eq!(stats.batches, 2, "both submissions executed");
    }

    #[test]
    fn submit_after_drain_is_shed_shutdown() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 5,
                tau: 0.0,
                workers: 1,
                ..SgqConfig::default()
            },
        );
        let (first, shutdown) = BatchScheduler::serve(&service, sched_config(), |handle| {
            let first =
                handle.query_within(&product_query(), Duration::from_secs(5), Priority::Normal);
            // Simulate a racing submit during drain.
            handle.shared.begin_drain();
            let late =
                handle.query_within(&product_query(), Duration::from_secs(5), Priority::Normal);
            (first, late)
        })
        .unwrap();
        assert!(matches!(first.outcome, SchedOutcome::Exact(_)));
        assert!(matches!(
            shutdown.outcome,
            SchedOutcome::Shed(ShedReason::Shutdown)
        ));
    }

    #[test]
    fn invalid_engine_config_surfaces_as_failed() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(
            &g,
            &space,
            &lib,
            SgqConfig {
                k: 0, // invalid
                workers: 1,
                ..SgqConfig::default()
            },
        );
        let response = BatchScheduler::serve(&service, sched_config(), |handle| {
            handle.query_within(&product_query(), Duration::from_secs(5), Priority::Normal)
        })
        .unwrap();
        assert!(matches!(response.outcome, SchedOutcome::Failed(_)));
        assert!(response.clone().outcome.into_result().is_err());
    }

    #[test]
    fn invalid_sched_config_is_rejected() {
        let (g, space, lib) = fixture();
        let service = QueryService::build(&g, &space, &lib, SgqConfig::default());
        let err = BatchScheduler::serve(
            &service,
            SchedConfig {
                queue_capacity: 0,
                ..SchedConfig::default()
            },
            |_| (),
        )
        .unwrap_err();
        assert!(matches!(err, SgqError::InvalidConfig(_)));
    }

    // -- Batcher unit + property tests ------------------------------------

    fn req(
        query: &Arc<QueryGraph>,
        sig: u64,
        epoch: u64,
        config_tag: u64,
        priority: Priority,
        deadline: Instant,
    ) -> BatchRequest {
        BatchRequest {
            query: Arc::clone(query),
            sig,
            epoch,
            config_tag,
            k: 10,
            tau: 0.8,
            priority,
            deadline,
            ticket: Arc::new(TicketState::new()),
        }
    }

    #[test]
    fn batcher_merges_equal_queries_only() {
        let base = Instant::now();
        let q1 = Arc::new(product_query());
        let q2 = Arc::new(assembly_query());
        let mut b = Batcher::new(8);
        assert!(!b.offer(req(
            &q1,
            1,
            0,
            0,
            Priority::Normal,
            base + Duration::from_millis(50)
        )));
        assert!(b.offer(req(
            &q1,
            1,
            0,
            0,
            Priority::High,
            base + Duration::from_millis(10)
        )));
        // Same signature (simulated hash collision), different query: the
        // structural-equality check must refuse the merge.
        assert!(!b.offer(req(
            &q2,
            1,
            0,
            0,
            Priority::Normal,
            base + Duration::from_millis(20)
        )));
        // Different epoch never merges.
        assert!(!b.offer(req(
            &q1,
            1,
            1,
            0,
            Priority::Normal,
            base + Duration::from_millis(20)
        )));
        // Different config never merges.
        assert!(!b.offer(req(
            &q1,
            1,
            0,
            7,
            Priority::Normal,
            base + Duration::from_millis(20)
        )));
        assert_eq!(b.len(), 4);

        let first = b.pop_earliest().unwrap();
        assert_eq!(first.members.len(), 2, "the merged batch is most urgent");
        assert_eq!(first.priority, Priority::High, "priority upgraded by merge");
        assert_eq!(
            first.deadline,
            base + Duration::from_millis(10),
            "batch deadline is the earliest member deadline"
        );
    }

    #[test]
    fn batcher_pops_priority_then_deadline() {
        let base = Instant::now();
        let q = Arc::new(product_query());
        let mut b = Batcher::new(8);
        b.offer(req(
            &q,
            1,
            0,
            0,
            Priority::Low,
            base + Duration::from_millis(1),
        ));
        b.offer(req(
            &q,
            2,
            1,
            0,
            Priority::Normal,
            base + Duration::from_millis(90),
        ));
        b.offer(req(
            &q,
            3,
            2,
            0,
            Priority::Normal,
            base + Duration::from_millis(40),
        ));
        let order: Vec<u64> = std::iter::from_fn(|| b.pop_earliest().map(|b| b.epoch)).collect();
        // Normal beats Low even with a later deadline; EDF within a class.
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn batcher_respects_max_batch() {
        let base = Instant::now();
        let q = Arc::new(product_query());
        let mut b = Batcher::new(2);
        for _ in 0..5 {
            b.offer(req(
                &q,
                1,
                0,
                0,
                Priority::Normal,
                base + Duration::from_millis(10),
            ));
        }
        let sizes: Vec<usize> =
            std::iter::from_fn(|| b.pop_earliest().map(|b| b.members.len())).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert!(sizes.iter().all(|&s| s <= 2), "{sizes:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary interleavings of offers (over a pool of distinct
        /// queries, epochs, config tags, priorities, deadlines) and pops:
        /// every batch ever formed is homogeneous — one query, one epoch,
        /// one config — sized within max_batch, with the batch deadline
        /// equal to its earliest member's and the batch priority equal to
        /// its most urgent member's.
        #[test]
        fn batches_never_mix_queries_epochs_or_configs(
            ops in collection::vec(
                ((0usize..4, 0u64..3, 0u64..2), (0usize..3, 0u64..100, 0u64..5)),
                1..120,
            ),
            max_batch in 1usize..6,
        ) {
            let base = Instant::now();
            let pool: Vec<Arc<QueryGraph>> = (0..4)
                .map(|i| {
                    let mut q = QueryGraph::new();
                    let t = q.add_target("Automobile");
                    let s = q.add_specific(&format!("Country_{i}"), "Country");
                    q.add_edge(t, "assembly", s);
                    Arc::new(q)
                })
                .collect();
            let mut batcher = Batcher::new(max_batch);
            let check = |batch: &Batch| -> std::result::Result<(), TestCaseError> {
                prop_assert!(batch.members.len() <= max_batch);
                prop_assert!(!batch.members.is_empty());
                let mut min_deadline = batch.members[0].deadline;
                let mut best_rank = batch.members[0].priority.rank();
                for m in &batch.members {
                    prop_assert_eq!(m.sig, batch.sig);
                    prop_assert_eq!(m.epoch, batch.epoch);
                    prop_assert_eq!(m.config_tag, batch.config_tag);
                    prop_assert!(*m.query == *batch.query,
                        "a batch must hold one query shape only");
                    min_deadline = min_deadline.min(m.deadline);
                    best_rank = best_rank.min(m.priority.rank());
                }
                prop_assert_eq!(batch.deadline, min_deadline);
                prop_assert_eq!(batch.priority.rank(), best_rank);
                Ok(())
            };
            let mut offered = 0usize;
            let mut popped = 0usize;
            for ((qi, epoch, cfg), (prio, deadline_ms, pop_after)) in ops {
                let query = &pool[qi];
                let priority = Priority::ALL[prio];
                batcher.offer(req(
                    query,
                    query_signature(query),
                    epoch,
                    cfg,
                    priority,
                    base + Duration::from_millis(deadline_ms),
                ));
                offered += 1;
                for batch in &batcher.ready {
                    check(batch)?;
                }
                if pop_after == 0 {
                    if let Some(batch) = batcher.pop_earliest() {
                        check(&batch)?;
                        popped += batch.members.len();
                    }
                }
            }
            // Nothing is lost: offered == popped + still pending.
            prop_assert_eq!(offered, popped + batcher.pending_requests());
        }
    }

    #[test]
    fn signature_distinguishes_structure_and_fingerprint_distinguishes_config() {
        let q1 = product_query();
        let q2 = assembly_query();
        assert_eq!(query_signature(&q1), query_signature(&product_query()));
        assert_ne!(query_signature(&q1), query_signature(&q2));

        let c1 = SgqConfig::default();
        let c2 = SgqConfig {
            k: c1.k + 1,
            ..c1.clone()
        };
        assert_eq!(
            config_fingerprint(&c1),
            config_fingerprint(&SgqConfig::default())
        );
        assert_ne!(config_fingerprint(&c1), config_fingerprint(&c2));
    }
}
