//! Cross-query similarity-row index.
//!
//! The query engine needs, per query edge, the full Eq. 5 similarity row of
//! the query predicate against every knowledge-graph predicate, plus the
//! element-wise max over the rows of the *remaining* segments (which drives
//! the `m(u)` bound of Lemma 1). Before this index existed each
//! `SubQueryPlan` materialised those rows as fresh `Vec<Vec<f64>>` per
//! query — `O(segments · |predicates|)` work and allocation repeated for
//! every query over the engine's lifetime, even though the rows depend only
//! on the predicate and the (fixed) space.
//!
//! [`SimilarityIndex`] computes each transformed row **once** and hands out
//! cheap `Arc<[f64]>` clones; combined (element-wise max) rows are cached by
//! the *set* of participating rows, so every suffix a plan needs after the
//! first query of a given shape is a cache hit. Hits and misses are counted
//! (exposed via [`SimilarityIndex::stats`]) so callers — and the
//! concurrency tests — can observe the sharing.
//!
//! The index is `Sync`: the caches sit behind `RwLock`s, so the hot path
//! (row already cached) is a shared read lock + `Arc` bumps — concurrent
//! clients hitting the same rows no longer serialize on a mutex; only a
//! miss (computed once per row per generation) takes the write lock.
//!
//! ## Derived row forms
//!
//! Every cached row is a [`RowBundle`] carrying, besides the exact
//! `Arc<[f64]>` row, two derived forms computed once alongside it (see
//! [`crate::kernels`]):
//!
//! * a **round-up `f32` upper-bound row** — each element the smallest `f32`
//!   ≥ the exact element, so τ-prefilters over the quantized row are
//!   admissible (quantized ≥ exact by construction) at half the bandwidth;
//! * a **precomputed `ln` row** — `ln` of the same `f64` is deterministic,
//!   so replacing a per-edge `w.ln()` with a table lookup is bit-identical;
//!
//! plus the row's **maximum element**, which lets adjacency scans stop
//! early once the running max provably cannot grow.
//!
//! ## Vocabulary generations
//!
//! A live graph can grow its predicate vocabulary past the (offline-trained)
//! space's: the search indexes rows by *graph* predicate id, so cached rows
//! must always span the largest vocabulary any attached engine has seen.
//! [`SimilarityIndex::ensure_vocab`] grows that watermark; growing it
//! **invalidates** the caches (rows are re-issued at the new length, padded
//! with `transform(0.0)` for predicates the space has never seen) and bumps
//! a generation counter. Rows already handed out to plans keep their old
//! length — a plan only ever indexes with the predicate ids of the epoch it
//! was built against, so pinned queries stay bit-identical while new plans
//! see the wider vocabulary.

use crate::kernels;
use crate::space::PredicateSpace;
use kgraph::PredicateId;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Key of one cacheable row: a concrete predicate, or an out-of-vocabulary
/// constant row (query predicates the space has never seen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RowKey {
    /// The transformed similarity row of this predicate.
    Predicate(PredicateId),
    /// A constant row of explicit length. The value is kept as its bit
    /// pattern (hashable and `Eq` without touching NaN semantics); the
    /// length is part of the key because the caller's predicate vocabulary
    /// may exceed the space's (e.g. graph predicates added after training),
    /// and search indexes rows by *graph* predicate id.
    Constant {
        /// `f64::to_bits` of the constant.
        bits: u64,
        /// Number of row elements.
        len: u32,
    },
}

impl RowKey {
    /// Key for a constant row of `value` with `len` elements.
    pub fn constant(value: f64, len: usize) -> Self {
        RowKey::Constant {
            bits: value.to_bits(),
            len: u32::try_from(len).expect("constant row length fits u32"),
        }
    }
}

/// Cache counters (cumulative since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimilarityIndexStats {
    /// Row requests answered from the cache.
    pub row_hits: u64,
    /// Row requests that had to compute the row.
    pub row_misses: u64,
    /// Combined-max row requests answered from the cache.
    pub max_row_hits: u64,
    /// Combined-max row requests that had to compute the row.
    pub max_row_misses: u64,
    /// Cache invalidations caused by predicate-vocabulary growth
    /// ([`SimilarityIndex::ensure_vocab`]).
    pub invalidations: u64,
}

impl SimilarityIndexStats {
    /// Total row requests of both kinds.
    pub fn requests(&self) -> u64 {
        self.row_hits + self.row_misses + self.max_row_hits + self.max_row_misses
    }

    /// Fraction of row requests (both kinds) served from the cache, in
    /// `[0, 1]`; `0.0` when nothing has been requested. Under batched
    /// scheduling this approaches 1: one prepared plan per batch touches
    /// the index once, every coalesced request rides the same rows.
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            (self.row_hits + self.max_row_hits) as f64 / total as f64
        }
    }
}

/// Upper bound on cached combined-max rows. Per-predicate rows are bounded
/// by the vocabulary, but `max_rows` is keyed by key *sets* — unbounded
/// under adversarially diverse multi-segment queries. Past the cap,
/// combined rows are computed per request (correct, just uncached) so a
/// long-running service cannot grow without limit. At a 10k-predicate
/// vocabulary a bundle (exact f64 + ln f64 + upper f32 = 20 B/element)
/// caps the combined-row cache near 4096 × 200 KB ≈ 820 MB worst case;
/// typical workloads stay far below both factors.
const MAX_CACHED_COMBINED_ROWS: usize = 4096;

/// One cached similarity row with its derived scan forms, all issued
/// together: the exact row plus the round-up `f32` upper-bound row, the
/// precomputed `ln` row and the maximum element (see [`crate::kernels`]
/// for why each form is safe under the bit-identical-answers contract).
/// Cloning is three refcount bumps.
#[derive(Debug, Clone)]
pub struct RowBundle {
    /// The exact transformed row — what [`SimilarityIndex::row`] returns.
    pub exact: Arc<[f64]>,
    /// `ln[i] == exact[i].ln()`, bitwise.
    pub ln: Arc<[f64]>,
    /// `upper[i]` is the smallest `f32` ≥ `exact[i]` (round-up quantized).
    pub upper: Arc<[f32]>,
    /// Maximum element of `exact` (`-inf` for an empty row): the stop
    /// value for early-exit adjacency scans.
    pub max: f64,
}

impl RowBundle {
    /// Derives the quantized/ln/max forms from an exact row.
    fn derive(exact: Arc<[f64]>) -> Self {
        let ln: Arc<[f64]> = kernels::ln_row(&exact).into();
        let upper: Arc<[f32]> = kernels::quantize_row_up(&exact).into();
        let max = kernels::row_max(&exact, f64::NEG_INFINITY);
        Self {
            exact,
            ln,
            upper,
            max,
        }
    }
}

/// Shared, engine-lifetime cache of transformed similarity rows.
///
/// `transform` maps a raw cosine similarity to the row's stored value —
/// the query engine passes its weight clamp so rows land directly in the
/// weight domain and the search never touches the space again.
pub struct SimilarityIndex<'s> {
    space: &'s PredicateSpace,
    transform: fn(f32) -> f64,
    rows: RwLock<RowCache>,
    /// Combined rows keyed by generation + the sorted, deduplicated set of
    /// inputs (max is idempotent, so the multiset collapses to a set). The
    /// generation tag keeps pre-invalidation rows from leaking into
    /// post-growth lookups.
    max_rows: RwLock<FxHashMap<MaxRowKey, RowBundle>>,
    row_hits: AtomicU64,
    row_misses: AtomicU64,
    max_row_hits: AtomicU64,
    max_row_misses: AtomicU64,
    invalidations: AtomicU64,
}

/// Key of one cached combined-max row: `(generation, sorted key set)`.
type MaxRowKey = (u64, Vec<RowKey>);

/// Per-predicate rows plus the vocabulary watermark they were sized for.
struct RowCache {
    /// Minimum row length: `max(space.len(), largest ensure_vocab seen)`.
    vocab: usize,
    /// Bumped on every invalidation; tags combined-row cache keys.
    generation: u64,
    rows: FxHashMap<RowKey, RowBundle>,
}

impl std::fmt::Debug for SimilarityIndex<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimilarityIndex")
            .field("predicates", &self.space.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'s> SimilarityIndex<'s> {
    /// An index storing raw cosine similarities.
    pub fn new(space: &'s PredicateSpace) -> Self {
        Self::with_transform(space, f64::from)
    }

    /// An index storing `transform(similarity)` per row element.
    pub fn with_transform(space: &'s PredicateSpace, transform: fn(f32) -> f64) -> Self {
        Self {
            space,
            transform,
            rows: RwLock::new(RowCache {
                vocab: space.len(),
                generation: 0,
                rows: FxHashMap::default(),
            }),
            max_rows: RwLock::new(FxHashMap::default()),
            row_hits: AtomicU64::new(0),
            row_misses: AtomicU64::new(0),
            max_row_hits: AtomicU64::new(0),
            max_row_misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The underlying predicate space.
    pub fn space(&self) -> &'s PredicateSpace {
        self.space
    }

    /// Current row length: the number of predicates in the space or the
    /// largest vocabulary registered via [`SimilarityIndex::ensure_vocab`],
    /// whichever is greater.
    pub fn row_len(&self) -> usize {
        self.rows.read().unwrap().vocab
    }

    /// Registers that an attached graph's predicate vocabulary has `len`
    /// entries. Growth beyond the current watermark invalidates the caches
    /// (rows are re-issued padded to the new length) and bumps the
    /// generation; shrinking never happens (the watermark is monotonic).
    /// Engines call this at construction, so a snapshot whose delta added
    /// predicates gets full-length rows before any plan is built.
    pub fn ensure_vocab(&self, len: usize) {
        let mut cache = self.rows.write().unwrap();
        if len > cache.vocab {
            cache.vocab = len;
            cache.generation += 1;
            cache.rows.clear();
            self.max_rows.write().unwrap().clear();
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The transformed similarity row for `key`, computed at most once per
    /// generation and padded to the current vocabulary watermark.
    pub fn row(&self, key: RowKey) -> Arc<[f64]> {
        self.bundle(key).exact
    }

    /// The row for `key` together with its derived scan forms
    /// ([`RowBundle`]). Hits take only the shared read lock.
    pub fn bundle(&self, key: RowKey) -> RowBundle {
        {
            let cache = self.rows.read().unwrap();
            if let Some(bundle) = cache.rows.get(&key) {
                self.row_hits.fetch_add(1, Ordering::Relaxed);
                return bundle.clone();
            }
        }
        let mut cache = self.rows.write().unwrap();
        // Re-check under the write lock: another thread may have computed
        // the row between our read and write acquisitions.
        if let Some(bundle) = cache.rows.get(&key) {
            self.row_hits.fetch_add(1, Ordering::Relaxed);
            return bundle.clone();
        }
        self.row_misses.fetch_add(1, Ordering::Relaxed);
        // Computed under the write lock: an invalidation racing a
        // drop-and-reacquire could otherwise publish a row shorter than the
        // new vocabulary.
        let computed = RowBundle::derive(self.compute_row(key, cache.vocab));
        cache.rows.insert(key, computed.clone());
        computed
    }

    /// Builds one row at vocabulary length `vocab`. Predicates beyond the
    /// space's training vocabulary (added to a live graph after training)
    /// know only their identity similarity: `transform(1.0)` at their own
    /// index, `transform(0.0)` elsewhere — τ-pruning treats such edges like
    /// any other semantically-unknown predicate.
    fn compute_row(&self, key: RowKey, vocab: usize) -> Arc<[f64]> {
        let pad = (self.transform)(0.0);
        match key {
            RowKey::Predicate(p) if p.index() < self.space.len() => {
                let mut row: Vec<f64> = self
                    .space
                    .sim_row(p)
                    .into_iter()
                    .map(self.transform)
                    .collect();
                if row.len() < vocab {
                    row.resize(vocab, pad);
                }
                row.into()
            }
            RowKey::Predicate(p) => {
                let mut row = vec![pad; vocab.max(p.index() + 1)];
                row[p.index()] = (self.transform)(1.0);
                row.into()
            }
            RowKey::Constant { bits, len } => {
                std::iter::repeat_n(f64::from_bits(bits), len as usize).collect()
            }
        }
    }

    /// The element-wise maximum over the rows of `keys`, computed at most
    /// once per distinct key set. Used for the suffix (remaining-segment)
    /// rows behind Lemma 1's `m(u)` bound.
    pub fn max_row(&self, keys: &[RowKey]) -> Arc<[f64]> {
        self.max_bundle(keys).exact
    }

    /// [`SimilarityIndex::max_row`] with the derived scan forms. The
    /// quantized/ln forms are derived from the *combined* exact row, so the
    /// round-up domination invariant holds element-wise against it.
    pub fn max_bundle(&self, keys: &[RowKey]) -> RowBundle {
        assert!(!keys.is_empty(), "max_row needs at least one row key");
        if keys.len() == 1 {
            return self.bundle(keys[0]);
        }
        let mut set: Vec<RowKey> = keys.to_vec();
        set.sort_unstable();
        set.dedup();
        if set.len() == 1 {
            return self.bundle(set[0]);
        }
        let generation = self.rows.read().unwrap().generation;
        let cache_key = (generation, set);
        if let Some(bundle) = self.max_rows.read().unwrap().get(&cache_key) {
            self.max_row_hits.fetch_add(1, Ordering::Relaxed);
            return bundle.clone();
        }
        self.max_row_misses.fetch_add(1, Ordering::Relaxed);
        let set = &cache_key.1;
        let mut acc: Vec<f64> = self.row(set[0]).to_vec();
        for key in &set[1..] {
            let row = self.row(*key);
            // Rows may differ in length (a constant row spans the caller's
            // full vocabulary, predicate rows span the space's); the
            // combined row must keep the longest tail.
            if row.len() > acc.len() {
                acc.extend_from_slice(&row[acc.len()..]);
            }
            for (a, &r) in acc.iter_mut().zip(row.iter()) {
                if r > *a {
                    *a = r;
                }
            }
        }
        let computed = RowBundle::derive(acc.into());
        let mut cache = self.max_rows.write().unwrap();
        if cache.len() >= MAX_CACHED_COMBINED_ROWS && !cache.contains_key(&cache_key) {
            // Cache full: serve the computed row uncached rather than grow.
            return computed;
        }
        cache.entry(cache_key).or_insert(computed).clone()
    }

    /// Per-segment rows plus the suffix-max rows a path-shaped plan needs:
    /// `suffix[s] = max(rows[s..])` element-wise. One call covers everything
    /// a `SubQueryPlan` previously recomputed per query.
    #[allow(clippy::type_complexity)]
    pub fn plan_rows(&self, keys: &[RowKey]) -> (Vec<Arc<[f64]>>, Vec<Arc<[f64]>>) {
        let (segs, suffixes) = self.plan_bundles(keys);
        (
            segs.into_iter().map(|b| b.exact).collect(),
            suffixes.into_iter().map(|b| b.exact).collect(),
        )
    }

    /// [`SimilarityIndex::plan_rows`] with the derived scan forms of every
    /// row — what `SubQueryPlan` consumes.
    pub fn plan_bundles(&self, keys: &[RowKey]) -> (Vec<RowBundle>, Vec<RowBundle>) {
        let seg_rows: Vec<RowBundle> = keys.iter().map(|&k| self.bundle(k)).collect();
        let suffix_rows: Vec<RowBundle> = (0..keys.len())
            .map(|s| self.max_bundle(&keys[s..]))
            .collect();
        (seg_rows, suffix_rows)
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> SimilarityIndexStats {
        SimilarityIndexStats {
            row_hits: self.row_hits.load(Ordering::Relaxed),
            row_misses: self.row_misses.load(Ordering::Relaxed),
            max_row_hits: self.max_row_hits.load(Ordering::Relaxed),
            max_row_misses: self.max_row_misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> PredicateSpace {
        PredicateSpace::from_raw(
            vec![
                vec![1.0, 0.0],
                vec![0.9, (1.0f32 - 0.81).sqrt()],
                vec![0.0, 1.0],
            ],
            vec!["product".into(), "assembly".into(), "language".into()],
        )
    }

    #[test]
    fn rows_match_space_and_are_shared() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let p = PredicateId::new(0);
        let a = idx.row(RowKey::Predicate(p));
        let b = idx.row(RowKey::Predicate(p));
        assert!(Arc::ptr_eq(&a, &b), "second request must share the row");
        for (q, &v) in a.iter().enumerate() {
            let expected = f64::from(s.sim(p, PredicateId::new(q as u32)));
            assert!((v - expected).abs() < 1e-12);
        }
        let stats = idx.stats();
        assert_eq!(stats.row_hits, 1);
        assert_eq!(stats.row_misses, 1);
    }

    #[test]
    fn transform_is_applied() {
        let s = space();
        let idx = SimilarityIndex::with_transform(&s, |sim| f64::from(sim).clamp(0.5, 1.0));
        let row = idx.row(RowKey::Predicate(PredicateId::new(0)));
        assert!(row.iter().all(|&v| (0.5..=1.0).contains(&v)));
    }

    #[test]
    fn constant_rows_are_constant_and_sized_by_caller() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        // A caller whose vocabulary (5) exceeds the space's (3) still gets
        // a full-length row — the OOV fallback must cover every graph
        // predicate id the search can index with.
        let row = idx.row(RowKey::constant(1e-6, 5));
        assert_eq!(row.len(), 5);
        assert!(row.iter().all(|&v| v == 1e-6));
    }

    #[test]
    fn max_row_keeps_the_longest_tail() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let keys = [
            RowKey::Predicate(PredicateId::new(0)), // 3 elements
            RowKey::constant(0.5, 5),               // 5 elements
        ];
        let m = idx.max_row(&keys);
        assert_eq!(m.len(), 5);
        assert_eq!(m[3], 0.5);
        assert_eq!(m[4], 0.5);
        let r0 = idx.row(keys[0]);
        for i in 0..3 {
            assert_eq!(m[i], r0[i].max(0.5));
        }
    }

    #[test]
    fn max_row_is_elementwise_max_and_cached() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let keys = [
            RowKey::Predicate(PredicateId::new(0)),
            RowKey::Predicate(PredicateId::new(2)),
        ];
        let m1 = idx.max_row(&keys);
        let r0 = idx.row(keys[0]);
        let r2 = idx.row(keys[1]);
        for i in 0..3 {
            assert_eq!(m1[i], r0[i].max(r2[i]));
        }
        // Order must not matter, and the reordered request must hit.
        let m2 = idx.max_row(&[keys[1], keys[0]]);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(idx.stats().max_row_hits, 1);
    }

    #[test]
    fn plan_rows_form_suffix_maxes() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let keys = [
            RowKey::Predicate(PredicateId::new(0)),
            RowKey::Predicate(PredicateId::new(1)),
            RowKey::Predicate(PredicateId::new(2)),
        ];
        let (rows, suffix) = idx.plan_rows(&keys);
        assert_eq!(rows.len(), 3);
        assert_eq!(suffix.len(), 3);
        for i in 0..3 {
            let expected = rows[0][i].max(rows[1][i]).max(rows[2][i]);
            assert!((suffix[0][i] - expected).abs() < 1e-12);
            assert_eq!(suffix[2][i], rows[2][i]);
        }
    }

    #[test]
    fn vocab_growth_invalidates_and_pads_rows() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let p = PredicateId::new(0);
        let short = idx.row(RowKey::Predicate(p));
        assert_eq!(short.len(), 3);
        assert_eq!(idx.row_len(), 3);

        // A live graph grew two predicates past the space's vocabulary.
        idx.ensure_vocab(5);
        assert_eq!(idx.row_len(), 5);
        assert_eq!(idx.stats().invalidations, 1);
        let long = idx.row(RowKey::Predicate(p));
        assert_eq!(long.len(), 5, "re-issued row spans the new vocabulary");
        assert_eq!(long[3], 0.0, "padding is transform(0.0)");
        assert_eq!(&long[..3], &short[..], "known similarities unchanged");
        // The pre-growth handle is untouched (pinned plans keep working).
        assert_eq!(short.len(), 3);

        // Shrinking is a no-op; equal size too.
        idx.ensure_vocab(4);
        idx.ensure_vocab(5);
        assert_eq!(idx.stats().invalidations, 1);
    }

    #[test]
    fn out_of_space_predicate_knows_only_itself() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        idx.ensure_vocab(5);
        // Predicate 4 was added to the graph after training.
        let row = idx.row(RowKey::Predicate(PredicateId::new(4)));
        assert_eq!(row.len(), 5);
        assert_eq!(row[4], 1.0, "identity similarity");
        for (i, &v) in row.iter().enumerate() {
            if i != 4 {
                assert_eq!(v, 0.0, "unknown similarity at {i}");
            }
        }
    }

    #[test]
    fn max_rows_are_invalidated_by_vocab_growth() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let keys = [
            RowKey::Predicate(PredicateId::new(0)),
            RowKey::Predicate(PredicateId::new(2)),
        ];
        let before = idx.max_row(&keys);
        assert_eq!(before.len(), 3);
        idx.ensure_vocab(6);
        let after = idx.max_row(&keys);
        assert_eq!(after.len(), 6, "combined row re-issued at new vocab");
        assert_eq!(&after[..3], &before[..]);
        assert_eq!(
            idx.stats().max_row_misses,
            2,
            "post-growth request recomputes instead of serving the stale row"
        );
    }

    #[test]
    fn hit_rate_tracks_cache_effectiveness() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        assert_eq!(idx.stats().hit_rate(), 0.0, "no requests yet");
        let key = RowKey::Predicate(PredicateId::new(0));
        let _ = idx.row(key); // miss
        assert_eq!(idx.stats().hit_rate(), 0.0);
        let _ = idx.row(key); // hit
        assert_eq!(idx.stats().hit_rate(), 0.5);
        for _ in 0..6 {
            let _ = idx.row(key);
        }
        let rate = idx.stats().hit_rate();
        assert!(rate > 0.85 && rate < 1.0, "{rate}");
    }

    /// Clamp transform mirroring the query engine's weight transform —
    /// named so it can be passed as a `fn` pointer.
    fn clamp_unit(sim: f32) -> f64 {
        f64::from(sim).clamp(1e-6, 1.0)
    }

    #[test]
    fn bundles_carry_consistent_derived_forms() {
        let s = space();
        let idx = SimilarityIndex::with_transform(&s, clamp_unit);
        let b = idx.bundle(RowKey::Predicate(PredicateId::new(1)));
        assert_eq!(b.exact.len(), b.ln.len());
        assert_eq!(b.exact.len(), b.upper.len());
        for i in 0..b.exact.len() {
            assert_eq!(b.ln[i].to_bits(), b.exact[i].ln().to_bits());
            assert!(f64::from(b.upper[i]) >= b.exact[i]);
        }
        let expected_max = b.exact.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(b.max.to_bits(), expected_max.to_bits());
        // The bundle and the plain-row view share the same allocation.
        let row = idx.row(RowKey::Predicate(PredicateId::new(1)));
        assert!(Arc::ptr_eq(&b.exact, &row));
    }

    use proptest::prelude::*;

    proptest! {
        /// Round-up invariant across arbitrary spaces: every f32
        /// upper-bound row element dominates its exact f64 element, on
        /// per-predicate rows, combined suffix rows and padded
        /// (vocab-grown) rows alike.
        #[test]
        fn prop_upper_rows_dominate_exact_rows(
            raw in proptest::collection::vec(
                proptest::collection::vec(-1.0f32..1.0, 3), 2..6),
            grow in 0usize..4,
        ) {
            let labels: Vec<String> =
                (0..raw.len()).map(|i| format!("p{i}")).collect();
            let space = PredicateSpace::from_raw(raw, labels);
            let idx = SimilarityIndex::with_transform(&space, clamp_unit);
            idx.ensure_vocab(space.len() + grow);
            let keys: Vec<RowKey> = (0..space.len() as u32)
                .map(|p| RowKey::Predicate(PredicateId::new(p)))
                .collect();
            let (segs, suffixes) = idx.plan_bundles(&keys);
            for b in segs.iter().chain(&suffixes) {
                for i in 0..b.exact.len() {
                    prop_assert!(
                        f64::from(b.upper[i]) >= b.exact[i],
                        "upper[{i}]={} < exact[{i}]={}",
                        b.upper[i],
                        b.exact[i]
                    );
                    prop_assert_eq!(b.ln[i].to_bits(), b.exact[i].ln().to_bits());
                    prop_assert!(b.exact[i] <= b.max);
                }
            }
        }
    }

    #[test]
    fn repeated_plans_are_pure_hits() {
        let s = space();
        let idx = SimilarityIndex::new(&s);
        let keys = [
            RowKey::Predicate(PredicateId::new(0)),
            RowKey::Predicate(PredicateId::new(1)),
        ];
        let _ = idx.plan_rows(&keys);
        let before = idx.stats();
        let _ = idx.plan_rows(&keys);
        let after = idx.stats();
        assert_eq!(after.row_misses, before.row_misses);
        assert_eq!(after.max_row_misses, before.max_row_misses);
        assert!(after.row_hits > before.row_hits);
    }
}
