//! Quickstart: the paper's Fig. 2 running example, end to end.
//!
//! Builds the miniature knowledge graph around Audi_TT / Lamando / KIA_K5,
//! trains a TransE predicate space, and answers the query
//! `?<Automobile> --product--> Germany`, printing each match with its path
//! semantic similarity and matched schema.
//!
//! Run with `cargo run --release --example quickstart`.

use semkg::prelude::*;

fn main() {
    // -------------------------------------------------------- the graph
    let mut b = GraphBuilder::new();
    let audi = b.add_node("Audi_TT", "Automobile");
    let lamando = b.add_node("Lamando", "Automobile");
    let kia = b.add_node("KIA_K5", "Automobile");
    let engine = b.add_node("EA211_l4_TSI", "Device");
    let vw = b.add_node("Volkswagen", "Company");
    let peter = b.add_node("Peter_Schreyer", "Person");
    let de = b.add_node("Germany", "Country");
    b.add_edge(audi, de, "assembly");
    b.add_edge(lamando, engine, "engine");
    b.add_edge(engine, vw, "designCompany");
    b.add_edge(vw, de, "location");
    b.add_edge(peter, kia, "designer");
    b.add_edge(peter, de, "nationality");
    b.add_edge(vw, audi, "product");
    // More production facts so TransE sees the Fig. 6 co-occurrence
    // pattern: product/assembly share Country–Automobile contexts while
    // nationality links Person–Country.
    let fr = b.add_node("France", "Country");
    for i in 0..30 {
        let car = b.add_node(&format!("Car_{i}"), "Automobile");
        let c = if i % 3 == 0 { fr } else { de };
        b.add_edge(car, c, if i % 2 == 0 { "assembly" } else { "product" });
    }
    for i in 0..10 {
        let p = b.add_node(&format!("Person_{i}"), "Person");
        b.add_edge(p, if i % 2 == 0 { de } else { fr }, "nationality");
    }
    // Fig. 6's contrast: `language` relates a Country to its Language.
    let german = b.add_node("German", "Language");
    let french = b.add_node("French", "Language");
    b.add_edge(de, german, "language");
    b.add_edge(fr, french, "language");
    let graph = b.finish();
    println!("knowledge graph: {}", GraphStats::of(&graph));

    // ------------------------------------------ offline embedding phase
    let cfg = TrainConfig {
        dim: 16,
        epochs: 300,
        learning_rate: 0.05,
        negatives: 4,
        ..TrainConfig::default()
    };
    let model = train_transe(&graph, &cfg);
    let space = PredicateSpace::from_model(&graph, &model);
    let sim = |a: &str, b2: &str| {
        space.sim(
            graph.predicate_id(a).unwrap(),
            graph.predicate_id(b2).unwrap(),
        )
    };
    // Fig. 6's geometry: product/assembly share Country–Automobile contexts
    // and embed close; language points at a different tail type entirely.
    println!("sim(product, assembly) = {:.3}", sim("product", "assembly"));
    println!("sim(product, language) = {:.3}", sim("product", "language"));
    assert!(
        sim("product", "assembly") > sim("product", "language"),
        "embedding must recover the Fig. 6 geometry"
    );

    // ------------------------------------------------- the query graph
    let mut q = QueryGraph::new();
    let car = q.add_target("Automobile");
    let country = q.add_specific("Germany", "Country");
    q.add_edge(car, "product", country);

    // ------------------------------------------------------------ query
    let library = TransformationLibrary::new();
    let engine = SgqEngine::new(
        &graph,
        &space,
        &library,
        SgqConfig {
            k: 5,
            tau: 0.0, // accept any similarity; ranking does the work
            n_hat: 4,
            ..SgqConfig::default()
        },
    );
    let result = engine.query(&q).expect("valid query");
    println!(
        "\ntop-{} answers for `?<Automobile> --product--> Germany`:",
        result.matches.len()
    );
    for (rank, m) in result.matches.iter().enumerate() {
        println!(
            "  #{:<2} {:<12} score={:.3}  schema: {}",
            rank + 1,
            graph.node_name(m.pivot),
            m.score,
            m.parts[0].schema(&graph),
        );
    }
    println!(
        "\nstats: {} frontier pops, {} pushes, {} τ-pruned, {} TA accesses, {} µs",
        result.stats.popped,
        result.stats.pushed,
        result.stats.tau_pruned,
        result.stats.ta_accesses,
        result.stats.elapsed_us
    );
}
