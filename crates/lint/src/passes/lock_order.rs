//! `lock-order`: no hold-while-acquiring against the declared hierarchy.
//!
//! `lint.toml` declares every lock in the workspace as a `[[lock]]` entry
//! (class name + file + receiver identifiers) and a total order over the
//! classes (`[lock_order].hierarchy`). This pass walks each function's
//! statements tracking which lock guards are live, and on every acquisition
//! checks that the new lock ranks strictly *after* everything currently
//! held. A back-edge (or re-acquiring a held class) is the textbook
//! two-thread deadlock shape, so it is denied even if today only one code
//! path takes it.
//!
//! The analysis is intra-procedural and lexical, which is the documented
//! limitation: a guard returned from a helper and held across a call into
//! another locking function is invisible here (the differential and stress
//! tests remain the dynamic backstop). What the pass *can* see it tracks
//! precisely:
//!
//! * a guard is **held** when the statement binds it and nothing trails the
//!   acquisition — `let g = x.lock().unwrap();`, `let Ok(g) = x.try_lock()
//!   else { .. }`, `if let Ok(g) = x.try_lock() {`. A chain that continues
//!   (`x.lock().unwrap().clone()`) is a statement temporary: it still
//!   records held-while-acquiring edges at the acquisition instant, but is
//!   released at the semicolon;
//! * a guard dies at `drop(g)` or when its enclosing block closes;
//! * `.lock()`/`.try_lock()` receivers must be declared (the inventory is
//!   part of the contract: an undeclared Mutex is a finding);
//!   `.read()`/`.write()` count only for declared receivers, so
//!   `io::Read`/`io::Write` calls do not alias into the analysis.

use super::token_positions;
use crate::config::{Config, LockDecl};
use crate::lexer::{is_ident_byte, SourceFile};
use crate::Finding;

/// A live guard: hierarchy rank, the depth its block opened at, and the
/// binding name (`None` for statement temporaries, which die immediately).
struct Held {
    rank: usize,
    class: String,
    depth: u32,
    guard: Option<String>,
}

pub fn check(config: &Config, file: &SourceFile) -> Vec<Finding> {
    if config.hierarchy.is_empty() {
        return Vec::new();
    }
    let declared: Vec<&LockDecl> = config
        .locks
        .iter()
        .filter(|d| file.path.ends_with(&d.file))
        .collect();
    let rank_of = |class: &str| config.hierarchy.iter().position(|c| c == class);

    let mut out = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    for (lineno, line) in file.code_lines() {
        // Block closings release guards scoped to deeper blocks: a guard
        // bound at depth d is dead once the line depth drops below d. This
        // also resets the held set at function boundaries, since a sibling
        // function's opening line sits below any guard's binding depth.
        held.retain(|h| line.depth_after >= h.depth);

        // drop(guard) releases by name.
        for pos in token_positions(&line.code, "drop(") {
            let inner: String = line.code[pos + "drop(".len()..]
                .chars()
                .take_while(|c| is_ident_byte(*c as u8) || *c == '.')
                .collect();
            let name = inner.rsplit('.').next().unwrap_or("").to_string();
            held.retain(|h| h.guard.as_deref() != Some(name.as_str()));
        }

        let acquisitions = find_acquisitions(&line.code);
        if acquisitions.is_empty() {
            continue;
        }
        let bound_guard = binding_of(&line.code);
        for acq in &acquisitions {
            let decl = declared
                .iter()
                .find(|d| d.receivers.iter().any(|r| r == &acq.receiver));
            let class = match (decl, acq.mutex_method) {
                (Some(d), _) => d.class.clone(),
                // Undeclared Mutex methods: the lock inventory is stale.
                (None, true) => {
                    out.push(Finding {
                        path: file.path.clone(),
                        line: lineno,
                        rule: "lock-order",
                        message: format!(
                            "`.{}()` on undeclared lock `{}` — add a [[lock]] entry to lint.toml and place it in the hierarchy",
                            acq.method, acq.receiver
                        ),
                    });
                    continue;
                }
                // Undeclared .read()/.write(): not a lock (io traits etc.).
                (None, false) => continue,
            };
            let Some(rank) = rank_of(&class) else {
                continue; // Config::validate guarantees this; belt and braces.
            };
            for h in &held {
                if rank <= h.rank {
                    out.push(Finding {
                        path: file.path.clone(),
                        line: lineno,
                        rule: "lock-order",
                        message: if h.class == class {
                            format!("re-acquiring `{class}` while already held — self-deadlock")
                        } else {
                            format!(
                                "acquiring `{}` while holding `{}` violates the declared hierarchy ({} must come first)",
                                class, h.class, class
                            )
                        },
                    });
                }
            }
            // Only a clean `let`-binding keeps the guard live past the
            // statement; a continued chain is a temporary. An `if let` /
            // `while let` binding scopes the guard to the block it opens;
            // a plain `let` (including `let .. else {`) scopes it to the
            // block the statement sits in.
            if acq.clean_binding {
                let t = line.code.trim_start();
                let opens_block = t.starts_with("if let")
                    || t.starts_with("while let")
                    || t.starts_with("} else if let");
                held.push(Held {
                    rank,
                    class,
                    depth: if opens_block {
                        line.depth_after
                    } else {
                        line.depth_before
                    },
                    guard: bound_guard.clone(),
                });
            }
        }
    }
    out
}

struct Acquisition {
    receiver: String,
    method: &'static str,
    /// `.lock()`/`.try_lock()` — always significant, even undeclared.
    mutex_method: bool,
    /// The statement binds the guard and ends right after the acquisition
    /// (plus an optional `.unwrap()`/`.expect(..)`).
    clean_binding: bool,
}

/// Finds lock-method calls on the line and classifies each.
fn find_acquisitions(code: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for (method, mutex_method) in [
        ("lock", true),
        ("try_lock", true),
        ("read", false),
        ("write", false),
    ] {
        let needle = format!(".{method}()");
        for pos in token_positions(code, &needle) {
            let receiver = receiver_before(code, pos);
            if receiver.is_empty() {
                continue;
            }
            out.push(Acquisition {
                receiver,
                method,
                mutex_method,
                clean_binding: is_clean_binding(code, pos + needle.len()),
            });
        }
    }
    out
}

/// The final identifier of the receiver chain ending at byte `pos` (the
/// `.` of the method call): `self.shared.state` → `state`.
fn receiver_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut end = pos;
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    // Tolerate one trailing `()` hop like `self.inner().lock()` — take the
    // identifier anyway; receivers in lint.toml are final field names.
    if start == end && start >= 2 && bytes[start - 1] == b')' && bytes[start - 2] == b'(' {
        end = start - 2;
        start = end;
        while start > 0 && is_ident_byte(bytes[start - 1]) {
            start -= 1;
        }
    }
    code[start..end].to_string()
}

/// Whether the statement is `let [mut] g = recv.method()…;` (or a
/// `let Ok(g) = … else {` / `if let Ok(g) = … {` form) with nothing after
/// the acquisition except `.unwrap()` / `.expect(..)`.
fn is_clean_binding(code: &str, after: usize) -> bool {
    let trimmed = code.trim_start();
    let binds = trimmed.starts_with("let ")
        || trimmed.starts_with("if let ")
        || trimmed.starts_with("while let ")
        || trimmed.starts_with("} else if let ");
    if !binds {
        return false;
    }
    let mut rest = &code[after..];
    if let Some(r) = rest.strip_prefix(".unwrap()") {
        rest = r;
    } else if let Some(r) = rest.strip_prefix(".expect(") {
        // Masked string content: skip to the closing paren.
        rest = r.split_once(')').map(|(_, r)| r).unwrap_or("");
    }
    matches!(rest.trim(), "" | ";" | "{" | "else {")
}

fn binding_of(code: &str) -> Option<String> {
    let t = code.trim_start();
    let t = t.strip_prefix("} else ").unwrap_or(t);
    let t = t.strip_prefix("if ").unwrap_or(t);
    let t = t.strip_prefix("while ").unwrap_or(t);
    let t = t.strip_prefix("let ")?;
    let t = t.strip_prefix("Ok(").unwrap_or(t);
    let t = t.strip_prefix("mut ").unwrap_or(t);
    let name: String = t.chars().take_while(|c| is_ident_byte(*c as u8)).collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LockDecl;

    fn cfg() -> Config {
        Config {
            locks: vec![
                LockDecl {
                    class: "outer".into(),
                    file: "x.rs".into(),
                    receivers: vec!["outer_lock".into()],
                },
                LockDecl {
                    class: "inner".into(),
                    file: "x.rs".into(),
                    receivers: vec!["inner_lock".into()],
                },
            ],
            hierarchy: vec!["outer".into(), "inner".into()],
            ..Config::default()
        }
    }

    #[test]
    fn forward_nesting_is_clean() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let a = self.outer_lock.lock().unwrap();\n    let b = self.inner_lock.lock().unwrap();\n}\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn back_edge_is_denied() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let b = self.inner_lock.lock().unwrap();\n    let a = self.outer_lock.lock().unwrap();\n}\n",
        );
        let findings = check(&cfg(), &f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .message
            .contains("violates the declared hierarchy"));
    }

    #[test]
    fn reacquisition_is_denied() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let a = self.outer_lock.lock().unwrap();\n    let b = self.outer_lock.lock().unwrap();\n}\n",
        );
        let findings = check(&cfg(), &f);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("self-deadlock"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let b = self.inner_lock.lock().unwrap();\n    drop(b);\n    let a = self.outer_lock.lock().unwrap();\n}\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn block_close_releases_the_guard() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    {\n        let b = self.inner_lock.lock().unwrap();\n    }\n    let a = self.outer_lock.lock().unwrap();\n}\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn statement_temporary_does_not_stay_held() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let n = self.inner_lock.lock().unwrap().len();\n    let a = self.outer_lock.lock().unwrap();\n}\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn temporary_acquisition_while_held_still_records_the_edge() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let b = self.inner_lock.lock().unwrap();\n    let n = self.outer_lock.lock().unwrap().len();\n}\n",
        );
        assert_eq!(check(&cfg(), &f).len(), 1);
    }

    #[test]
    fn undeclared_mutex_is_flagged_but_undeclared_read_is_not() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let g = self.mystery.lock().unwrap();\n    let n = file.read().unwrap();\n}\n",
        );
        let findings = check(&cfg(), &f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("undeclared lock `mystery`"));
    }

    #[test]
    fn try_lock_let_else_holds_the_guard() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let Ok(b) = self.inner_lock.try_lock() else {\n        return;\n    };\n    let a = self.outer_lock.lock().unwrap();\n}\n",
        );
        assert_eq!(check(&cfg(), &f).len(), 1);
    }

    #[test]
    fn functions_reset_the_held_set() {
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let b = self.inner_lock.lock().unwrap();\n}\nfn g(&self) {\n    let a = self.outer_lock.lock().unwrap();\n}\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn declared_rwlock_read_counts() {
        let cfg = Config {
            locks: vec![
                LockDecl {
                    class: "rw".into(),
                    file: "x.rs".into(),
                    receivers: vec!["table".into()],
                },
                LockDecl {
                    class: "m".into(),
                    file: "x.rs".into(),
                    receivers: vec!["meta".into()],
                },
            ],
            hierarchy: vec!["m".into(), "rw".into()],
            ..Config::default()
        };
        let f = SourceFile::scan(
            "x.rs",
            "fn f(&self) {\n    let r = self.table.read().unwrap();\n    let g = self.meta.lock().unwrap();\n}\n",
        );
        assert_eq!(check(&cfg, &f).len(), 1, "read guard held, then back-edge");
    }
}
