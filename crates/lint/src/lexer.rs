//! A hand-rolled Rust line scanner.
//!
//! The passes never look at raw source text: they look at [`SourceFile`],
//! where every line has been split into *code* (string/char literals and
//! comments blanked out, column positions preserved) and *comment* text
//! (where `SAFETY:` justifications and `lint-ok` waivers live), plus the
//! brace depth at the start of the line and whether the line sits inside
//! test-only code (`#[cfg(test)]` modules, `#[test]`/`#[bench]` functions).
//!
//! This is deliberately not a full parser. The rules the passes enforce are
//! lexical invariants (a token may not appear here without a justification
//! there), and a masking scanner is enough to make the token search sound
//! against the classic false positives — `"panic!"` inside a string, an
//! `unwrap()` in a doc example, a `Mutex` mentioned in a comment.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code text with every string/char-literal byte and comment byte
    /// replaced by a space — byte offsets match the original line, so a
    /// match position is a real column.
    pub code: String,
    /// Concatenated comment text of the line (line comments and any block
    /// comment content that crosses it).
    pub comment: String,
    /// Number of braces open *before* this line.
    pub depth_before: u32,
    /// Number of braces open *after* this line.
    pub depth_after: u32,
    /// True when the line is inside `#[cfg(test)]` / `#[test]` /
    /// `#[bench]` scoped code (the passes skip these lines).
    pub in_test: bool,
}

/// A scanned file: path (workspace-relative, `/`-separated) plus lines.
#[derive(Debug)]
pub struct SourceFile {
    pub path: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scans `text` into masked lines (see module docs).
    pub fn scan(path: impl Into<String>, text: &str) -> Self {
        let mut lines = scan_lines(text);
        mark_test_regions(&mut lines);
        Self {
            path: path.into(),
            lines,
        }
    }

    /// 1-indexed iteration over non-test lines.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.in_test)
            .map(|(i, l)| (i + 1, l))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Nested block comment depth.
    Block(u32),
    Str,
    /// Raw string with this many `#`s.
    RawStr(u32),
}

fn scan_lines(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut depth: u32 = 0;
    for raw in text.lines() {
        let bytes = raw.as_bytes();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let depth_before = depth;
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match mode {
                Mode::Block(d) => {
                    if raw[i..].starts_with("/*") {
                        mode = Mode::Block(d + 1);
                        comment.push_str("/*");
                        code.push_str("  ");
                        i += 2;
                    } else if raw[i..].starts_with("*/") {
                        mode = if d == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(d - 1)
                        };
                        comment.push_str("*/");
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(c);
                        push_masked(&mut code, raw, i);
                        i += raw[i..].chars().next().map_or(1, char::len_utf8);
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        code.push_str("  ");
                        i += 2; // skip the escaped byte (possibly the quote)
                    } else {
                        if c == '"' {
                            mode = Mode::Code;
                        }
                        push_masked(&mut code, raw, i);
                        i += raw[i..].chars().next().map_or(1, char::len_utf8);
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"'
                        && raw[i + 1..]
                            .bytes()
                            .take(hashes as usize)
                            .eq(std::iter::repeat_n(b'#', hashes as usize))
                    {
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        push_masked(&mut code, raw, i);
                        i += raw[i..].chars().next().map_or(1, char::len_utf8);
                    }
                }
                Mode::Code => {
                    if raw[i..].starts_with("//") {
                        comment.push_str(&raw[i..]);
                        for _ in raw[i..].chars() {
                            code.push(' ');
                        }
                        i = bytes.len();
                    } else if raw[i..].starts_with("/*") {
                        mode = Mode::Block(1);
                        comment.push_str("/*");
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Str;
                        code.push(' ');
                        i += 1;
                    } else if let Some(hashes) = raw_string_open(raw, i) {
                        // r"..." / r#"..."# / br##"..."## — mask the opener.
                        let opener = 1 + hashes as usize + 1; // r + #s + "
                        for _ in 0..opener {
                            code.push(' ');
                        }
                        i += opener;
                        mode = Mode::RawStr(hashes);
                    } else if c == '\'' {
                        // Char literal vs lifetime: 'x' / '\n' are literals,
                        // 'a (no closing quote right after) is a lifetime.
                        if let Some(len) = char_literal_len(raw, i) {
                            for _ in 0..len {
                                code.push(' ');
                            }
                            i += len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        if c == '{' {
                            depth += 1;
                        } else if c == '}' {
                            depth = depth.saturating_sub(1);
                        }
                        code.push(c);
                        i += raw[i..].chars().next().map_or(1, char::len_utf8) - 1 + 1;
                    }
                }
            }
        }
        out.push(Line {
            code,
            comment,
            depth_before,
            depth_after: depth,
            in_test: false,
        });
    }
    out
}

/// Pushes one space per byte of the char at `i` so byte columns stay true.
fn push_masked(code: &mut String, raw: &str, i: usize) {
    let len = raw[i..].chars().next().map_or(1, char::len_utf8);
    for _ in 0..len {
        code.push(' ');
    }
}

/// Detects `r"`, `r#"`, `br##"` etc. at byte `i`; returns the hash count.
fn raw_string_open(raw: &str, i: usize) -> Option<u32> {
    let bytes = raw.as_bytes();
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    // An identifier ending in `r`/`br` (e.g. `for`, `ptr`) must not open a
    // raw string: require a non-ident char before position i.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length in bytes of a char literal starting at `i` (which holds `'`), or
/// `None` when it is a lifetime.
fn char_literal_len(raw: &str, i: usize) -> Option<usize> {
    let rest = &raw[i + 1..];
    let mut chars = rest.char_indices();
    let (_, first) = chars.next()?;
    if first == '\\' {
        // Escape: find the closing quote.
        for (j, c) in chars {
            if c == '\'' {
                return Some(i + 1 + j + 1 - i);
            }
        }
        None
    } else {
        let (j, next) = chars.next()?;
        (next == '\'').then(|| 1 + j + 1)
    }
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Marks lines covered by `#[cfg(test)]` blocks and `#[test]`/`#[bench]`
/// items. An attribute arms the *next* item; the item's whole brace block
/// (to the depth the attribute was seen at) is marked.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim();
        let arms = code.contains("#[cfg(test)]")
            || code.contains("#[cfg(all(test")
            || code == "#[test]"
            || code.contains("#[test]")
            || code.contains("#[bench]");
        if arms && !lines[i].in_test {
            let base = lines[i].depth_before;
            lines[i].in_test = true;
            // Mark until the armed item's block closes back to `base`.
            let mut j = i + 1;
            let mut entered = lines[i].depth_after > base;
            while j < lines.len() {
                lines[j].in_test = true;
                if entered && lines[j].depth_after <= base {
                    break;
                }
                if lines[j].depth_after > base {
                    entered = true;
                }
                // An attribute armed a braceless item (e.g. `#[test] fn x();`
                // can't happen, but a stray attribute shouldn't eat the file).
                if !entered
                    && j > i + 2
                    && lines[j].depth_after <= base
                    && lines[j].code.contains(';')
                {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let f = SourceFile::scan(
            "x.rs",
            "let s = \"unwrap() panic!\"; // lint-ok(x): trailing\nlet c = 'a'; let lt: &'static str = \"\";\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("lint-ok(x): trailing"));
        assert!(f.lines[0].code.contains("let s ="));
        assert!(!f.lines[1].code.contains("'a'"), "char literal masked");
        assert!(f.lines[1].code.contains("static"), "lifetime kept");
    }

    #[test]
    fn raw_strings_span_lines() {
        let f = SourceFile::scan("x.rs", "let s = r#\"one\nunwrap()\ntwo\"#; done();\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("done();"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = SourceFile::scan("x.rs", "/* a /* b */ still comment\nend */ code();\n");
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[1].code.contains("code();"));
        assert!(f.lines[0].comment.contains("still comment"));
    }

    #[test]
    fn depth_tracks_braces_outside_strings() {
        let f = SourceFile::scan("x.rs", "fn f() {\n    let s = \"}\";\n}\n");
        assert_eq!(f.lines[0].depth_before, 0);
        assert_eq!(f.lines[0].depth_after, 1);
        assert_eq!(f.lines[1].depth_after, 1, "brace in string must not count");
        assert_eq!(f.lines[2].depth_after, 0);
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "code after the test module is live");
    }

    #[test]
    fn test_fns_outside_test_modules_are_skipped() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}\nfn live() {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::scan("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("fn f<'a>"));
        assert_eq!(f.lines[0].depth_after, 0);
    }
}
