/root/repo/target/debug/deps/lexicon-76340705cad5a267.d: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

/root/repo/target/debug/deps/liblexicon-76340705cad5a267.rlib: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

/root/repo/target/debug/deps/liblexicon-76340705cad5a267.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/library.rs:
crates/lexicon/src/matcher.rs:
crates/lexicon/src/normalize.rs:
