//! `determinism`: the bit-identity contract behind every
//! `tests/*_differential.rs`.
//!
//! Modules declared answer-affecting in `lint.toml` must produce identical
//! results run-to-run and machine-to-machine, so they may not consult the
//! clock (`Instant::now`, `SystemTime`) or iterate a randomized-seed
//! `std::collections::HashMap`/`HashSet` (iteration order leaks into answer
//! order). The workspace uses `FxHashMap` — a fixed-seed hasher — in
//! answer-affecting code; the word-boundary match deliberately does not
//! fire on it.

use super::{path_matches, token_positions};
use crate::config::Config;
use crate::lexer::SourceFile;
use crate::Finding;

const TOKENS: &[(&str, &str)] = &[
    (
        "Instant::now",
        "clock read in an answer-affecting module — time must not influence results (move to telemetry or waive with why it cannot)",
    ),
    (
        "SystemTime",
        "wall-clock in an answer-affecting module — time must not influence results",
    ),
    (
        "HashMap",
        "std HashMap in an answer-affecting module — iteration order is run-randomized; use FxHashMap",
    ),
    (
        "HashSet",
        "std HashSet in an answer-affecting module — iteration order is run-randomized; use FxHashSet",
    ),
];

pub fn check(config: &Config, file: &SourceFile) -> Vec<Finding> {
    if !path_matches(&file.path, &config.determinism_paths) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (lineno, line) in file.code_lines() {
        for (token, message) in TOKENS {
            if !token_positions(&line.code, token).is_empty() {
                out.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "determinism",
                    message: format!("`{token}`: {message}"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            determinism_paths: vec!["engine.rs".into()],
            ..Config::default()
        }
    }

    #[test]
    fn clock_reads_are_flagged() {
        let f = SourceFile::scan("engine.rs", "let t = Instant::now();\n");
        assert_eq!(check(&cfg(), &f).len(), 1);
    }

    #[test]
    fn std_hashmap_is_flagged_but_fxhashmap_is_not() {
        let f = SourceFile::scan(
            "engine.rs",
            "let a: HashMap<u32, u32> = HashMap::new();\nlet b: FxHashMap<u32, u32> = FxHashMap::default();\n",
        );
        let findings = check(&cfg(), &f);
        assert_eq!(findings.len(), 1, "{findings:?}"); // one finding per token kind per line
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn files_off_the_contract_are_clean() {
        let f = SourceFile::scan("telemetry.rs", "let t = Instant::now();\n");
        assert!(check(&cfg(), &f).is_empty());
    }
}
