/root/repo/target/release/deps/serde_json-1e4817b61935cd19.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-1e4817b61935cd19.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-1e4817b61935cd19.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
