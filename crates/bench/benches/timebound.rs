//! TBQ overhead at several bounds (the Fig. 15 micro view) plus the TA-cost
//! calibration itself.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::workload::produced_workload;
use sgq::{SgqConfig, SgqEngine, TimeBoundConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_timebound(c: &mut Criterion) {
    let ds = DatasetSpec::dbpedia_like(2.0).build();
    let space = ds.oracle_space();
    let q = &produced_workload(&ds)[0];
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 100,
            tau: 0.3,
            ..SgqConfig::default()
        },
    );
    let mut group = c.benchmark_group("tbq");
    group.sample_size(15);
    for bound_us in [500u64, 5_000, 50_000] {
        let tb = TimeBoundConfig::with_bound(Duration::from_micros(bound_us));
        group.bench_function(format!("tbq_bound_{bound_us}us"), |b| {
            b.iter(|| {
                black_box(
                    engine
                        .query_time_bounded(&q.graph, &tb)
                        .unwrap()
                        .matches
                        .len(),
                )
            })
        });
    }
    group.bench_function("calibrate_ta_cost", |b| {
        b.iter(|| black_box(sgq::timebound::calibrate_ta_cost()))
    });
    group.finish();
}

criterion_group!(benches, bench_timebound);
criterion_main!(benches);
