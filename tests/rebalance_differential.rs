//! Differential harness for skew-driven online shard rebalancing.
//!
//! The rebalance contract (see `sgq::live::LiveQueryService::rebalance`):
//! re-partitioning the sharded durable layout levels the edge skew but is
//! a pure storage re-layout — node/edge ids, adjacency order, and
//! therefore every certified answer are bit-identical before and after,
//! through crash/recovery cycles included. The `Rebalancer` controller is
//! a deterministic threshold-and-window state machine over the
//! `shard_skew()` gauge. This harness drives the full loop on the
//! shard-hostile skew stream: observe → fire → migrate → crash → recover
//! → churn → crash again, comparing every answer against a never-crashed,
//! never-rebalanced in-memory reference.

use datagen::workload::{skewed_triples, SkewSpec};
use embedding::PredicateSpace;
use kgraph::{GraphView, VersionedGraph};
use sgq::sched::{BatchScheduler, Priority, SchedOutcome};
use sgq::{
    FinalMatch, LiveQueryService, QueryGraph, RebalanceConfig, Rebalancer, SchedConfig, SgqConfig,
    ShardedDeployment,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn config() -> SgqConfig {
    SgqConfig {
        k: 10,
        tau: 0.0,
        workers: 4,
        ..SgqConfig::default()
    }
}

struct TestDir(PathBuf);
impl TestDir {
    fn new(label: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sgq_rebalance_{label}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}
impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The skew-stream fixture of `sharded_differential`: a zipf-headed graph
/// with a one-hot predicate space (the claim is about storage, not
/// embedding quality) and queries anchored at the hot head and cold tails.
fn skew_fixture() -> (
    kgraph::KnowledgeGraph,
    PredicateSpace,
    lexicon::TransformationLibrary,
    Vec<QueryGraph>,
) {
    let spec = SkewSpec {
        nodes: 1_200,
        edges: 8_000,
        shards: 4,
        ..SkewSpec::default()
    };
    let triples = skewed_triples(&spec);
    let graph = kgraph::io::graph_from_triples(triples.iter().cloned());
    let (vectors, labels): (Vec<Vec<f32>>, Vec<String>) = {
        let n = graph.predicate_count();
        graph
            .predicates()
            .enumerate()
            .map(|(i, (_, l))| {
                let mut v = vec![0.0f32; n];
                v[i] = 1.0;
                (v, l.to_string())
            })
            .unzip()
    };
    let space = PredicateSpace::from_raw(vectors, labels);
    let library = lexicon::TransformationLibrary::new();
    let queries: Vec<QueryGraph> = ["SkewEntity_0", "SkewEntity_7", "SkewEntity_1111"]
        .iter()
        .flat_map(|name| {
            let anchor_type = graph
                .node_by_name(name)
                .map(|n| graph.node_type_name(n).to_string())
                .expect("skew entity exists");
            ["hot", "p0", "p3"].iter().map(move |pred| {
                let mut q = QueryGraph::new();
                let target = q.add_target("SkewType_2");
                let anchor = q.add_specific(name, &anchor_type);
                q.add_edge(target, pred, anchor);
                q
            })
        })
        .collect();
    (graph, space, library, queries)
}

/// A rebalance needs a sharded durable layout underneath — the in-memory
/// live service refuses with a storage error instead of silently no-oping.
#[test]
fn rebalance_requires_a_sharded_deployment() {
    let (graph, space, library, _) = skew_fixture();
    let store = Arc::new(VersionedGraph::new(graph));
    let service = LiveQueryService::new(Arc::clone(&store), &space, &library, config());
    let err = service.rebalance().expect_err("no sharded layout");
    assert!(
        err.to_string().contains("sharded deployment"),
        "unexpected error: {err}"
    );
}

/// The acceptance criterion, end to end: the controller fires on sustained
/// skew, the migration levels the layout (`skew_after < skew_before`,
/// buckets actually move), and answers stay bit-identical to the
/// never-rebalanced reference — through the migration, through a crash
/// directly after it, and through a second churn + dirty-crash cycle whose
/// phantom staged write must be discarded. Finally a cache-enabled
/// scheduler serves the recovered deployment and every response (cold and
/// cache-served alike) still equals the reference.
#[test]
fn rebalanced_answers_stay_bit_identical_through_crashes() {
    let (graph, space, library, queries) = skew_fixture();
    let dir = TestDir::new("cycle");
    let deploy_dir = dir.0.join("kg");

    // Reference: in-memory, never sharded, never crashed. It compacts
    // whenever the deployment rebalances (a rebalance is one compaction
    // plus a manifest flip), keeping the epoch counters aligned.
    let reference_store = Arc::new(VersionedGraph::new(graph.clone()));
    let reference = LiveQueryService::new(Arc::clone(&reference_store), &space, &library, config());

    let answers_of = |service: &LiveQueryService<'_>| -> Vec<Vec<FinalMatch>> {
        queries
            .iter()
            .map(|q| service.query(q).expect("answers").matches)
            .collect()
    };

    // Phase 1: observe → fire → migrate.
    let deployment =
        ShardedDeployment::create(&deploy_dir, graph, space.clone(), library.clone(), 4)
            .expect("create sharded deployment");
    let report = {
        let service = deployment.service(config());
        assert_eq!(
            answers_of(&service),
            answers_of(&reference),
            "pre-rebalance"
        );

        // Live traffic before the migration: a committed delta on both
        // stores, so the rebalance compacts real history (and the
        // reference's aligning compaction is never a no-op).
        let store = Arc::clone(deployment.versioned());
        for i in 0..16 {
            let head = format!("WarmupEntity_{i}");
            let tail = format!("SkewEntity_{}", i % 20);
            for s in [&store, &reference_store] {
                s.insert_triple(
                    (head.as_str(), "SkewType_2"),
                    "hot",
                    (tail.as_str(), "SkewType_0"),
                );
            }
        }
        store.commit();
        reference_store.commit();
        service.refresh();
        reference.refresh();
        assert_eq!(answers_of(&service), answers_of(&reference), "post-warmup");

        // The hash-routed layout is hostile by construction; the default
        // controller (threshold 1.5, window 3) sees the skew sustained
        // over three control ticks and fires exactly on the third.
        let mut controller = Rebalancer::new(RebalanceConfig::default());
        let skew = service.stats().shard_skew();
        assert!(skew > 1.5, "stream must be hostile, got {skew:.2}");
        assert!(!controller.observe(skew));
        assert!(!controller.observe(skew));
        assert!(controller.observe(skew), "third sustained look fires");

        let report = service.rebalance().expect("rebalance");
        reference_store.compact();
        service.refresh();
        reference.refresh();

        assert!(report.skew_before() > 1.5);
        assert!(
            report.skew_after() < report.skew_before(),
            "migration must level the layout: {:.2} -> {:.2}",
            report.skew_before(),
            report.skew_after()
        );
        assert!(report.moved_buckets > 0, "buckets must actually move");
        assert_eq!(
            answers_of(&service),
            answers_of(&reference),
            "post-rebalance answers diverged"
        );
        assert_eq!(service.stats().epoch, reference.stats().epoch);
        let leveled = service.stats().shard_skew();
        assert!(
            (leveled - report.skew_after()).abs() < 1e-9,
            "published gauge must show the new assignment: {leveled:.2} vs {:.2}",
            report.skew_after()
        );
        report
    };
    drop(deployment); // crash #1, directly after the migration

    // Phase 2: recover under the new assignment, churn both stores, then
    // crash dirty with a phantom staged write.
    let deployment = ShardedDeployment::open(&deploy_dir).expect("reopen rebalanced layout");
    {
        let service = deployment.service(config());
        assert_eq!(
            answers_of(&service),
            answers_of(&reference),
            "post-crash recovery diverged from the reference"
        );
        let recovered = service.stats().shard_skew();
        assert!(
            (recovered - report.skew_after()).abs() < 1e-9,
            "the rebalanced assignment must survive the crash"
        );

        let store = Arc::clone(deployment.versioned());
        for i in 0..32 {
            let head = format!("ChurnEntity_{i}");
            let tail = format!("SkewEntity_{}", i % 40);
            for s in [&store, &reference_store] {
                s.insert_triple(
                    (head.as_str(), "SkewType_2"),
                    "hot",
                    (tail.as_str(), "SkewType_0"),
                );
            }
        }
        store.commit();
        reference_store.commit();
        service.refresh();
        reference.refresh();
        assert_eq!(
            answers_of(&service),
            answers_of(&reference),
            "post-churn answers diverged"
        );
        // Staged but uncommitted: must vanish in the crash.
        store.insert_triple(
            ("PhantomSkew", "SkewType_2"),
            "hot",
            ("SkewEntity_0", "SkewType_0"),
        );
    }
    drop(deployment); // crash #2 (dirty: committed epoch + staged tail)

    // Phase 3: recover, discard the phantom, and serve through the
    // cache-enabled scheduler — every cold and cache-served response
    // equals the never-crashed reference.
    let deployment = ShardedDeployment::open(&deploy_dir).expect("recover");
    assert_eq!(
        deployment.recovery().discarded_ops,
        1,
        "the phantom staged write is discarded"
    );
    let service = deployment.service(config());
    reference.refresh();
    let baseline = answers_of(&reference);
    assert_eq!(answers_of(&service), baseline, "post-recovery diverged");
    assert!(service.pin().graph().node_by_name("PhantomSkew").is_none());
    assert_eq!(service.stats().epoch, reference.stats().epoch);

    let stats = BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        for _pass in 0..2 {
            for (idx, q) in queries.iter().enumerate() {
                let response = handle.query_within(q, Duration::from_secs(30), Priority::Normal);
                match response.outcome {
                    SchedOutcome::Exact(r) => assert_eq!(
                        r.matches, baseline[idx],
                        "scheduled answer over the rebalanced deployment diverged \
                         on query {idx}"
                    ),
                    other => panic!("slack deadline must stay exact, got {other:?}"),
                }
            }
        }
        handle.stats()
    })
    .expect("valid scheduler config");
    assert_eq!(stats.exact, 2 * queries.len() as u64);
    assert_eq!(
        stats.answer_cache_served(),
        queries.len() as u64,
        "the second pass is served from the answer cache: {stats:?}"
    );
}
