/root/repo/target/debug/deps/repro-4fb0777e2ef984cc.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4fb0777e2ef984cc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
