//! Sharded scatter-gather: candidate-generation/TA phase scaling.
//!
//! The workload is built so the per-query cost is dominated by **candidate
//! generation**: one query label resolves (through φ's normalisation, the
//! way dirty dumps carry case variants of one entity) to a ~4k-node
//! candidate family with degree 64 each, so every execution pays a ~260k-edge
//! seeding pass — scoring each candidate's `m(u)` adjacency bound against
//! the τ threshold — before the A\* search and TA assembly finish quickly.
//! On the sharded store that pass scatters one scan job per shard on the
//! worker pool; this bench reports executions/second of a prepared query
//! (plan compiled once — the measured loop is exactly the seeding, search
//! and TA phases) at 1 (unsharded) / 2 / 4 / 8 shards, single client, plus
//! the engine-build time (the per-shard φ index) and a skew readout on the
//! shard-hostile stream. Answers are asserted bit-identical across all
//! shard counts; there is deliberately **no** hard speedup assert — CI
//! runners jitter — the numbers are printed for the PR report.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::workload::{skewed_triples, SkewSpec};
use embedding::PredicateSpace;
use kgraph::{GraphBuilder, GraphStats, KnowledgeGraph, ShardedGraph};
use lexicon::TransformationLibrary;
use sgq::{QueryGraph, QueryService, SgqConfig};
use std::hint::black_box;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const SOURCES: usize = 4_096;
const DEGREE: usize = 64;
const QUERIES_PER_ROUND: usize = 8;

/// `n`'s bits choose the uppercase positions of `base` — distinct raw
/// names, one normalised φ key.
fn case_variant(base: &str, n: usize) -> String {
    base.chars()
        .enumerate()
        .map(|(i, c)| {
            if i < usize::BITS as usize && n & (1 << i) != 0 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

fn build_graph() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let goals: Vec<_> = (0..256)
        .map(|i| b.add_node(&format!("Goal_{i}"), "Goal"))
        .collect();
    for i in 0..SOURCES {
        let s = b.add_node(&case_variant("benchhubsourcecandidate", i), "Anchor");
        // One weight band per source, 30..94: under τ = 0.8 roughly 3/4 of
        // the candidates prune at the seed after their full adjacency scan
        // — the measured cost *is* the candidate scoring pass.
        let w = 30 + (i % 65);
        for d in 0..DEGREE {
            b.add_edge(s, goals[(i * DEGREE + d) % goals.len()], &format!("w{w}"));
        }
    }
    let qa = b.add_node("DummyQA", "Dummy");
    let qb = b.add_node("DummyQB", "Dummy");
    b.add_edge(qa, qb, "q");
    b.finish()
}

fn space_for(graph: &KnowledgeGraph) -> PredicateSpace {
    let (vectors, labels): (Vec<Vec<f32>>, Vec<String>) = graph
        .predicates()
        .map(|(_, label)| {
            let sim: f32 = if label == "q" {
                1.0
            } else {
                label
                    .strip_prefix('w')
                    .and_then(|s| s.parse::<f32>().ok())
                    .map_or(0.0, |p| p / 100.0)
            };
            (vec![sim, (1.0 - sim * sim).max(0.0).sqrt()], label.into())
        })
        .unzip();
    PredicateSpace::from_raw(vectors, labels)
}

fn query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let goal = q.add_target("Goal");
    let anchor = q.add_specific("benchhubsourcecandidate", "Anchor");
    q.add_edge(goal, "q", anchor);
    q
}

fn config() -> SgqConfig {
    SgqConfig {
        k: 10,
        tau: 0.8,
        n_hat: 1,
        workers: 8,
        ..SgqConfig::default()
    }
}

fn bench_sharded(c: &mut Criterion) {
    let graph = build_graph();
    let space = space_for(&graph);
    let library = TransformationLibrary::new();
    let q = query();

    // Unsharded reference + bit-identity anchor.
    let mono = QueryService::build(&graph, &space, &library, config());
    let mono_prepared = mono.prepare(&q).expect("prepares");
    let reference = mono.execute(&mono_prepared).expect("reference").matches;
    assert!(!reference.is_empty());

    let mut group = c.benchmark_group("sharded_candidate_gen");
    group.sample_size(10);
    group.bench_function("shards_1_unsharded", |b| {
        b.iter(|| {
            for _ in 0..QUERIES_PER_ROUND {
                black_box(mono.execute(&mono_prepared).expect("answers").matches.len());
            }
        })
    });
    let mut sharded_services = Vec::new();
    for shards in SHARD_COUNTS {
        let build_start = Instant::now();
        let service =
            QueryService::build_sharded(graph.clone(), shards, &space, &library, config())
                .expect("valid shard count");
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        let prepared = service.prepare(&q).expect("prepares");
        assert_eq!(
            service.execute(&prepared).expect("sharded").matches,
            reference,
            "sharded answers must stay bit-identical"
        );
        sharded_services.push((shards, service, prepared, build_ms));
    }
    for (shards, service, prepared, _) in &sharded_services {
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                for _ in 0..QUERIES_PER_ROUND {
                    black_box(service.execute(prepared).expect("answers").matches.len());
                }
            })
        });
    }
    group.finish();

    // Explicit executions/sec + engine-build summary for the PR report.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "\nsharded candidate-generation/TA phase ({SOURCES} φ candidates × degree {DEGREE}, \
         τ=0.8, {cores} core(s) available):"
    );
    if cores == 1 {
        println!(
            "  NOTE: single-core host — the per-shard scatter cannot run concurrently here, \
             so expect ~1x (the differential identity still holds); scaling shows on a \
             multi-core runner."
        );
    }
    let timed = |label: &str, run: &dyn Fn() -> usize| {
        let rounds = 40;
        let start = Instant::now();
        let mut matches = 0;
        for _ in 0..rounds {
            matches += run();
        }
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "  {label:<12} {:>8.1} exec/s ({} matches/exec)",
            rounds as f64 / elapsed,
            matches / rounds,
        );
        rounds as f64 / elapsed
    };
    let base = timed("unsharded", &|| {
        mono.execute(&mono_prepared).expect("answers").matches.len()
    });
    for (shards, service, prepared, build_ms) in &sharded_services {
        let rate = timed(&format!("{shards} shards"), &|| {
            service.execute(prepared).expect("answers").matches.len()
        });
        println!(
            "    ({:>4.2}x vs unsharded; split + per-shard φ-index build {build_ms:.0} ms)",
            rate / base
        );
    }

    // Skew readout on the shard-hostile stream (satellite: imbalance must
    // be *observable*; correctness under it is asserted in
    // tests/sharded_differential.rs).
    let spec = SkewSpec::default();
    let skew_graph = kgraph::io::graph_from_triples(skewed_triples(&spec));
    let sharded = ShardedGraph::from_graph(skew_graph, spec.shards).expect("split");
    let stats = GraphStats::of(&sharded);
    println!(
        "skew-hostile stream at {} shards: per-shard triples {:?}, skew {:.2}",
        spec.shards,
        stats.shard_edges,
        stats.shard_skew()
    );
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
