//! `lint.toml` — the declared invariants the passes check against.
//!
//! The build is offline and the workspace is std-only, so this module
//! hand-parses the subset of TOML the config actually uses: `[table]`
//! headers, `[[array-of-tables]]` headers, and `key = value` lines where a
//! value is a string, a bool, or a (possibly multi-line) string array.

use std::fmt;

/// One declared lock class: a name used in the hierarchy plus the
/// (file-suffix, receiver-identifiers) pair that identifies acquisition
/// sites of this lock in source.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Name referenced by `[lock_order].hierarchy`.
    pub class: String,
    /// Workspace-relative path suffix, e.g. `sgq/src/live.rs`.
    pub file: String,
    /// Final identifier of the receiver expression (`self.rebuild` → `rebuild`).
    pub receivers: Vec<String>,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Declared lock classes.
    pub locks: Vec<LockDecl>,
    /// Total order on lock classes: a thread holding class at index `i` may
    /// only acquire classes at index `> i`.
    pub hierarchy: Vec<String>,
    /// File suffixes whose `Ordering::Relaxed` uses are on the audit
    /// surface (must carry waivers).
    pub atomic_audit: Vec<String>,
    /// File-suffix prefixes of serving-path code for the panic-freedom pass.
    pub panic_paths: Vec<String>,
    /// Subset of serving-path files where raw slice indexing is also denied
    /// (the request-facing tier, where an out-of-bounds panic would take a
    /// query down instead of degrading it).
    pub panic_index_paths: Vec<String>,
    /// Pre-waive `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()`
    /// and `Condvar::wait(..).unwrap()`: lock poisoning means another thread
    /// already panicked, and propagating the poison is the documented policy.
    pub allow_lock_poisoning: bool,
    /// File-suffix prefixes of answer-affecting modules for the
    /// determinism pass.
    pub determinism_paths: Vec<String>,
}

/// A parse failure with its 1-indexed line.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = format!("[[{name}]]");
                if name.trim() == "lock" {
                    cfg.locks.push(LockDecl {
                        class: String::new(),
                        file: String::new(),
                        receivers: Vec::new(),
                    });
                } else {
                    return Err(err(lineno, format!("unknown array-of-tables [[{name}]]")));
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets balance.
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(err(lineno, format!("unterminated array for `{key}`")));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            apply_key(&mut cfg, &section, key, &value, lineno)?;
        }
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        for decl in &self.locks {
            if decl.class.is_empty() || decl.file.is_empty() || decl.receivers.is_empty() {
                return Err(err(
                    0,
                    format!(
                        "[[lock]] `{}` must set class, file, and receivers",
                        decl.class
                    ),
                ));
            }
            if !self.hierarchy.contains(&decl.class) {
                return Err(err(
                    0,
                    format!(
                        "lock class `{}` is not listed in [lock_order].hierarchy",
                        decl.class
                    ),
                ));
            }
        }
        for class in &self.hierarchy {
            if !self.locks.iter().any(|d| &d.class == class) {
                return Err(err(
                    0,
                    format!("hierarchy entry `{class}` has no [[lock]] declaration"),
                ));
            }
        }
        Ok(())
    }
}

fn apply_key(
    cfg: &mut Config,
    section: &str,
    key: &str,
    value: &str,
    lineno: usize,
) -> Result<(), ConfigError> {
    match (section, key) {
        ("[[lock]]", "class") => last_lock(cfg, lineno)?.class = parse_string(value, lineno)?,
        ("[[lock]]", "file") => last_lock(cfg, lineno)?.file = parse_string(value, lineno)?,
        ("[[lock]]", "receivers") => {
            last_lock(cfg, lineno)?.receivers = parse_string_array(value, lineno)?;
        }
        ("lock_order", "hierarchy") => cfg.hierarchy = parse_string_array(value, lineno)?,
        ("atomic_ordering", "audit") => cfg.atomic_audit = parse_string_array(value, lineno)?,
        ("panic_freedom", "paths") => cfg.panic_paths = parse_string_array(value, lineno)?,
        ("panic_freedom", "index_paths") => {
            cfg.panic_index_paths = parse_string_array(value, lineno)?;
        }
        ("panic_freedom", "allow_lock_poisoning") => {
            cfg.allow_lock_poisoning = parse_bool(value, lineno)?;
        }
        ("determinism", "paths") => cfg.determinism_paths = parse_string_array(value, lineno)?,
        _ => {
            return Err(err(
                lineno,
                format!("unknown key `{key}` in section `{section}`"),
            ));
        }
    }
    Ok(())
}

fn last_lock(cfg: &mut Config, lineno: usize) -> Result<&mut LockDecl, ConfigError> {
    cfg.locks
        .last_mut()
        .ok_or_else(|| err(lineno, "key outside a [[lock]] entry".into()))
}

fn parse_string(value: &str, lineno: usize) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(lineno, format!("expected a quoted string, got `{value}`")))
}

fn parse_bool(value: &str, lineno: usize) -> Result<bool, ConfigError> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(err(lineno, format!("expected true/false, got `{value}`"))),
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, format!("expected an array, got `{value}`")))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

/// Strips a `#` comment, but not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn err(line: usize, message: String) -> ConfigError {
    ConfigError { line, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[[lock]]
class = "live.rebuild"
file = "sgq/src/live.rs"
receivers = ["rebuild"]

[[lock]]
class = "live.current"
file = "sgq/src/live.rs"
receivers = ["current"]

[lock_order]
hierarchy = [
    "live.rebuild",  # outer
    "live.current",  # inner
]

[atomic_ordering]
audit = ["sgq/src/trace.rs"]

[panic_freedom]
paths = ["sgq/src"]
allow_lock_poisoning = true

[determinism]
paths = ["sgq/src/engine.rs"]
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.locks.len(), 2);
        assert_eq!(cfg.locks[0].class, "live.rebuild");
        assert_eq!(cfg.locks[0].receivers, vec!["rebuild"]);
        assert_eq!(cfg.hierarchy, vec!["live.rebuild", "live.current"]);
        assert_eq!(cfg.atomic_audit, vec!["sgq/src/trace.rs"]);
        assert!(cfg.allow_lock_poisoning);
        assert_eq!(cfg.determinism_paths, vec!["sgq/src/engine.rs"]);
    }

    #[test]
    fn rejects_undeclared_hierarchy_entries() {
        let broken = SAMPLE.replace("\"live.current\",  # inner", "\"live.current\", \"ghost\",");
        let e = Config::parse(&broken).unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn rejects_unknown_keys() {
        let e = Config::parse("[panic_freedom]\nnope = true\n").unwrap_err();
        assert!(e.message.contains("nope"));
    }
}
