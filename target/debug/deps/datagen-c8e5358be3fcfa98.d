/root/repo/target/debug/deps/datagen-c8e5358be3fcfa98.d: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen-c8e5358be3fcfa98.rmeta: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/annotate.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/noise.rs:
crates/datagen/src/schema.rs:
crates/datagen/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
