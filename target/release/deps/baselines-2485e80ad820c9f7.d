/root/repo/target/release/deps/baselines-2485e80ad820c9f7.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs

/root/repo/target/release/deps/libbaselines-2485e80ad820c9f7.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs

/root/repo/target/release/deps/libbaselines-2485e80ad820c9f7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/grab.rs:
crates/baselines/src/gstore.rs:
crates/baselines/src/nema.rs:
crates/baselines/src/phom.rs:
crates/baselines/src/qga.rs:
crates/baselines/src/s4.rs:
crates/baselines/src/slq.rs:
