/root/repo/target/debug/deps/baselines-3141abe8dfc41e9a.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs

/root/repo/target/debug/deps/libbaselines-3141abe8dfc41e9a.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs

/root/repo/target/debug/deps/libbaselines-3141abe8dfc41e9a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/grab.rs:
crates/baselines/src/gstore.rs:
crates/baselines/src/nema.rs:
crates/baselines/src/phom.rs:
crates/baselines/src/qga.rs:
crates/baselines/src/s4.rs:
crates/baselines/src/slq.rs:
