/root/repo/target/debug/deps/baselines-fc0713ab81560895.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-fc0713ab81560895.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/grab.rs crates/baselines/src/gstore.rs crates/baselines/src/nema.rs crates/baselines/src/phom.rs crates/baselines/src/qga.rs crates/baselines/src/s4.rs crates/baselines/src/slq.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/grab.rs:
crates/baselines/src/gstore.rs:
crates/baselines/src/nema.rs:
crates/baselines/src/phom.rs:
crates/baselines/src/qga.rs:
crates/baselines/src/s4.rs:
crates/baselines/src/slq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
