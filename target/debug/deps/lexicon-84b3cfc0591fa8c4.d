/root/repo/target/debug/deps/lexicon-84b3cfc0591fa8c4.d: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs Cargo.toml

/root/repo/target/debug/deps/liblexicon-84b3cfc0591fa8c4.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs Cargo.toml

crates/lexicon/src/lib.rs:
crates/lexicon/src/library.rs:
crates/lexicon/src/matcher.rs:
crates/lexicon/src/normalize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
