//! Per-query phase tracing.
//!
//! A [`QueryTrace`] records wall-clock time and work counters for each phase
//! of one query execution: **plan** (validation + decomposition + sub-query
//! plan construction), **seed** (A\* search construction, including the
//! per-shard seed-bound scatter jobs), **expand** (the pooled A\* expansion
//! rounds), **merge** (threshold-algorithm assembly rounds), and — when the
//! query runs under the [`crate::sched::BatchScheduler`] — **fan-out** (the
//! time spent resolving one prepared execution to every coalesced ticket).
//!
//! Tracing is opt-in per request ([`crate::SgqEngine::query_with_trace`],
//! [`crate::QueryService::query_traced`]) or sampled deterministically
//! 1-in-N via [`crate::SgqConfig::trace_sample_every`]. The untraced path
//! takes one branch per phase and allocates nothing, and tracing never
//! feeds back into search decisions — `tests/trace_differential.rs` proves
//! answers are bit-identical with tracing on and off.

use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Wall-time and work counters for one traced query execution.
///
/// All durations are nanoseconds. `total_ns` covers the exact search
/// (seed + expand + merge); `plan_ns` and `fan_out_ns` are populated only
/// on paths that perform those phases (planning on non-prepared queries,
/// fan-out under the scheduler).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct QueryTrace {
    /// Validation, decomposition and sub-query plan construction.
    pub plan_ns: u64,
    /// A\* search construction: seed enumeration and per-shard seed-bound
    /// scatter jobs.
    pub seed_ns: u64,
    /// Pooled A\* expansion rounds (sum over all rounds).
    pub expand_ns: u64,
    /// Threshold-algorithm assembly rounds (sum over all rounds).
    pub merge_ns: u64,
    /// Scheduler fan-out: resolving one prepared execution to every
    /// coalesced ticket in the batch.
    pub fan_out_ns: u64,
    /// End-to-end exact-search time (seed + expand + merge, one clock).
    pub total_ns: u64,
    /// Expansion/assembly rounds until the TA threshold certified.
    pub rounds: u64,
    /// A\* queue pops across all sub-query searches.
    pub popped: u64,
    /// A\* queue pushes across all sub-query searches.
    pub pushed: u64,
    /// Graph edges examined across all sub-query searches.
    pub edges_examined: u64,
    /// Sorted-access rows consumed by the threshold algorithm.
    pub ta_accesses: u64,
    /// Final matches returned.
    pub matches: u64,
    /// Sub-queries the plan decomposed into.
    pub subqueries: u64,
    /// Whether TA certified the top-k (vs. exhausting all streams).
    pub certified: bool,
    /// Graph epoch the query ran against (0 for static graphs).
    pub epoch: u64,
}

/// A bounded in-memory ring of recently sampled [`QueryTrace`]s.
///
/// Sampled traces (via [`crate::SgqConfig::trace_sample_every`]) land here;
/// explicitly traced calls return the trace to the caller instead. The ring
/// keeps the most recent [`TraceSink::capacity`] traces and counts everything
/// it has ever seen.
pub struct TraceSink {
    ring: Mutex<VecDeque<QueryTrace>>,
    capacity: usize,
    recorded: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new(64)
    }
}

impl TraceSink {
    /// A sink retaining at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total traces ever pushed (including those evicted from the ring).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed) // lint-ok(atomic-ordering): monotone telemetry counter; an off-by-a-push read is harmless
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a trace, evicting the oldest if full.
    pub fn push(&self, trace: QueryTrace) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
        self.recorded.fetch_add(1, Ordering::Relaxed); // lint-ok(atomic-ordering): monotone telemetry counter; the ring mutex already orders push/recent pairs
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<QueryTrace> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

/// Deterministic 1-in-N sampling: ticks an atomic counter and fires on every
/// `every`-th call (the first call fires, so a sample rate of 1 traces every
/// query). `every == 0` disables sampling without touching the counter.
#[inline]
pub(crate) fn tick_sampled(tick: &AtomicU64, every: u64) -> bool {
    // lint-ok(atomic-ordering): the RMW hands each caller a unique tick; sampling needs only that atomicity, no cross-variable ordering
    every != 0 && tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_is_a_bounded_ring() {
        let sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.push(QueryTrace {
                rounds: i,
                ..Default::default()
            });
        }
        assert_eq!(sink.recorded(), 5);
        assert_eq!(sink.len(), 3);
        let rounds: Vec<u64> = sink.recent().iter().map(|t| t.rounds).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let tick = AtomicU64::new(0);
        let fired: Vec<bool> = (0..9).map(|_| tick_sampled(&tick, 3)).collect();
        assert_eq!(
            fired,
            vec![true, false, false, true, false, false, true, false, false]
        );

        let off = AtomicU64::new(0);
        assert!((0..10).all(|_| !tick_sampled(&off, 0)));
        // A disabled sampler never advances the counter.
        assert_eq!(off.load(Ordering::Relaxed), 0);

        let every = AtomicU64::new(0);
        assert!((0..10).all(|_| tick_sampled(&every, 1)));
    }

    #[test]
    fn trace_serialises_to_json() {
        let trace = QueryTrace {
            plan_ns: 1,
            seed_ns: 2,
            expand_ns: 3,
            merge_ns: 4,
            total_ns: 9,
            rounds: 1,
            matches: 5,
            certified: true,
            ..Default::default()
        };
        let json = serde_json::to_string(&trace).unwrap();
        assert!(json.contains("\"expand_ns\":3"));
        assert!(json.contains("\"certified\":true"));
    }
}
