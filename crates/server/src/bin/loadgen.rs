//! `loadgen` — drive a running `semkg-server` with the production-shaped
//! workload the scheduler benches use (80% of traffic on a small hot set,
//! 20/60/20 High/Normal/Low priority mix) and report per-priority latency
//! histograms from `obs`.
//!
//! ```text
//! loadgen --addr HOST:PORT [--mode closed|open|overload] [--connections 8]
//!         [--rate 400] [--overload 2.0] [--duration-ms 3000]
//!         [--deadline-ms 25] [--scale 1.0] [--hot-set 4] [--hot-fraction 80]
//!         [--check] [--shutdown]
//! ```
//!
//! * `closed`: each connection round-trips one query at a time (measures
//!   capacity).
//! * `open`: requests fired at `--rate` q/s total regardless of responses
//!   (measures behaviour at a fixed offered load).
//! * `overload`: a closed-loop calibration phase measures capacity, then
//!   an open-loop phase offers `--overload ×` that rate — the p99-under-
//!   overload smoke. With `--check`, asserts the response accounting sums
//!   and that served p99 stays within 4× the deadline (the scheduler
//!   bench's envelope); exits non-zero on violation.
//!
//! Ends by fetching and printing the server's merged metrics scrape
//! (`--shutdown` also drains the server).

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use datagen::dataset::DatasetSpec;
use datagen::workload::{produced_workload, RequestMix};
use obs::{Histogram, MetricsRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use semkg_server::proto::{Request, Response, WireOutcome};
use semkg_server::Client;
use sgq::{Priority, QueryGraph};

fn priority_name(p: Priority) -> &'static str {
    match p {
        Priority::High => "high",
        Priority::Normal => "normal",
        Priority::Low => "low",
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Open,
    Overload,
}

struct Args {
    addr: String,
    mode: Mode,
    connections: usize,
    rate: f64,
    overload: f64,
    duration: Duration,
    deadline: Duration,
    scale: f64,
    mix: RequestMix,
    check: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        mode: Mode::Closed,
        connections: 8,
        rate: 400.0,
        overload: 2.0,
        duration: Duration::from_millis(3000),
        deadline: Duration::from_millis(25),
        scale: 1.0,
        mix: RequestMix::default(),
        check: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    "overload" => Mode::Overload,
                    other => {
                        return Err(format!("--mode must be closed|open|overload, got {other}"))
                    }
                };
            }
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--overload" => {
                args.overload = value("--overload")?
                    .parse()
                    .map_err(|e| format!("--overload: {e}"))?;
            }
            "--duration-ms" => {
                let ms: u64 = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?;
                args.duration = Duration::from_millis(ms);
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                args.deadline = Duration::from_millis(ms);
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--hot-set" => {
                args.mix.hot_set = value("--hot-set")?
                    .parse()
                    .map_err(|e| format!("--hot-set: {e}"))?;
            }
            "--hot-fraction" => {
                args.mix.hot_fraction = value("--hot-fraction")?
                    .parse()
                    .map_err(|e| format!("--hot-fraction: {e}"))?;
            }
            "--check" => args.check = true,
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if args.connections == 0 {
        return Err("--connections must be >= 1".into());
    }
    if args.mix.hot_fraction > 100 {
        return Err("--hot-fraction is a percentage (0..=100)".into());
    }
    if args.mix.hot_set == 0 {
        return Err("--hot-set must be >= 1".into());
    }
    Ok(args)
}

/// Per-run outcome accounting; latencies of *served* (exact or degraded)
/// responses in microseconds.
#[derive(Default)]
struct Tally {
    sent: u64,
    exact: u64,
    degraded: u64,
    shed: u64,
    failed: u64,
    served_us: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.sent += other.sent;
        self.exact += other.exact;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.failed += other.failed;
        self.served_us.extend(other.served_us);
    }

    fn record(&mut self, outcome: &WireOutcome, latency: Duration, hist: &Histogram) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        match outcome {
            WireOutcome::Exact(_) => {
                self.exact += 1;
                self.served_us.push(us);
                hist.record(us);
            }
            WireOutcome::Degraded { .. } => {
                self.degraded += 1;
                self.served_us.push(us);
                hist.record(us);
            }
            WireOutcome::Shed(_) => self.shed += 1,
            WireOutcome::Failed(_) => self.failed += 1,
        }
    }
}

/// Latency histograms by priority, registered in loadgen's own registry.
struct PriorityHists {
    registry: MetricsRegistry,
}

impl PriorityHists {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        for p in Priority::ALL {
            let _ = registry.histogram_labeled(
                "loadgen_latency_us",
                "priority",
                priority_name(p),
                "client-observed latency of served responses",
            );
        }
        Self { registry }
    }

    fn hist(&self, p: Priority) -> Histogram {
        self.registry.histogram_labeled(
            "loadgen_latency_us",
            "priority",
            priority_name(p),
            "client-observed latency of served responses",
        )
    }
}

fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// Closed loop: one in-flight request per connection. Returns the
/// aggregate tally and the measured q/s.
fn run_closed(
    addr: SocketAddr,
    queries: &[QueryGraph],
    args: &Args,
    duration: Duration,
    hists: &PriorityHists,
    seed_base: u64,
) -> Result<(Tally, f64), String> {
    let started = Instant::now();
    let tallies = std::thread::scope(|s| -> Result<Vec<Tally>, String> {
        let workers: Vec<_> = (0..args.connections)
            .map(|conn| {
                s.spawn(move || -> Result<Tally, String> {
                    let mut client =
                        Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut rng = StdRng::seed_from_u64(seed_base + conn as u64);
                    let mut tally = Tally::default();
                    let start = Instant::now();
                    while start.elapsed() < duration {
                        let idx = args.mix.pick(&mut rng, queries.len());
                        let priority = args.mix.pick_priority(&mut rng);
                        let sent = Instant::now();
                        let outcome = client
                            .query(&queries[idx], args.deadline, priority)
                            .map_err(|e| format!("query: {e}"))?;
                        tally.sent += 1;
                        tally.record(&outcome, sent.elapsed(), &hists.hist(priority));
                    }
                    Ok(tally)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(workers.len());
        for w in workers {
            match w.join() {
                Ok(r) => out.push(r?),
                Err(_) => return Err("worker thread panicked".into()),
            }
        }
        Ok(out)
    })?;
    let elapsed = started.elapsed().as_secs_f64();
    let mut total = Tally::default();
    for t in tallies {
        total.absorb(t);
    }
    let qps = total.sent as f64 / elapsed.max(1e-9);
    Ok((total, qps))
}

/// Open loop: each connection fires at `offered / connections` q/s from a
/// sender thread while a receiver thread matches in-order responses.
fn run_open(
    addr: SocketAddr,
    queries: &[QueryGraph],
    args: &Args,
    offered: f64,
    duration: Duration,
    hists: &PriorityHists,
    seed_base: u64,
) -> Result<Tally, String> {
    let per_conn = (offered / args.connections as f64).max(1.0);
    let tallies = std::thread::scope(|s| -> Result<Vec<Tally>, String> {
        let workers: Vec<_> = (0..args.connections)
            .map(|conn| {
                s.spawn(move || -> Result<Tally, String> {
                    let sender =
                        Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut receiver = sender.try_clone().map_err(|e| format!("clone: {e}"))?;
                    let (tx, rx) = mpsc::channel::<(Instant, Priority)>();
                    std::thread::scope(|cs| -> Result<Tally, String> {
                        let send_worker = cs.spawn(move || -> Result<u64, String> {
                            let mut client = sender;
                            let mut rng = StdRng::seed_from_u64(seed_base + conn as u64);
                            let start = Instant::now();
                            let mut fired = 0u64;
                            while start.elapsed() < duration {
                                let due = Duration::from_secs_f64(fired as f64 / per_conn);
                                let now = start.elapsed();
                                if now < due {
                                    std::thread::sleep(due - now);
                                }
                                let idx = args.mix.pick(&mut rng, queries.len());
                                let priority = args.mix.pick_priority(&mut rng);
                                let req = Request::Query {
                                    query: queries[idx].clone(),
                                    deadline_us: args.deadline.as_micros().min(u128::from(u64::MAX))
                                        as u64,
                                    priority,
                                };
                                client
                                    .send_request(&req)
                                    .map_err(|e| format!("send: {e}"))?;
                                if tx.send((Instant::now(), priority)).is_err() {
                                    return Err("receiver hung up".into());
                                }
                                fired += 1;
                            }
                            Ok(fired)
                        });
                        let mut tally = Tally::default();
                        for (sent_at, priority) in rx {
                            match receiver.recv_response() {
                                Ok(Response::Query(outcome)) => {
                                    tally.record(
                                        &outcome,
                                        sent_at.elapsed(),
                                        &hists.hist(priority),
                                    );
                                }
                                Ok(other) => {
                                    return Err(format!("expected query reply, got {other:?}"));
                                }
                                Err(e) => return Err(format!("recv: {e}")),
                            }
                        }
                        match send_worker.join() {
                            Ok(fired) => tally.sent = fired?,
                            Err(_) => return Err("sender thread panicked".into()),
                        }
                        Ok(tally)
                    })
                })
            })
            .collect();
        let mut out = Vec::with_capacity(workers.len());
        for w in workers {
            match w.join() {
                Ok(r) => out.push(r?),
                Err(_) => return Err("worker thread panicked".into()),
            }
        }
        Ok(out)
    })?;
    let mut total = Tally::default();
    for t in tallies {
        total.absorb(t);
    }
    Ok(total)
}

/// Sums the values of non-comment scrape lines whose name+labels start
/// with `prefix`.
fn scrape_sum(text: &str, prefix: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#') && l.starts_with(prefix))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

/// Value of the first scrape line starting with `prefix`, if any.
fn scrape_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| !l.starts_with('#') && l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
}

fn print_histograms(hists: &PriorityHists) {
    println!("per-priority latency of served responses (client-observed):");
    for p in Priority::ALL {
        let snap = hists.hist(p).snapshot();
        println!(
            "  {:<6} n={:<7} p50={:>8.2}ms p90={:>8.2}ms p99={:>8.2}ms max={:>8.2}ms",
            priority_name(p),
            snap.count(),
            snap.p50() as f64 / 1e3,
            snap.p90() as f64 / 1e3,
            snap.p99() as f64 / 1e3,
            snap.max() as f64 / 1e3,
        );
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let addr: SocketAddr = args
        .addr
        .parse()
        .map_err(|e| format!("--addr {}: {e}", args.addr))?;

    eprintln!(
        "loadgen: building workload (scale {}) — must match the server's --scale",
        args.scale
    );
    let ds = DatasetSpec::dbpedia_like(args.scale).build();
    let queries: Vec<QueryGraph> = produced_workload(&ds)
        .into_iter()
        .map(|q| q.graph)
        .collect();
    if queries.is_empty() {
        return Err("generated workload is empty".into());
    }

    let hists = PriorityHists::new();
    let mut total = Tally::default();
    let mut open_phase_us: Vec<u64> = Vec::new();

    match args.mode {
        Mode::Closed => {
            let (tally, qps) = run_closed(addr, &queries, &args, args.duration, &hists, 0xc105)?;
            println!(
                "closed loop: {} connections, {:.0} q/s ({} sent)",
                args.connections, qps, tally.sent
            );
            total.absorb(tally);
        }
        Mode::Open => {
            let tally = run_open(
                addr,
                &queries,
                &args,
                args.rate,
                args.duration,
                &hists,
                0x09e4,
            )?;
            println!(
                "open loop: {} connections, {:.0} q/s offered ({} sent)",
                args.connections, args.rate, tally.sent
            );
            open_phase_us.extend(tally.served_us.iter().copied());
            total.absorb(tally);
        }
        Mode::Overload => {
            let calibration = args.duration.min(Duration::from_millis(1500));
            let (cal_tally, capacity) =
                run_closed(addr, &queries, &args, calibration, &hists, 0xca11)?;
            total.absorb(cal_tally);
            let offered = (capacity * args.overload).max(args.connections as f64);
            println!(
                "overload: measured capacity {capacity:.0} q/s, offering {offered:.0} q/s ({}x)",
                args.overload
            );
            let tally = run_open(
                addr,
                &queries,
                &args,
                offered,
                args.duration,
                &hists,
                0x0dd5,
            )?;
            println!(
                "overload phase: {} sent, {} exact, {} degraded, {} shed, {} failed",
                tally.sent, tally.exact, tally.degraded, tally.shed, tally.failed
            );
            open_phase_us.extend(tally.served_us.iter().copied());
            total.absorb(tally);
        }
    }

    println!(
        "totals: sent {} | exact {} degraded {} shed {} failed {}",
        total.sent, total.exact, total.degraded, total.shed, total.failed
    );
    print_histograms(&hists);

    let mut client = Client::connect(addr).map_err(|e| format!("connect for scrape: {e}"))?;
    let scrape = client.metrics().map_err(|e| format!("metrics: {e}"))?;
    println!("--- server scrape ---");
    println!("{scrape}");

    // Answer-cache effectiveness, from the scheduler's own counters: the
    // hit rate the configured --hot-set / --hot-fraction skew achieved.
    let cache_hits = scrape_sum(&scrape, "sgq_sched_answer_cache_hits_total");
    let cache_dominance = scrape_sum(&scrape, "sgq_sched_answer_cache_dominance_hits_total");
    let cache_misses = scrape_sum(&scrape, "sgq_sched_answer_cache_misses_total");
    let cache_stale = scrape_sum(&scrape, "sgq_sched_answer_cache_stale_total");
    let probes = cache_hits + cache_dominance + cache_misses;
    println!(
        "answer cache: {:.0} exact hits, {:.0} dominance hits, {:.0} misses ({:.0} stale) — hit rate {:.1}% ({}% of traffic on {} hot queries)",
        cache_hits,
        cache_dominance,
        cache_misses,
        cache_stale,
        if probes > 0.0 {
            (cache_hits + cache_dominance) / probes * 100.0
        } else {
            0.0
        },
        args.mix.hot_fraction,
        args.mix.hot_set,
    );

    let mut failures: Vec<String> = Vec::new();
    if args.check {
        // Client-side accounting: every sent request got exactly one reply.
        let replied = total.exact + total.degraded + total.shed + total.failed;
        if replied != total.sent {
            failures.push(format!(
                "client accounting: {replied} outcomes != {} sent",
                total.sent
            ));
        }
        // Server-side: every decoded query produced exactly one counted reply.
        let srv_queries = scrape_sum(&scrape, "semkg_server_requests_total{kind=\"query\"}");
        let srv_replies = scrape_sum(&scrape, "semkg_server_responses_total");
        if srv_queries != srv_replies {
            failures.push(format!(
                "server accounting: {srv_replies} replies != {srv_queries} query requests"
            ));
        }
        if srv_queries != total.sent as f64 {
            failures.push(format!(
                "server saw {srv_queries} queries, client sent {}",
                total.sent
            ));
        }
        // Scheduler-side: submitted == exact + degraded + failed + shed.
        let submitted = scrape_sum(&scrape, "sgq_sched_submitted_total");
        let resolved = scrape_sum(&scrape, "sgq_sched_exact_total")
            + scrape_sum(&scrape, "sgq_sched_degraded_total")
            + scrape_sum(&scrape, "sgq_sched_failed_total")
            + scrape_sum(&scrape, "sgq_sched_shed_total");
        if submitted != resolved {
            failures.push(format!(
                "scheduler accounting: {resolved} resolutions != {submitted} submitted"
            ));
        }
        // The overload envelope from benches/scheduler.rs: the scheduler's
        // submit-to-resolution p99 for high-priority traffic must stay
        // within 4x the deadline instead of collapsing into queueing. This
        // is asserted on the server-side latency histogram from the scrape:
        // in a strict open loop past capacity, client-observed latency
        // additionally includes unbounded kernel socket-buffer queueing,
        // which no admission control behind the socket can bound.
        if args.mode != Mode::Closed {
            let client_p99_us = percentile_us(&mut open_phase_us, 0.99);
            println!(
                "open-loop client-observed served p99: {:.2} ms (includes socket queueing)",
                client_p99_us as f64 / 1e3
            );
            let cap_ms = args.deadline.as_secs_f64() * 1e3 * 4.0;
            let sched_p99 = scrape_value(
                &scrape,
                "sgq_sched_latency_us{priority=\"high\",quantile=\"0.99\"}",
            );
            match sched_p99 {
                Some(us) => {
                    println!(
                        "scheduler high-priority p99: {:.2} ms (envelope {cap_ms:.2} ms)",
                        us / 1e3
                    );
                    if us / 1e3 > cap_ms {
                        failures.push(format!(
                            "scheduler high-priority p99 {:.2} ms exceeds 4x deadline {cap_ms:.2} ms",
                            us / 1e3
                        ));
                    }
                }
                None => {
                    failures.push("scrape has no sgq_sched_latency_us high-priority p99".into())
                }
            }
        }
    }

    if args.shutdown {
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
        eprintln!("loadgen: server acknowledged shutdown");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("loadgen check FAILED: {f}");
        }
        return Err(format!("{} check(s) failed", failures.len()));
    }
    if args.check {
        println!("loadgen checks passed");
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}
