/root/repo/target/debug/deps/pipeline-8f53e726ed06ab30.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-8f53e726ed06ab30.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
