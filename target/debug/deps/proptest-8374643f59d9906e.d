/root/repo/target/debug/deps/proptest-8374643f59d9906e.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-8374643f59d9906e: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
