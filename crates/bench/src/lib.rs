//! # sgq-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's §VII evaluation over
//! the synthetic datasets (see DESIGN.md §5 for the experiment index):
//!
//! ```text
//! cargo run -p bench --release --bin repro -- all
//! cargo run -p bench --release --bin repro -- table1 fig12 fig15 …
//! ```
//!
//! Criterion micro-benchmarks live under `benches/` and cover the latency
//! panels (Figs. 12–14(d)), the engine's building blocks, and the
//! concurrent-throughput bench over the shared runtime
//! (`cargo bench -p bench --bench throughput`).

pub mod experiments;
pub mod table;

pub use experiments::{run_experiment, EXPERIMENTS};
