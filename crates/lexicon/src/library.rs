//! The transformation library (paper Table III).
//!
//! A bidirectional dictionary of synonym and abbreviation records keyed by
//! normalised labels. Records connect *alias* labels (as they appear in
//! query graphs) to *canonical* labels (as they appear in the knowledge
//! graph), e.g. synonyms `Car, Motorcar, Auto, Vehicle → Automobile` and
//! abbreviations `GER, FRG → Germany`.

use crate::normalize::normalize_label;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// How an alias relates to its canonical label (paper Definition 3 cases
/// 2 and 3; case 1 — identical — needs no library record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformKind {
    /// The alias is a synonym of the canonical label.
    Synonym,
    /// The alias is an abbreviation of the canonical label.
    Abbreviation,
}

/// A synonym/abbreviation dictionary over normalised labels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransformationLibrary {
    /// normalised alias → [(canonical label, kind)]
    forward: FxHashMap<String, Vec<(String, TransformKind)>>,
    /// normalised canonical → [alias labels] (for noise injection, which
    /// needs to pick a random alias of a label).
    reverse: FxHashMap<String, Vec<String>>,
}

impl TransformationLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `alias` as a synonym or abbreviation of `canonical`.
    /// Duplicate registrations are ignored.
    pub fn add(&mut self, alias: &str, canonical: &str, kind: TransformKind) {
        let a = normalize_label(alias);
        let c = normalize_label(canonical);
        if a.is_empty() || c.is_empty() || a == c {
            return;
        }
        let entry = self.forward.entry(a.clone()).or_default();
        if !entry.iter().any(|(canon, k)| *canon == c && *k == kind) {
            entry.push((c.clone(), kind));
        }
        let rev = self.reverse.entry(c).or_default();
        if !rev.contains(&a) {
            rev.push(a);
        }
    }

    /// Registers a whole synonym row (paper Table III style): every alias
    /// maps to the canonical label, and aliases map to each other through it.
    pub fn add_synonym_row(&mut self, canonical: &str, aliases: &[&str]) {
        for alias in aliases {
            self.add(alias, canonical, TransformKind::Synonym);
        }
    }

    /// Registers abbreviations of a canonical label.
    pub fn add_abbreviation_row(&mut self, canonical: &str, abbreviations: &[&str]) {
        for abbr in abbreviations {
            self.add(abbr, canonical, TransformKind::Abbreviation);
        }
    }

    /// Canonical labels reachable from `alias` (not including the identical
    /// case), with the transform kind that connects them.
    pub fn canonical_of(&self, alias: &str) -> &[(String, TransformKind)] {
        self.forward
            .get(&normalize_label(alias))
            .map_or(&[], Vec::as_slice)
    }

    /// Aliases registered for a canonical label.
    pub fn aliases_of(&self, canonical: &str) -> &[String] {
        self.reverse
            .get(&normalize_label(canonical))
            .map_or(&[], Vec::as_slice)
    }

    /// True when `a` can stand for `b`: identical after normalisation, or a
    /// registered alias of it.
    pub fn matches(&self, a: &str, b: &str) -> bool {
        let na = normalize_label(a);
        let nb = normalize_label(b);
        if na == nb {
            return true;
        }
        self.forward
            .get(&na)
            .is_some_and(|cs| cs.iter().any(|(c, _)| *c == nb))
    }

    /// Number of distinct alias entries.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when no records are registered.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3() -> TransformationLibrary {
        let mut lib = TransformationLibrary::new();
        lib.add_synonym_row("Automobile", &["Car", "Motorcar", "Auto", "Vehicle"]);
        lib.add_abbreviation_row("Germany", &["GER", "FRG", "Federal Republic of Germany"]);
        lib
    }

    #[test]
    fn synonym_lookup() {
        let lib = table3();
        let canon = lib.canonical_of("Car");
        assert_eq!(canon.len(), 1);
        assert_eq!(canon[0].0, "automobile");
        assert_eq!(canon[0].1, TransformKind::Synonym);
    }

    #[test]
    fn abbreviation_lookup() {
        let lib = table3();
        let canon = lib.canonical_of("GER");
        assert_eq!(canon[0].0, "germany");
        assert_eq!(canon[0].1, TransformKind::Abbreviation);
    }

    #[test]
    fn matches_covers_all_three_cases() {
        let lib = table3();
        assert!(lib.matches("Automobile", "Automobile")); // identical
        assert!(lib.matches("Car", "Automobile")); // synonym
        assert!(lib.matches("GER", "Germany")); // abbreviation
        assert!(!lib.matches("Boat", "Automobile"));
        assert!(!lib.matches("Automobile", "Car"), "aliasing is directed");
    }

    #[test]
    fn normalisation_applies_to_lookups() {
        let lib = table3();
        assert!(lib.matches("car", "AUTOMOBILE"));
        assert!(lib.matches("federal_republic_of_germany", "Germany"));
    }

    #[test]
    fn reverse_lookup_lists_aliases() {
        let lib = table3();
        let aliases = lib.aliases_of("Germany");
        assert_eq!(aliases.len(), 3);
        assert!(aliases.contains(&"ger".to_string()));
    }

    #[test]
    fn duplicates_and_degenerate_records_ignored() {
        let mut lib = TransformationLibrary::new();
        lib.add("Car", "Automobile", TransformKind::Synonym);
        lib.add("Car", "Automobile", TransformKind::Synonym);
        lib.add("", "Automobile", TransformKind::Synonym);
        lib.add("Same", "same", TransformKind::Synonym); // identical after norm
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.canonical_of("Car").len(), 1);
    }

    #[test]
    fn one_alias_many_canonicals() {
        let mut lib = TransformationLibrary::new();
        lib.add("US", "United States", TransformKind::Abbreviation);
        lib.add("US", "Us Magazine", TransformKind::Abbreviation);
        assert_eq!(lib.canonical_of("US").len(), 2);
        assert!(lib.matches("US", "United_States"));
        assert!(lib.matches("US", "us magazine"));
    }

    #[test]
    fn serde_roundtrip() {
        let lib = table3();
        let json = serde_json::to_string(&lib).unwrap();
        let back: TransformationLibrary = serde_json::from_str(&json).unwrap();
        assert!(back.matches("Car", "Automobile"));
    }
}
