//! Decomposition (pivot DP) cost on the Fig. 16 complex query.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::workload::soccer_query;
use sgq::decompose::decompose;
use sgq::PivotStrategy;
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let ds = DatasetSpec::tiny().build();
    let (q, _, _) = soccer_query(&ds, 0);
    let mut group = c.benchmark_group("decompose");
    group.bench_function("soccer_query_min_cost", |b| {
        b.iter(|| {
            black_box(
                decompose(&q.graph, PivotStrategy::MinCost, 24.0, 4)
                    .unwrap()
                    .cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
