/root/repo/target/debug/deps/sgq-96213c649eac53a8.d: crates/sgq/src/lib.rs crates/sgq/src/answer.rs crates/sgq/src/astar.rs crates/sgq/src/config.rs crates/sgq/src/decompose.rs crates/sgq/src/engine.rs crates/sgq/src/error.rs crates/sgq/src/pss.rs crates/sgq/src/query.rs crates/sgq/src/runtime.rs crates/sgq/src/semgraph.rs crates/sgq/src/service.rs crates/sgq/src/ta.rs crates/sgq/src/timebound.rs

/root/repo/target/debug/deps/libsgq-96213c649eac53a8.rlib: crates/sgq/src/lib.rs crates/sgq/src/answer.rs crates/sgq/src/astar.rs crates/sgq/src/config.rs crates/sgq/src/decompose.rs crates/sgq/src/engine.rs crates/sgq/src/error.rs crates/sgq/src/pss.rs crates/sgq/src/query.rs crates/sgq/src/runtime.rs crates/sgq/src/semgraph.rs crates/sgq/src/service.rs crates/sgq/src/ta.rs crates/sgq/src/timebound.rs

/root/repo/target/debug/deps/libsgq-96213c649eac53a8.rmeta: crates/sgq/src/lib.rs crates/sgq/src/answer.rs crates/sgq/src/astar.rs crates/sgq/src/config.rs crates/sgq/src/decompose.rs crates/sgq/src/engine.rs crates/sgq/src/error.rs crates/sgq/src/pss.rs crates/sgq/src/query.rs crates/sgq/src/runtime.rs crates/sgq/src/semgraph.rs crates/sgq/src/service.rs crates/sgq/src/ta.rs crates/sgq/src/timebound.rs

crates/sgq/src/lib.rs:
crates/sgq/src/answer.rs:
crates/sgq/src/astar.rs:
crates/sgq/src/config.rs:
crates/sgq/src/decompose.rs:
crates/sgq/src/engine.rs:
crates/sgq/src/error.rs:
crates/sgq/src/pss.rs:
crates/sgq/src/query.rs:
crates/sgq/src/runtime.rs:
crates/sgq/src/semgraph.rs:
crates/sgq/src/service.rs:
crates/sgq/src/ta.rs:
crates/sgq/src/timebound.rs:
