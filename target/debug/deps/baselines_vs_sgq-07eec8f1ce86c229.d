/root/repo/target/debug/deps/baselines_vs_sgq-07eec8f1ce86c229.d: tests/baselines_vs_sgq.rs

/root/repo/target/debug/deps/baselines_vs_sgq-07eec8f1ce86c229: tests/baselines_vs_sgq.rs

tests/baselines_vs_sgq.rs:
