/root/repo/target/release/deps/semkg-ff7833f77fd2ca2e.d: src/lib.rs

/root/repo/target/release/deps/libsemkg-ff7833f77fd2ca2e.rlib: src/lib.rs

/root/repo/target/release/deps/libsemkg-ff7833f77fd2ca2e.rmeta: src/lib.rs

src/lib.rs:
