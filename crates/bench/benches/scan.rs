//! Scan-kernel before/after: the vocabulary-scale hot loops.
//!
//! Three measurements, each comparing [`sgq::ScanMode::ScalarReference`]
//! (the pre-kernel loops) against [`sgq::ScanMode::Kernel`] on the same
//! service and workload, with answers asserted bit-identical first:
//!
//! * **seed scoring** — a vocabulary-scale hub workload (4k φ candidates ×
//!   degree 64 over ~133k distinct predicates, so each φ row is a ~1 MiB
//!   f64 / ~0.5 MiB f32 table, τ = 0.8) where ~3/4 of the candidates prune
//!   at the seed; reported as ns per candidate, the two-pass f32-prefilter's
//!   target;
//! * **expansion** — the same graph drained with τ = 0 and an unreachable
//!   k, so every source is popped and every adjacency edge weighted;
//!   reported as ns per examined edge (`QueryStats::edges_examined` is the
//!   exact denominator), the precomputed-`ln` lookup's target;
//! * **cold-start buffering** — `kgraph::io::binary::load_with_stats` on a
//!   120k-edge snapshot: peak transient buffer vs file size (the pre-stream
//!   loader buffered the whole file).
//!
//! The numbers land in `BENCH_scan.json` at the workspace root for the PR
//! report; as in `benches/sharded.rs` there is deliberately **no** hard
//! speedup assert — CI runners jitter — only the bit-identity asserts gate.

use criterion::{criterion_group, criterion_main, Criterion};
use kgraph::{GraphBuilder, KnowledgeGraph};
use lexicon::TransformationLibrary;
use serde::Serialize;
use sgq::{QueryGraph, QueryService, ScanMode, SgqConfig};
use std::hint::black_box;
use std::time::Instant;

const SOURCES: usize = 4_096;
const DEGREE: usize = 64;
/// Weight bands 30..95 (percent) — a source in band `w` only carries band-`w`
/// edges, so its seed bound `m(u)` is exactly `w/100` and τ = 0.8 prunes the
/// bands below 80.
const BANDS: usize = 65;
/// Distinct predicates per band. 65 × 2048 ≈ 133k predicates — a DBpedia-
/// scale vocabulary, so the φ rows the scans walk are ~1 MiB f64 / ~0.5 MiB
/// f32 tables that spill the private caches, not L1-resident toys. That is
/// the regime the kernels are built for: the f32 prefilter halves the row
/// traffic precisely when the row doesn't fit.
const PREDS_PER_BAND: usize = 2_048;

/// `n`'s bits choose the uppercase positions of `base` — distinct raw
/// names, one normalised φ key.
fn case_variant(base: &str, n: usize) -> String {
    base.chars()
        .enumerate()
        .map(|(i, c)| {
            if i < usize::BITS as usize && n & (1 << i) != 0 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

fn build_graph() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    let goals: Vec<_> = (0..256)
        .map(|i| b.add_node(&format!("Goal_{i}"), "Goal"))
        .collect();
    for i in 0..SOURCES {
        let s = b.add_node(&case_variant("benchhubsourcecandidate", i), "Anchor");
        let w = 30 + (i % BANDS);
        for d in 0..DEGREE {
            // Pseudo-random walk over the band's predicates (17 is odd,
            // hence coprime to 2048, so the 64 picks are distinct) — the
            // row lookups are genuine gathers, not one hot entry.
            let j = (i * 31 + d * 17) % PREDS_PER_BAND;
            b.add_edge(
                s,
                goals[(i * DEGREE + d) % goals.len()],
                &format!("w{w}_{j}"),
            );
        }
    }
    let qa = b.add_node("DummyQA", "Dummy");
    let qb = b.add_node("DummyQB", "Dummy");
    b.add_edge(qa, qb, "q");
    b.finish()
}

fn space_for(graph: &KnowledgeGraph) -> embedding::PredicateSpace {
    let (vectors, labels): (Vec<Vec<f32>>, Vec<String>) = graph
        .predicates()
        .map(|(_, label)| {
            let sim: f32 = if label == "q" {
                1.0
            } else {
                label
                    .strip_prefix('w')
                    .and_then(|s| s.split('_').next())
                    .and_then(|s| s.parse::<f32>().ok())
                    .map_or(0.0, |p| p / 100.0)
            };
            (vec![sim, (1.0 - sim * sim).max(0.0).sqrt()], label.into())
        })
        .unzip();
    embedding::PredicateSpace::from_raw(vectors, labels)
}

fn query() -> QueryGraph {
    let mut q = QueryGraph::new();
    let goal = q.add_target("Goal");
    let anchor = q.add_specific("benchhubsourcecandidate", "Anchor");
    q.add_edge(goal, "q", anchor);
    q
}

fn config(scan: ScanMode, tau: f64, k: usize) -> SgqConfig {
    SgqConfig {
        k,
        tau,
        n_hat: 1,
        workers: 8,
        scan,
        ..SgqConfig::default()
    }
}

#[derive(Serialize)]
struct PairReport {
    unit: &'static str,
    scalar_reference: f64,
    kernel: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ColdStartReport {
    file_bytes: u64,
    peak_buffer_bytes: usize,
    buffering_ratio: f64,
    load_ms: f64,
}

#[derive(Serialize)]
struct TracingReport {
    unit: &'static str,
    tracing_off: f64,
    tracing_on: f64,
    /// `tracing_on / tracing_off` — what sampling every query costs.
    overhead_ratio: f64,
}

#[derive(Serialize)]
struct ScanReport {
    bench: &'static str,
    sources: usize,
    degree: usize,
    seed_scoring: PairReport,
    expansion: PairReport,
    cold_start: ColdStartReport,
    tracing: TracingReport,
}

/// Median-of-rounds wall time per execution, in nanoseconds.
fn time_per_exec(run: &dyn Fn() -> usize, rounds: usize) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            black_box(run());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_scan(c: &mut Criterion) {
    let graph = build_graph();
    let space = space_for(&graph);
    let library = TransformationLibrary::new();
    let q = query();

    // --- Seed scoring: τ = 0.8 prunes ~3/4 of the candidates at the seed.
    let scalar = QueryService::build(
        &graph,
        &space,
        &library,
        config(ScanMode::ScalarReference, 0.8, 10),
    );
    let kernel = QueryService::build(&graph, &space, &library, config(ScanMode::Kernel, 0.8, 10));
    let scalar_prep = scalar.prepare(&q).expect("prepares");
    let kernel_prep = kernel.prepare(&q).expect("prepares");
    let reference = scalar.execute(&scalar_prep).expect("reference");
    let kernel_ref = kernel.execute(&kernel_prep).expect("kernel");
    assert!(!reference.matches.is_empty());
    assert_eq!(
        kernel_ref.matches, reference.matches,
        "kernel answers must stay bit-identical"
    );
    assert_eq!(kernel_ref.stats.tau_pruned, reference.stats.tau_pruned);

    let mut group = c.benchmark_group("scan_kernels");
    group.sample_size(10);
    group.bench_function("seed_scalar_reference", |b| {
        b.iter(|| scalar.execute(&scalar_prep).expect("answers").matches.len())
    });
    group.bench_function("seed_kernel", |b| {
        b.iter(|| kernel.execute(&kernel_prep).expect("answers").matches.len())
    });

    let seed_rounds = 40;
    let scalar_seed_ns = time_per_exec(
        &|| scalar.execute(&scalar_prep).expect("answers").matches.len(),
        seed_rounds,
    ) / SOURCES as f64;
    let kernel_seed_ns = time_per_exec(
        &|| kernel.execute(&kernel_prep).expect("answers").matches.len(),
        seed_rounds,
    ) / SOURCES as f64;

    // --- Expansion: τ = 0 and an unreachable k drain the whole space, so
    // every source pops and every adjacency edge is weighted; the kernel
    // seed prefilter is bypassed (τ = 0) and the measured difference is the
    // per-edge `ln` lookup.
    let scalar_drain = QueryService::build(
        &graph,
        &space,
        &library,
        config(ScanMode::ScalarReference, 0.0, 100_000),
    );
    let kernel_drain = QueryService::build(
        &graph,
        &space,
        &library,
        config(ScanMode::Kernel, 0.0, 100_000),
    );
    let scalar_drain_prep = scalar_drain.prepare(&q).expect("prepares");
    let kernel_drain_prep = kernel_drain.prepare(&q).expect("prepares");
    let drain_ref = scalar_drain.execute(&scalar_drain_prep).expect("drain");
    let drain_kernel = kernel_drain.execute(&kernel_drain_prep).expect("drain");
    assert_eq!(drain_kernel.matches, drain_ref.matches);
    assert_eq!(
        drain_kernel.stats.edges_examined,
        drain_ref.stats.edges_examined
    );
    let edges = drain_ref.stats.edges_examined;
    assert!(
        edges >= SOURCES * DEGREE,
        "drain must examine the hub fan-out"
    );

    group.bench_function("expand_scalar_reference", |b| {
        b.iter(|| {
            scalar_drain
                .execute(&scalar_drain_prep)
                .expect("answers")
                .stats
                .edges_examined
        })
    });
    group.bench_function("expand_kernel", |b| {
        b.iter(|| {
            kernel_drain
                .execute(&kernel_drain_prep)
                .expect("answers")
                .stats
                .edges_examined
        })
    });
    group.finish();

    let drain_rounds = 20;
    let scalar_edge_ns = time_per_exec(
        &|| {
            scalar_drain
                .execute(&scalar_drain_prep)
                .expect("answers")
                .stats
                .edges_examined
        },
        drain_rounds,
    ) / edges as f64;
    let kernel_edge_ns = time_per_exec(
        &|| {
            kernel_drain
                .execute(&kernel_drain_prep)
                .expect("answers")
                .stats
                .edges_examined
        },
        drain_rounds,
    ) / edges as f64;

    // --- Tracing overhead: the same seed workload with phase tracing off
    // (the default — the `kernel` service above) vs sampling every query
    // (`trace_sample_every = 1`). The off path adds one branch per phase
    // and must not regress; the on path pays the clock reads and the sink
    // push, bounded loosely because the point of sampling is that nobody
    // runs it at 1-in-1 in production.
    let traced = QueryService::build(&graph, &space, &library, {
        let mut cfg = config(ScanMode::Kernel, 0.8, 10);
        cfg.trace_sample_every = 1;
        cfg
    });
    let traced_prep = traced.prepare(&q).expect("prepares");
    let traced_ref = traced.execute(&traced_prep).expect("traced");
    assert_eq!(
        traced_ref.matches, reference.matches,
        "traced answers must stay bit-identical"
    );
    let off_exec_ns = time_per_exec(
        &|| kernel.execute(&kernel_prep).expect("answers").matches.len(),
        seed_rounds,
    );
    let on_exec_ns = time_per_exec(
        &|| traced.execute(&traced_prep).expect("answers").matches.len(),
        seed_rounds,
    );
    assert!(
        traced.traces().recorded() > 0,
        "1-in-1 sampling must record traces"
    );
    // Hard gate: a tracing-off execution costing more than 2x a fully
    // traced one means the "free when off" claim broke — the off path
    // started doing tracing work.
    assert!(
        off_exec_ns <= 2.0 * on_exec_ns,
        "tracing-off path ({off_exec_ns:.0} ns/exec) regressed past 2x the traced path \
         ({on_exec_ns:.0} ns/exec) — the untraced hot path must stay allocation- and clock-free"
    );
    if on_exec_ns > 1.5 * off_exec_ns {
        println!(
            "  WARNING: 1-in-1 tracing costs {:.2}x the untraced path on this run/host",
            on_exec_ns / off_exec_ns
        );
    }

    // --- Cold-start buffering: the streamed loader's peak transient buffer
    // vs the file size the old double-buffered loader held in memory.
    let dir = std::env::temp_dir().join(format!("semkg_scan_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("g.kgb");
    kgraph::io::binary::save(&graph, 0, &bin_path).unwrap();
    let file_bytes = std::fs::metadata(&bin_path).unwrap().len();
    let t0 = Instant::now();
    let reps = 10;
    let mut stats = kgraph::io::binary::LoadStats::default();
    for _ in 0..reps {
        let (g, _, s) = kgraph::io::binary::load_with_stats(&bin_path).unwrap();
        black_box(g.edge_count());
        stats = s;
    }
    let load_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    assert_eq!(stats.bytes_read, file_bytes);
    let _ = std::fs::remove_dir_all(&dir);

    let report = ScanReport {
        bench: "scan",
        sources: SOURCES,
        degree: DEGREE,
        seed_scoring: PairReport {
            unit: "ns_per_candidate",
            scalar_reference: scalar_seed_ns,
            kernel: kernel_seed_ns,
            speedup: scalar_seed_ns / kernel_seed_ns,
        },
        expansion: PairReport {
            unit: "ns_per_edge",
            scalar_reference: scalar_edge_ns,
            kernel: kernel_edge_ns,
            speedup: scalar_edge_ns / kernel_edge_ns,
        },
        cold_start: ColdStartReport {
            file_bytes,
            peak_buffer_bytes: stats.peak_buffer_bytes,
            buffering_ratio: file_bytes as f64 / stats.peak_buffer_bytes as f64,
            load_ms,
        },
        tracing: TracingReport {
            unit: "ns_per_exec",
            tracing_off: off_exec_ns,
            tracing_on: on_exec_ns,
            overhead_ratio: on_exec_ns / off_exec_ns,
        },
    };
    println!(
        "\nscan kernels ({SOURCES} φ candidates × degree {DEGREE}):\n  seed scoring   scalar \
         {scalar_seed_ns:>7.1} ns/cand | kernel {kernel_seed_ns:>7.1} ns/cand | {:.2}x\n  \
         expansion      scalar {scalar_edge_ns:>7.1} ns/edge | kernel {kernel_edge_ns:>7.1} \
         ns/edge | {:.2}x\n  cold start     file {file_bytes} B | peak buffer {} B ({:.1}x less \
         buffering) | {load_ms:.1} ms/load\n  tracing        off {off_exec_ns:>7.0} ns/exec | \
         1-in-1 {on_exec_ns:>7.0} ns/exec | {:.2}x overhead",
        report.seed_scoring.speedup,
        report.expansion.speedup,
        stats.peak_buffer_bytes,
        report.cold_start.buffering_ratio,
        report.tracing.overhead_ratio,
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    // Cross-run check against the committed numbers (different host,
    // different load — a warning, never a gate; the in-process 2x assert
    // above is the gate).
    if let Ok(prev) = std::fs::read_to_string(out) {
        let prev_kernel_ns = serde_json::parse_value(&prev).ok().and_then(|v| {
            match v.get_field("seed_scoring")?.get_field("kernel")? {
                serde::Value::Float(f) => Some(*f),
                serde::Value::UInt(u) => Some(*u as f64),
                serde::Value::Int(i) => Some(*i as f64),
                _ => None,
            }
        });
        if let Some(prev_ns) = prev_kernel_ns {
            if kernel_seed_ns > 1.5 * prev_ns {
                println!(
                    "  WARNING: seed kernel {kernel_seed_ns:.1} ns/cand vs {prev_ns:.1} in the \
                     committed BENCH_scan.json (>1.5x — check for a tracing-off regression)"
                );
            }
        }
    }
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(out, json + "\n").expect("BENCH_scan.json written");
    println!("wrote {out}");
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
