//! Typed triples and their text representation.
//!
//! The on-disk format is a 5-column TSV:
//! `head \t head_type \t predicate \t tail \t tail_type`
//! — a lightweight stand-in for the N-Triples dumps the paper loads from
//! DBpedia / Freebase / YAGO2, keeping the type annotations the engine needs.

use crate::error::KgError;
use serde::{Deserialize, Serialize};

/// A fully-labelled knowledge-graph triple `<head, predicate, tail>` with
/// entity types attached (paper Definition 1 assumes every node carries a
/// type and a unique name).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Head entity name.
    pub head: String,
    /// Head entity type.
    pub head_type: String,
    /// Predicate label.
    pub predicate: String,
    /// Tail entity name.
    pub tail: String,
    /// Tail entity type.
    pub tail_type: String,
}

impl Triple {
    /// Builds a triple from borrowed parts.
    pub fn new(head: &str, head_type: &str, predicate: &str, tail: &str, tail_type: &str) -> Self {
        Self {
            head: head.into(),
            head_type: head_type.into(),
            predicate: predicate.into(),
            tail: tail.into(),
            tail_type: tail_type.into(),
        }
    }

    /// Serializes to one TSV line (no trailing newline).
    pub fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}",
            self.head, self.head_type, self.predicate, self.tail, self.tail_type
        )
    }

    /// Parses one TSV line; `line_no` is used for error reporting only.
    pub fn from_tsv(line: &str, line_no: usize) -> Result<Self, KgError> {
        let mut fields = line.split('\t');
        let mut next = |what: &str| {
            fields.next().ok_or_else(|| KgError::ParseTriple {
                line: line_no,
                reason: format!("missing field `{what}`"),
            })
        };
        let head = next("head")?;
        let head_type = next("head_type")?;
        let predicate = next("predicate")?;
        let tail = next("tail")?;
        let tail_type = next("tail_type")?;
        if fields.next().is_some() {
            return Err(KgError::ParseTriple {
                line: line_no,
                reason: "too many fields (expected 5)".into(),
            });
        }
        if head.is_empty() || predicate.is_empty() || tail.is_empty() {
            return Err(KgError::ParseTriple {
                line: line_no,
                reason: "empty head/predicate/tail".into(),
            });
        }
        Ok(Self::new(head, head_type, predicate, tail, tail_type))
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}, {}, {}>", self.head, self.predicate, self.tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tsv_roundtrip() {
        let t = Triple::new("BMW_320", "Automobile", "assembly", "Germany", "Country");
        let line = t.to_tsv();
        let back = Triple::from_tsv(&line, 1).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = Triple::new("Germany", "Country", "product", "BMW_X6", "Automobile");
        assert_eq!(t.to_string(), "<Germany, product, BMW_X6>");
    }

    #[test]
    fn rejects_short_lines() {
        let err = Triple::from_tsv("a\tb\tc", 3).unwrap_err();
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn rejects_long_lines() {
        assert!(Triple::from_tsv("a\tT\tp\tb\tT\textra", 1).is_err());
    }

    #[test]
    fn rejects_empty_core_fields() {
        assert!(Triple::from_tsv("\tT\tp\tb\tT", 1).is_err());
        assert!(Triple::from_tsv("a\tT\t\tb\tT", 1).is_err());
        assert!(Triple::from_tsv("a\tT\tp\t\tT", 1).is_err());
        // Empty types are tolerated (typing pass can fill them in).
        assert!(Triple::from_tsv("a\t\tp\tb\t", 1).is_ok());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            head in "[A-Za-z0-9_]{1,12}",
            ht in "[A-Za-z0-9_]{0,8}",
            pred in "[a-z]{1,10}",
            tail in "[A-Za-z0-9_]{1,12}",
            tt in "[A-Za-z0-9_]{0,8}",
        ) {
            let t = Triple::new(&head, &ht, &pred, &tail, &tt);
            prop_assert_eq!(Triple::from_tsv(&t.to_tsv(), 0).unwrap(), t);
        }
    }
}
