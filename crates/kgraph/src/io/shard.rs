//! Per-shard on-disk layout: sharded snapshots, sharded write-ahead logs,
//! and the epoch manifest coordinating them.
//!
//! A sharded deployment directory holds one *manifest* (the single epoch
//! coordinator), one *meta* file (the global vocabulary + node tables), one
//! edge-slice *snapshot per shard*, and one *WAL per shard*:
//!
//! ```text
//! dir/
//!   manifest.kgm            epoch coordinator: shard count + current epoch
//!   meta-<epoch>.kgb        interners, node arrays, edge count
//!   shard-0000-<epoch>.kgb  edge slice owned by shard 0 (global edge ids)
//!   …
//!   wal-0000.log            shard 0's write-ahead log (seq-framed records)
//!   …
//! ```
//!
//! ## Checkpoint atomicity (the epoch coordinator)
//!
//! [`save_sharded`] writes every `meta-E`/`shard-*-E` file for the new
//! epoch `E` via tmp + rename, fsyncs the directory, and only then flips
//! `manifest.kgm` (itself tmp + rename + dir fsync). The manifest is the
//! single commit point: a crash anywhere before the flip leaves the old
//! epoch's file set intact and referenced; stale files from either epoch
//! are garbage-collected on the next save/open. Readers therefore always
//! observe **all shards at one consistent epoch**, never a torn mix.
//!
//! ## Sharded WAL and recovery
//!
//! Mutations are routed to the WAL of the shard owning the *source-node
//! label* ([`crate::Partitioner::shard_of_label`] — the same hash that
//! places the edge's CSR row). Because node and edge ids are assigned by
//! *global arrival order*, every record carries a monotonically increasing
//! sequence number; recovery merges the per-shard logs back into arrival
//! order by `seq`, which reproduces the exact id assignment (and therefore
//! bit-identical answers) of the pre-crash store.
//!
//! Epoch markers (`Commit`/`Compact`) are written to **every** shard log
//! under one shared `seq` and fsynced everywhere before the epoch
//! publishes. Recovery's coordinated epoch is the *minimum* over shards of
//! each log's last marker: an epoch whose marker reached only some shards
//! was never published (the writer fsyncs all logs before publishing), so
//! it rolls back everywhere — all shards restore to one consistent epoch.

use super::codec::{checksum64, put_u32, put_u64, Cursor};
use crate::error::{KgError, Result};
use crate::graph::{EdgeRecord, KnowledgeGraph};
use crate::ids::{EdgeId, NodeId, PredicateId, TypeId};
use crate::io::wal::WalOp;
use crate::shard::Partitioner;
use rustc_hash::FxHashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Manifest file name (the epoch coordinator).
pub const MANIFEST_FILE: &str = "manifest.kgm";
/// Manifest magic.
pub const MANIFEST_MAGIC: &[u8; 8] = b"KGSMANI1";
/// Meta-file magic (vocabulary + node tables).
pub const META_MAGIC: &[u8; 8] = b"KGSMETA1";
/// Per-shard snapshot magic (edge slices).
pub const SHARD_MAGIC: &[u8; 8] = b"KGSSHRD1";
/// Per-shard WAL magic (seq-framed records).
pub const WAL_MAGIC: &[u8; 8] = b"KGSWAL01";
/// Current format version shared by all four files.
pub const VERSION: u32 = 1;

/// Path of the manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Path of the meta file for `epoch`.
pub fn meta_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("meta-{epoch}.kgb"))
}

/// Path of `shard`'s snapshot slice for `epoch`.
pub fn shard_snapshot_path(dir: &Path, shard: usize, epoch: u64) -> PathBuf {
    dir.join(format!("shard-{shard:04}-{epoch}.kgb"))
}

/// Path of `shard`'s write-ahead log (epoch-independent; truncated at
/// checkpoints).
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal-{shard:04}.log"))
}

/// What the manifest records: the one epoch every shard file must match,
/// and (for rebalanced layouts) the explicit bucket → shard assignment that
/// routed the referenced file set. Readers always observe the assignment
/// and the epoch together — the manifest flip is the single commit point
/// for both, so a recovering process can never pair a new assignment with
/// an old file set or vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Epoch of the referenced snapshot file set.
    pub epoch: u64,
    /// Number of shards in the layout.
    pub shards: u32,
    /// Explicit bucket → shard table of a rebalanced layout; `None` means
    /// hash routing (and encodes byte-identically to the pre-rebalance
    /// manifest format).
    pub assignment: Option<Vec<u8>>,
}

/// Writes a small checksummed blob atomically: tmp + fsync + rename, then
/// an fsync of the parent directory so the rename is durable.
fn write_blob_atomic(path: &Path, magic: &[u8; 8], body: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let wrap = |detail: String| KgError::snapshot(path, "sharded", detail);
    let mut out = Vec::with_capacity(body.len() + 32);
    out.extend_from_slice(magic);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(body);
    put_u64(&mut out, checksum64(body));
    let file = File::create(&tmp).map_err(|e| wrap(e.to_string()))?;
    let mut w = BufWriter::new(file);
    w.write_all(&out).map_err(|e| wrap(e.to_string()))?;
    w.into_inner()
        .map_err(|e| wrap(e.to_string()))?
        .sync_all()
        .map_err(|e| wrap(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| wrap(e.to_string()))?;
    sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
    Ok(())
}

fn sync_dir(dir: &Path) -> Result<()> {
    if dir.as_os_str().is_empty() {
        return Ok(());
    }
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| KgError::snapshot(dir, "sharded", format!("directory fsync: {e}")))
}

/// Reads a blob written by [`write_blob_atomic`], verifying magic, version
/// and checksum; returns the body.
fn read_blob(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>> {
    let wrap = |detail: String| KgError::snapshot(path, "sharded", detail);
    let buf = std::fs::read(path).map_err(|e| wrap(e.to_string()))?;
    let mut c = Cursor::new(&buf);
    let got = c.take(8, "magic").map_err(wrap)?;
    if got != magic {
        return Err(wrap(format!(
            "bad magic {got:02x?} (expected {magic:02x?})"
        )));
    }
    let version = c.u32("format version").map_err(wrap)?;
    if version != VERSION {
        return Err(wrap(format!("unsupported format version {version}")));
    }
    let len = c.u64("body length").map_err(wrap)? as usize;
    let body = c.take(len, "body").map_err(wrap)?;
    let stored = c.u64("checksum").map_err(wrap)?;
    let actual = checksum64(body);
    if stored != actual {
        return Err(wrap(format!(
            "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    Ok(body.to_vec())
}

/// Atomically points the manifest at `epoch` (the checkpoint commit point).
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<()> {
    let mut body = Vec::with_capacity(12);
    put_u64(&mut body, manifest.epoch);
    put_u32(&mut body, manifest.shards);
    if let Some(table) = &manifest.assignment {
        put_u32(&mut body, table.len() as u32);
        body.extend_from_slice(table);
    }
    write_blob_atomic(&manifest_path(dir), MANIFEST_MAGIC, &body)
}

/// Reads the epoch coordinator.
pub fn read_manifest(dir: &Path) -> Result<Manifest> {
    let path = manifest_path(dir);
    let body = read_blob(&path, MANIFEST_MAGIC)?;
    let wrap = |detail: String| KgError::snapshot(&path, "sharded", detail);
    let mut c = Cursor::new(&body);
    let epoch = c.u64("epoch").map_err(wrap)?;
    let shards = c.u32("shard count").map_err(wrap)?;
    // Hash-routed manifests end here; rebalanced ones append the table.
    let assignment = if c.remaining() == 0 {
        None
    } else {
        let len = c.u32("assignment length").map_err(wrap)? as usize;
        let table = c.take(len, "bucket assignment").map_err(wrap)?.to_vec();
        Some(table)
    };
    if c.remaining() != 0 {
        return Err(wrap(format!("{} trailing bytes", c.remaining())));
    }
    Ok(Manifest {
        epoch,
        shards,
        assignment,
    })
}

/// Saves `graph` as a per-shard snapshot set at `epoch` and flips the
/// manifest to it (see module docs for the atomicity argument). Stale files
/// from other epochs are garbage-collected afterwards, best-effort.
pub fn save_sharded(
    graph: &KnowledgeGraph,
    partitioner: &Partitioner,
    epoch: u64,
    dir: impl AsRef<Path>,
) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)
        .map_err(|e| KgError::snapshot(dir, "sharded", format!("create dir: {e}")))?;
    let k = partitioner.shards();

    // Meta: global vocabulary + node tables + the edge count the shard
    // slices must tile exactly.
    let mut body = Vec::new();
    put_u64(&mut body, epoch);
    put_u32(&mut body, k as u32);
    for interner in [&graph.names, &graph.types, &graph.predicates] {
        body.extend_from_slice(&super::binary::encode_interner(interner));
    }
    super::codec::put_u32_array(&mut body, graph.node_name.iter().copied());
    super::codec::put_u32_array(&mut body, graph.node_type.iter().map(|t| t.0));
    put_u64(&mut body, graph.duplicate_edges_dropped as u64);
    put_u32(&mut body, graph.edges.len() as u32);
    write_blob_atomic(&meta_path(dir, epoch), META_MAGIC, &body)?;

    // Edge slices, partitioned by the source node's label hash.
    let mut slices: Vec<Vec<(u32, EdgeRecord)>> = vec![Vec::new(); k];
    for (i, rec) in graph.edges.iter().enumerate() {
        let shard = partitioner.shard_of_label(graph.node_name(rec.src));
        slices[shard].push((i as u32, *rec));
    }
    for (shard, slice) in slices.iter().enumerate() {
        let mut body = Vec::with_capacity(20 + slice.len() * 16);
        put_u64(&mut body, epoch);
        put_u32(&mut body, shard as u32);
        put_u32(&mut body, k as u32);
        put_u32(&mut body, slice.len() as u32);
        for (id, rec) in slice {
            put_u32(&mut body, *id);
            put_u32(&mut body, rec.src.0);
            put_u32(&mut body, rec.dst.0);
            put_u32(&mut body, rec.predicate.0);
        }
        write_blob_atomic(&shard_snapshot_path(dir, shard, epoch), SHARD_MAGIC, &body)?;
    }

    // The commit point: all files for `epoch` are durable, flip the
    // coordinator. A rebalanced partitioner's assignment travels with the
    // same flip, so the file set and its routing publish together.
    write_manifest(
        dir,
        &Manifest {
            epoch,
            shards: k as u32,
            assignment: partitioner.assignment().map(<[u8]>::to_vec),
        },
    )?;

    // GC snapshot files of other epochs (the manifest no longer references
    // them). Best-effort: a leftover file is re-collected next time.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = parse_epoch_suffix(name, "meta-")
                .or_else(|| {
                    name.strip_prefix("shard-")
                        .and_then(|rest| rest.split_once('-'))
                        .and_then(|(_, tail)| parse_epoch_suffix(tail, ""))
                })
                .is_some_and(|e| e != epoch);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}

/// Parses `<prefix><epoch>.kgb` into the epoch.
fn parse_epoch_suffix(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(".kgb")?
        .parse()
        .ok()
}

/// Loads the snapshot set the manifest references, recomposing the exact
/// monolithic [`KnowledgeGraph`] that was saved (node ids, edge ids,
/// adjacency order and all — the CSR is rebuilt with the same counting
/// sort the [`crate::GraphBuilder`] uses). Returns the graph, the
/// partitioner of the layout, and the manifest epoch.
pub fn load_sharded(dir: impl AsRef<Path>) -> Result<(KnowledgeGraph, Partitioner, u64)> {
    let dir = dir.as_ref();
    let manifest = read_manifest(dir)?;
    let partitioner = match manifest.assignment.clone() {
        Some(table) => Partitioner::with_assignment(manifest.shards as usize, table)?,
        None => Partitioner::new(manifest.shards as usize)?,
    };
    let epoch = manifest.epoch;

    let meta_file = meta_path(dir, epoch);
    let wrap_meta = |detail: String| KgError::snapshot(&meta_file, "sharded", detail);
    let body = read_blob(&meta_file, META_MAGIC)?;
    let mut c = Cursor::new(&body);
    let meta_epoch = c.u64("epoch").map_err(wrap_meta)?;
    let meta_shards = c.u32("shard count").map_err(wrap_meta)?;
    if meta_epoch != epoch || meta_shards != manifest.shards {
        return Err(KgError::Shard(format!(
            "meta file disagrees with manifest: epoch {meta_epoch} vs {epoch}, \
             shards {meta_shards} vs {}",
            manifest.shards
        )));
    }
    // The interner payloads are length-delimited internally; re-slice them
    // through the cursor by decoding in place.
    let mut decode_interner_inline = |what: &str| -> Result<crate::interner::Interner> {
        let n = c.u32(what).map_err(wrap_meta)? as usize;
        let mut strings = Vec::with_capacity(n.min(body.len()));
        for _ in 0..n {
            strings.push(Box::<str>::from(c.str(what).map_err(wrap_meta)?));
        }
        crate::interner::Interner::from_strings(strings)
            .ok_or_else(|| wrap_meta(format!("{what}: duplicate interned string")))
    };
    let names = decode_interner_inline("names")?;
    let types = decode_interner_inline("types")?;
    let predicates = decode_interner_inline("predicates")?;
    let node_name = c.u32_array("node names").map_err(wrap_meta)?;
    let node_type: Vec<TypeId> = c
        .u32_array("node types")
        .map_err(wrap_meta)?
        .into_iter()
        .map(TypeId::new)
        .collect();
    let duplicate_edges_dropped = c.u64("duplicate edge count").map_err(wrap_meta)? as usize;
    let m = c.u32("edge count").map_err(wrap_meta)? as usize;
    if c.remaining() != 0 {
        return Err(wrap_meta(format!("{} trailing bytes", c.remaining())));
    }
    let n = node_name.len();
    if node_type.len() != n {
        return Err(wrap_meta(format!(
            "node arrays disagree: {n} names vs {} types",
            node_type.len()
        )));
    }
    if node_name.iter().any(|&id| id as usize >= names.len()) {
        return Err(wrap_meta("node name id out of interner range".into()));
    }
    if node_type.iter().any(|t| t.index() >= types.len()) {
        return Err(wrap_meta("node type id out of interner range".into()));
    }

    // Collect the shard slices into the dense global edge array.
    let mut edges: Vec<Option<EdgeRecord>> = vec![None; m];
    for shard in 0..partitioner.shards() {
        let path = shard_snapshot_path(dir, shard, epoch);
        let wrap = |detail: String| KgError::snapshot(&path, "sharded", detail);
        let body = read_blob(&path, SHARD_MAGIC)?;
        let mut c = Cursor::new(&body);
        let file_epoch = c.u64("epoch").map_err(wrap)?;
        let file_shard = c.u32("shard index").map_err(wrap)?;
        let file_shards = c.u32("shard count").map_err(wrap)?;
        if file_epoch != epoch || file_shard as usize != shard || file_shards != manifest.shards {
            return Err(KgError::Shard(format!(
                "shard file {} disagrees with manifest (epoch {file_epoch}/{epoch}, \
                 shard {file_shard}/{shard}, shards {file_shards}/{})",
                path.display(),
                manifest.shards
            )));
        }
        let count = c.u32("entry count").map_err(wrap)? as usize;
        // checked_mul: a corrupt count must not wrap usize into a small
        // in-bounds read on 32-bit targets.
        let byte_len = count.checked_mul(16).ok_or_else(|| {
            wrap(format!(
                "corrupt entry count {count}: byte length overflows"
            ))
        })?;
        let raw = c.take(byte_len, "edge entries").map_err(wrap)?;
        if c.remaining() != 0 {
            return Err(wrap(format!("{} trailing bytes", c.remaining())));
        }
        for entry in raw.chunks_exact(16) {
            let u32_at = |o: usize| u32::from_le_bytes(entry[o..o + 4].try_into().unwrap()); // lint-ok(panic-freedom): chunks_exact(16) yields exactly 16-byte entries; o+4 <= 16 at every call
            let id = u32_at(0) as usize;
            let rec = EdgeRecord {
                src: NodeId::new(u32_at(4)),
                dst: NodeId::new(u32_at(8)),
                predicate: PredicateId::new(u32_at(12)),
            };
            if id >= m {
                return Err(wrap(format!("edge id {id} out of range ({m} edges)")));
            }
            if rec.src.index() >= n || rec.dst.index() >= n {
                return Err(wrap(format!("edge endpoint out of range ({n} nodes)")));
            }
            if rec.predicate.index() >= predicates.len() {
                return Err(wrap("edge predicate id out of interner range".into()));
            }
            // Ownership check: a slice holding another shard's edge means
            // the files come from mismatched layouts.
            let owner = partitioner.shard_of_label(names.resolve(node_name[rec.src.index()]));
            if owner != shard {
                return Err(KgError::Shard(format!(
                    "edge {id} in shard {shard}'s slice is owned by shard {owner} — \
                     mixed layouts in {}",
                    dir.display()
                )));
            }
            if edges[id].replace(rec).is_some() {
                return Err(wrap(format!("edge id {id} appears in two slices")));
            }
        }
    }
    let edges: Vec<EdgeRecord> = edges
        .into_iter()
        .enumerate()
        .map(|(i, e)| {
            e.ok_or_else(|| KgError::Shard(format!("edge id {i} missing from every slice")))
        })
        .collect::<Result<_>>()?;

    // Rebuild the CSR with the builder's counting sort (deterministic, so
    // adjacency order is bit-identical to the saved graph) and the derived
    // lookup tables.
    let mut out_offsets = vec![0u32; n + 1];
    let mut in_offsets = vec![0u32; n + 1];
    for e in &edges {
        out_offsets[e.src.index() + 1] += 1;
        in_offsets[e.dst.index() + 1] += 1;
    }
    for i in 0..n {
        out_offsets[i + 1] += out_offsets[i];
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut out_edges = vec![EdgeId::new(0); m];
    let mut in_edges = vec![EdgeId::new(0); m];
    let mut out_cursor = out_offsets.clone();
    let mut in_cursor = in_offsets.clone();
    for (idx, e) in edges.iter().enumerate() {
        let id = EdgeId::new(idx as u32);
        let oc = &mut out_cursor[e.src.index()];
        out_edges[*oc as usize] = id;
        *oc += 1;
        let ic = &mut in_cursor[e.dst.index()];
        in_edges[*ic as usize] = id;
        *ic += 1;
    }
    let name_to_node: FxHashMap<u32, NodeId> = node_name
        .iter()
        .enumerate()
        .map(|(i, &name)| (name, NodeId::new(i as u32)))
        .collect();
    let mut nodes_by_type: Vec<Vec<NodeId>> = vec![Vec::new(); types.len()];
    for (idx, ty) in node_type.iter().enumerate() {
        nodes_by_type[ty.index()].push(NodeId::new(idx as u32));
    }

    Ok((
        KnowledgeGraph {
            names,
            types,
            predicates,
            node_name,
            node_type,
            name_to_node,
            nodes_by_type,
            edges,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            duplicate_edges_dropped,
        },
        partitioner,
        epoch,
    ))
}

// ---------------------------------------------------------------------------
// Sharded write-ahead log
// ---------------------------------------------------------------------------

/// Appends seq-framed records to one log per shard (see module docs).
#[derive(Debug)]
pub struct ShardedWalWriter {
    dir: PathBuf,
    partitioner: Partitioner,
    files: Vec<ShardLog>,
    next_seq: u64,
}

#[derive(Debug)]
struct ShardLog {
    file: BufWriter<File>,
    path: PathBuf,
}

impl ShardLog {
    fn append_frame(&mut self, seq: u64, op: &WalOp) -> Result<()> {
        let mut body = Vec::with_capacity(72);
        put_u64(&mut body, seq);
        op.encode(&mut body);
        let mut frame = Vec::with_capacity(body.len() + 12);
        put_u32(&mut frame, body.len() as u32);
        frame.extend_from_slice(&body);
        put_u64(&mut frame, checksum64(&body));
        self.file
            .write_all(&frame)
            .map_err(|e| KgError::wal(&self.path, e))
    }

    fn sync(&mut self) -> Result<()> {
        self.file.flush().map_err(|e| KgError::wal(&self.path, e))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| KgError::wal(&self.path, e))
    }
}

impl ShardedWalWriter {
    /// Creates (or truncates) one fresh log per shard, each with its magic
    /// fsynced (mirroring [`super::wal::WalWriter::create`]).
    pub fn create(dir: impl AsRef<Path>, partitioner: Partitioner) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| KgError::wal(&dir, format!("create dir: {e}")))?;
        let files = (0..partitioner.shards())
            .map(|s| {
                let path = wal_path(&dir, s);
                let file = File::create(&path).map_err(|e| KgError::wal(&path, e))?;
                let mut log = ShardLog {
                    file: BufWriter::new(file),
                    path,
                };
                log.file
                    .write_all(WAL_MAGIC)
                    .and_then(|()| log.file.flush())
                    .and_then(|()| log.file.get_ref().sync_data())
                    .map_err(|e| KgError::wal(&log.path, e))?;
                Ok(log)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            dir,
            partitioner,
            files,
            next_seq: 0,
        })
    }

    /// Reopens the logs for appending at each shard's committed prefix (as
    /// reported by [`read_sharded_wal`]), truncating torn tails and
    /// uncommitted records first. A length of 0 (missing file, or one caught
    /// inside `create`'s truncate-then-write window) recreates that log.
    pub fn open_append(
        dir: impl AsRef<Path>,
        partitioner: Partitioner,
        committed_len: &[u64],
        next_seq: u64,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        assert_eq!(committed_len.len(), partitioner.shards());
        let files = (0..partitioner.shards())
            .map(|s| {
                let path = wal_path(&dir, s);
                if committed_len[s] == 0 {
                    let file = File::create(&path).map_err(|e| KgError::wal(&path, e))?;
                    let mut log = ShardLog {
                        file: BufWriter::new(file),
                        path,
                    };
                    log.file
                        .write_all(WAL_MAGIC)
                        .and_then(|()| log.file.flush())
                        .and_then(|()| log.file.get_ref().sync_data())
                        .map_err(|e| KgError::wal(&log.path, e))?;
                    return Ok(log);
                }
                let mut file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| KgError::wal(&path, e))?;
                file.set_len(committed_len[s])
                    .map_err(|e| KgError::wal(&path, e))?;
                file.seek(SeekFrom::End(0))
                    .map_err(|e| KgError::wal(&path, e))?;
                Ok(ShardLog {
                    file: BufWriter::new(file),
                    path,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            dir,
            partitioner,
            files,
            next_seq,
        })
    }

    /// The deployment directory the logs live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The layout's partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner.clone()
    }

    /// Appends one record. Inserts/deletes go to the source-label shard
    /// under a fresh sequence number; epoch markers go to *every* shard
    /// under one shared sequence number (buffered — [`Self::sync`] makes
    /// them durable everywhere, which the store does before publishing).
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        match op {
            WalOp::Insert { head, .. } => {
                let shard = self.partitioner.shard_of_label(&head.0);
                self.files[shard].append_frame(seq, op)
            }
            WalOp::Delete { head, .. } => {
                let shard = self.partitioner.shard_of_label(head);
                self.files[shard].append_frame(seq, op)
            }
            WalOp::Commit { .. } | WalOp::Compact { .. } => {
                for log in &mut self.files {
                    log.append_frame(seq, op)?;
                }
                Ok(())
            }
        }
    }

    /// Flushes and fsyncs every shard log.
    pub fn sync(&mut self) -> Result<()> {
        for log in &mut self.files {
            log.sync()?;
        }
        Ok(())
    }
}

/// Result of scanning a sharded WAL set (the merged, coordinated view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedReplay {
    /// The committed records merged back into arrival (`seq`) order, ending
    /// at the coordinated epoch's marker. Duplicate marker copies (one per
    /// shard) are collapsed to one.
    pub ops: Vec<WalOp>,
    /// Per-shard byte length of the committed prefix — the truncation
    /// points [`ShardedWalWriter::open_append`] expects.
    pub committed_len: Vec<u64>,
    /// Non-marker records dropped beyond the coordinated prefix (staged but
    /// never published, or part of an epoch whose marker missed a shard).
    pub discarded_ops: usize,
    /// True when any shard log ended in a torn record.
    pub torn: bool,
    /// The next free sequence number after the committed prefix.
    pub next_seq: u64,
}

/// Scans all shard logs under `dir`, tolerating torn tails per shard, and
/// merges the committed prefixes by sequence number (see module docs for
/// the coordinated-epoch rule).
///
/// Missing files read as empty **only while every shard log is empty** (a
/// deployment being created — the writer lays all logs out before the
/// first record). Once any log holds records, a *missing* sibling is
/// unambiguous corruption (every record fan-in happens after all logs
/// exist) and recovery fails loudly instead of silently rolling every
/// epoch since the last checkpoint back to the snapshot.
pub fn read_sharded_wal(dir: impl AsRef<Path>, shards: usize) -> Result<ShardedReplay> {
    let dir = dir.as_ref();
    struct Rec {
        seq: u64,
        op: WalOp,
        end: u64,
    }
    let mut per_shard: Vec<Vec<Rec>> = Vec::with_capacity(shards);
    let mut missing: Vec<usize> = Vec::new();
    let mut torn = false;
    for s in 0..shards {
        let path = wal_path(dir, s);
        let mut records = Vec::new();
        if !path.exists() {
            missing.push(s);
        }
        if path.exists() {
            let buf = std::fs::read(&path).map_err(|e| KgError::wal(&path, e))?;
            if buf.len() < WAL_MAGIC.len() {
                if !WAL_MAGIC.starts_with(&buf) {
                    return Err(KgError::wal(&path, "bad magic (not a sharded WAL file)"));
                }
                torn = true;
            } else if &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(KgError::wal(&path, "bad magic (not a sharded WAL file)"));
            } else {
                let mut pos = WAL_MAGIC.len();
                while pos < buf.len() {
                    let frame = (|| {
                        if buf.len() - pos < 4 {
                            return None;
                        }
                        let body_len =
                            u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize; // lint-ok(panic-freedom): the length guard above ensures the slice is in bounds and exactly sized
                        let total = 4 + body_len + 8;
                        if buf.len() - pos < total {
                            return None;
                        }
                        let body = &buf[pos + 4..pos + 4 + body_len];
                        let stored = u64::from_le_bytes(
                            buf[pos + 4 + body_len..pos + total].try_into().unwrap(), // lint-ok(panic-freedom): the length guard above ensures the slice is in bounds and exactly sized
                        );
                        if checksum64(body) != stored || body.len() < 8 {
                            return None;
                        }
                        let seq = u64::from_le_bytes(body[..8].try_into().unwrap()); // lint-ok(panic-freedom): body.len() >= 8 was checked on the previous line
                        Some(WalOp::decode(&body[8..]).map(|op| (seq, op, total)))
                    })();
                    match frame {
                        None => {
                            torn = true;
                            break;
                        }
                        Some(Err(detail)) => {
                            return Err(KgError::wal(
                                &path,
                                format!("corrupt record at byte {pos}: {detail}"),
                            ));
                        }
                        Some(Ok((seq, op, total))) => {
                            pos += total;
                            records.push(Rec {
                                seq,
                                op,
                                end: pos as u64,
                            });
                        }
                    }
                }
            }
        }
        per_shard.push(records);
    }
    if !missing.is_empty() && per_shard.iter().any(|r| !r.is_empty()) {
        return Err(KgError::wal(
            wal_path(dir, missing[0]),
            format!(
                "shard log(s) {missing:?} missing while sibling logs hold records — \
                 recovering would silently roll back committed epochs; restore the file \
                 or the last checkpoint"
            ),
        ));
    }

    // Coordinated epoch: the minimum over shards of each log's last marker
    // (a shard whose log holds no marker pins the whole set to "nothing
    // committed", which is exactly right — markers reach every shard before
    // an epoch publishes).
    let coordinated = per_shard
        .iter()
        .map(|records| {
            records
                .iter()
                .filter_map(|r| match r.op {
                    WalOp::Commit { epoch } | WalOp::Compact { epoch } => Some(epoch),
                    _ => None,
                })
                .max()
        })
        .min()
        .flatten();

    // Per-shard committed cut: just past the last marker with epoch ≤ C.
    let mut committed_len = Vec::with_capacity(shards);
    let mut merged: Vec<(u64, WalOp)> = Vec::new();
    let mut discarded_ops = 0usize;
    for records in &per_shard {
        let cut = match coordinated {
            None => 0usize,
            Some(c) => records
                .iter()
                .rposition(|r| match r.op {
                    WalOp::Commit { epoch } | WalOp::Compact { epoch } => epoch <= c,
                    _ => false,
                })
                .map(|i| i + 1)
                .unwrap_or(0),
        };
        committed_len.push(if cut == 0 {
            // Nothing committed in this shard: recreate from the magic.
            if records.is_empty() {
                0
            } else {
                WAL_MAGIC.len() as u64
            }
        } else {
            records[cut - 1].end
        });
        discarded_ops += records[cut..].iter().filter(|r| !r.op.is_marker()).count();
        for r in &records[..cut] {
            merged.push((r.seq, r.op.clone()));
        }
    }
    merged.sort_by_key(|(seq, op)| (*seq, !op.is_marker()));
    let next_seq = merged.last().map(|(seq, _)| seq + 1).unwrap_or(0);

    // Collapse the per-shard marker copies (same seq, same marker) and
    // verify no two distinct records ever shared a sequence number.
    let mut ops = Vec::with_capacity(merged.len());
    let mut last: Option<(u64, WalOp)> = None;
    for (seq, op) in merged {
        if let Some((prev_seq, prev_op)) = &last {
            if *prev_seq == seq {
                if *prev_op == op && op.is_marker() {
                    continue; // the same marker, from another shard's log
                }
                return Err(KgError::wal(
                    dir,
                    format!("two distinct records share sequence number {seq}"),
                ));
            }
        }
        last = Some((seq, op.clone()));
        ops.push(op);
    }

    // Empty logs (fresh deployment): committed_len 0 signals recreation for
    // files that never existed, but an existing magic-only file keeps its
    // magic.
    Ok(ShardedReplay {
        ops,
        committed_len,
        discarded_ops,
        torn,
        next_seq,
    })
}

#[cfg(test)]
mod tests {
    use super::super::test_dir::TestDir;
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let audi = b.add_node("Audi_TT", "Automobile");
        let lamando = b.add_node("Lamando", "Automobile");
        let de = b.add_node("Germany", "Country");
        let vw = b.add_node("Volkswagen", "Company");
        b.add_node("Isolated", "Company");
        b.add_edge(audi, de, "assembly");
        b.add_edge(lamando, de, "assembly");
        b.add_edge(vw, audi, "product");
        b.add_edge(audi, de, "assembly"); // duplicate, dropped
        b.finish()
    }

    fn insert(h: &str, p: &str, t: &str) -> WalOp {
        WalOp::Insert {
            head: (h.into(), "T".into()),
            predicate: p.into(),
            tail: (t.into(), "T".into()),
        }
    }

    #[test]
    fn sharded_snapshot_roundtrip_is_exact() {
        let dir = TestDir::new("shard_snap");
        let g = sample();
        let p = Partitioner::new(4).unwrap();
        save_sharded(&g, &p, 7, dir.path("")).unwrap();
        let (back, p2, epoch) = load_sharded(dir.path("")).unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(p2, p);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.duplicate_edges_dropped(), g.duplicate_edges_dropped());
        for node in g.nodes() {
            assert_eq!(back.node_name(node), g.node_name(node));
            assert_eq!(back.node_type(node), g.node_type(node));
            assert_eq!(
                back.neighbors(node).collect::<Vec<_>>(),
                g.neighbors(node).collect::<Vec<_>>(),
                "adjacency diverged at {node}"
            );
        }
        for (id, rec) in g.edges() {
            assert_eq!(back.edge(id), rec);
        }
    }

    #[test]
    fn manifest_flip_garbage_collects_old_epochs() {
        let dir = TestDir::new("shard_gc");
        let g = sample();
        let p = Partitioner::new(2).unwrap();
        save_sharded(&g, &p, 1, dir.path("")).unwrap();
        assert!(meta_path(&dir.path(""), 1).exists());
        save_sharded(&g, &p, 2, dir.path("")).unwrap();
        assert!(!meta_path(&dir.path(""), 1).exists(), "epoch 1 GC'd");
        assert!(!shard_snapshot_path(&dir.path(""), 0, 1).exists());
        assert!(meta_path(&dir.path(""), 2).exists());
        let (_, _, epoch) = load_sharded(dir.path("")).unwrap();
        assert_eq!(epoch, 2);
    }

    #[test]
    fn mixed_layout_is_rejected() {
        let dir = TestDir::new("shard_mixed");
        let g = sample();
        save_sharded(&g, &Partitioner::new(2).unwrap(), 1, dir.path("")).unwrap();
        // Forge a manifest claiming 3 shards: the 2-shard files disagree.
        write_manifest(
            &dir.path(""),
            &Manifest {
                epoch: 1,
                shards: 3,
                assignment: None,
            },
        )
        .unwrap();
        let err = load_sharded(dir.path("")).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn wal_routes_by_source_and_merges_by_seq() {
        let dir = TestDir::new("shard_wal");
        let p = Partitioner::new(4).unwrap();
        let mut w = ShardedWalWriter::create(dir.path(""), p.clone()).unwrap();
        let ops = vec![
            insert("A", "p", "B"),
            insert("C", "p", "D"),
            WalOp::Delete {
                head: "A".into(),
                predicate: "p".into(),
                tail: "B".into(),
            },
            WalOp::Commit { epoch: 1 },
            insert("E", "q", "F"),
            WalOp::Compact { epoch: 2 },
        ];
        for op in &ops {
            w.append(op).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let replay = read_sharded_wal(dir.path(""), 4).unwrap();
        assert_eq!(replay.ops, ops, "merged replay reproduces arrival order");
        assert!(!replay.torn);
        assert_eq!(replay.discarded_ops, 0);
        // Routed: A's ops share one log, C's another (unless hashes
        // collide, in which case they still merge correctly — the key
        // assertion above already proved the order).
        let shard_a = p.shard_of_label("A");
        let in_a = read_sharded_wal(dir.path(""), 4).unwrap();
        assert!(in_a.committed_len[shard_a] > WAL_MAGIC.len() as u64);
    }

    #[test]
    fn uncommitted_tail_is_discarded_and_truncated() {
        let dir = TestDir::new("shard_wal_tail");
        let p = Partitioner::new(2).unwrap();
        let mut w = ShardedWalWriter::create(dir.path(""), p.clone()).unwrap();
        w.append(&insert("A", "p", "B")).unwrap();
        w.append(&WalOp::Commit { epoch: 1 }).unwrap();
        w.append(&insert("C", "q", "D")).unwrap(); // never committed
        w.sync().unwrap();
        drop(w);
        let replay = read_sharded_wal(dir.path(""), 2).unwrap();
        assert_eq!(replay.ops.len(), 2);
        assert_eq!(replay.discarded_ops, 1);
        // Reattach + append: the discarded record must be gone for good.
        let mut w =
            ShardedWalWriter::open_append(dir.path(""), p, &replay.committed_len, replay.next_seq)
                .unwrap();
        w.append(&insert("E", "r", "F")).unwrap();
        w.append(&WalOp::Commit { epoch: 2 }).unwrap();
        w.sync().unwrap();
        drop(w);
        let replay = read_sharded_wal(dir.path(""), 2).unwrap();
        assert_eq!(
            replay.ops,
            vec![
                insert("A", "p", "B"),
                WalOp::Commit { epoch: 1 },
                insert("E", "r", "F"),
                WalOp::Commit { epoch: 2 },
            ]
        );
    }

    #[test]
    fn rebalanced_manifest_roundtrips_assignment_with_the_file_set() {
        let dir = TestDir::new("shard_rebal_manifest");
        let g = sample();
        // Hash-routed first: the manifest must stay in the legacy format.
        let hash = Partitioner::new(4).unwrap();
        save_sharded(&g, &hash, 1, dir.path("")).unwrap();
        let m = read_manifest(&dir.path("")).unwrap();
        assert_eq!(m.assignment, None, "legacy layout keeps legacy manifest");

        // Rebalanced: assignment publishes with the same manifest flip and
        // the loaded partitioner routes through it.
        let rebalanced = hash.rebalanced(&vec![1u64; Partitioner::BUCKETS]).unwrap();
        save_sharded(&g, &rebalanced, 2, dir.path("")).unwrap();
        let m = read_manifest(&dir.path("")).unwrap();
        assert_eq!(
            m.assignment.as_deref(),
            rebalanced.assignment(),
            "assignment travels with the epoch flip"
        );
        let (back, p, epoch) = load_sharded(dir.path("")).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(p, rebalanced);
        assert_eq!(back.edge_count(), g.edge_count());
        for node in g.nodes() {
            assert_eq!(
                back.neighbors(node).collect::<Vec<_>>(),
                g.neighbors(node).collect::<Vec<_>>(),
                "adjacency diverged at {node} after rebalanced reload"
            );
        }

        // A corrupt table (shard out of range) is rejected at load.
        write_manifest(
            &dir.path(""),
            &Manifest {
                epoch: 2,
                shards: 4,
                assignment: Some(vec![9u8; Partitioner::BUCKETS]),
            },
        )
        .unwrap();
        let err = load_sharded(dir.path("")).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn marker_missing_from_one_shard_rolls_the_epoch_back() {
        // Simulate a crash mid-marker-fanout: epoch 2's marker reaches
        // shard 0 but not shard 1 → the whole set recovers to epoch 1.
        let dir = TestDir::new("shard_wal_partial");
        let p = Partitioner::new(2).unwrap();
        let mut w = ShardedWalWriter::create(dir.path(""), p).unwrap();
        w.append(&insert("A", "p", "B")).unwrap();
        w.append(&WalOp::Commit { epoch: 1 }).unwrap();
        w.append(&insert("C", "q", "D")).unwrap();
        w.sync().unwrap();
        drop(w);
        // Hand-append epoch 2's marker to shard 0 only.
        let shard0 = wal_path(&dir.path(""), 0);
        let mut log = ShardLog {
            file: BufWriter::new(OpenOptions::new().append(true).open(&shard0).unwrap()),
            path: shard0,
        };
        log.append_frame(99, &WalOp::Commit { epoch: 2 }).unwrap();
        log.sync().unwrap();
        drop(log);
        let replay = read_sharded_wal(dir.path(""), 2).unwrap();
        let epochs: Vec<u64> = replay
            .ops
            .iter()
            .filter_map(|op| match op {
                WalOp::Commit { epoch } | WalOp::Compact { epoch } => Some(*epoch),
                _ => None,
            })
            .collect();
        assert_eq!(epochs, vec![1], "epoch 2 must roll back everywhere");
    }

    #[test]
    fn torn_tail_per_shard_is_tolerated() {
        let dir = TestDir::new("shard_wal_torn");
        let p = Partitioner::new(2).unwrap();
        let mut w = ShardedWalWriter::create(dir.path(""), p).unwrap();
        w.append(&insert("A", "p", "B")).unwrap();
        w.append(&WalOp::Commit { epoch: 1 }).unwrap();
        w.sync().unwrap();
        drop(w);
        // Tear shard 0's log mid-frame.
        let path = wal_path(&dir.path(""), 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[42, 0, 0, 0, 7]);
        std::fs::write(&path, &bytes).unwrap();
        let replay = read_sharded_wal(dir.path(""), 2).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.ops.len(), 2);
    }

    #[test]
    fn missing_logs_read_as_empty_only_on_fresh_deployments() {
        // All missing (deployment being created): empty replay.
        let dir = TestDir::new("shard_wal_missing");
        let replay = read_sharded_wal(dir.path(""), 3).unwrap();
        assert!(replay.ops.is_empty());
        assert_eq!(replay.committed_len, vec![0, 0, 0]);
        assert_eq!(replay.next_seq, 0);

        // A sibling holding records makes a missing log corruption, not a
        // fresh deployment: silently reading it as empty would roll back
        // every epoch committed since the last checkpoint.
        let p = Partitioner::new(2).unwrap();
        let mut w = ShardedWalWriter::create(dir.path(""), p).unwrap();
        w.append(&insert("A", "p", "B")).unwrap();
        w.append(&WalOp::Commit { epoch: 1 }).unwrap();
        w.sync().unwrap();
        drop(w);
        std::fs::remove_file(wal_path(&dir.path(""), 1)).unwrap();
        let err = read_sharded_wal(dir.path(""), 2).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        assert!(err.to_string().contains("roll back"), "{err}");
    }
}
