/root/repo/target/release/deps/datagen-a0ed1032daaf747e.d: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs

/root/repo/target/release/deps/libdatagen-a0ed1032daaf747e.rlib: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs

/root/repo/target/release/deps/libdatagen-a0ed1032daaf747e.rmeta: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs

crates/datagen/src/lib.rs:
crates/datagen/src/annotate.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/noise.rs:
crates/datagen/src/schema.rs:
crates/datagen/src/workload.rs:
