//! # kgraph — knowledge graph substrate
//!
//! An in-memory property-graph store tailored for the semantic-guided query
//! engine of Wang et al., *Semantic Guided and Response Times Bounded Top-k
//! Similarity Search over Knowledge Graphs* (ICDE 2020).
//!
//! A knowledge graph `G = (V, E, L)` (paper Definition 1) has:
//!
//! * nodes `u ∈ V` — entities carrying a **type** and a unique **name**,
//! * directed edges `e = (u_i, u_j) ∈ E` — carrying a **predicate**,
//! * a label function `L` realised here by a string [`Interner`] so that all
//!   hot-path comparisons are integer comparisons.
//!
//! Storage is a compressed-sparse-row (CSR) layout built once by
//! [`GraphBuilder::finish`]; both out- and in-adjacency are materialised
//! because path search in the paper ignores edge directionality while the
//! embedding model (TransE) needs directed triples.
//!
//! ```
//! use kgraph::{GraphBuilder, KnowledgeGraph};
//!
//! let mut b = GraphBuilder::new();
//! let audi = b.add_node("Audi_TT", "Automobile");
//! let germany = b.add_node("Germany", "Country");
//! b.add_edge(audi, germany, "assembly");
//! let g: KnowledgeGraph = b.finish();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.edge_count(), 1);
//! ```

pub mod error;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod shard;
pub mod stats;
pub mod triple;
pub mod typing;
pub mod versioned;
pub mod view;

pub use error::{KgError, Result};
pub use graph::{EdgeRecord, GraphBuilder, KnowledgeGraph, NeighborRef};
pub use ids::{EdgeId, NodeId, PredicateId, TypeId};
pub use interner::Interner;
pub use shard::{GraphShard, Partitioner, ShardedGraph};
pub use stats::GraphStats;
pub use triple::Triple;
pub use versioned::{
    DeltaOverlay, GraphSnapshot, InsertOutcome, RecoveryReport, VersionedGraph, VersionedStats,
};
pub use view::GraphView;
