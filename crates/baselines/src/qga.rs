//! QGA (Han et al., CIKM 2017) — keyword search on RDF graphs via query
//! graph assembly.
//!
//! QGA assembles keywords into a query graph and evaluates it as a SPARQL
//! expression: node keywords resolve through entity linking (synonyms and
//! abbreviations are handled), but edges are evaluated verbatim by the
//! SPARQL engine — exact predicates, one hop. Like SLQ it recovers only the
//! directly-materialised schema (Table I: P 1.0 / R 0.39).

use crate::common::{
    run_baseline, Features, GraphQueryMethod, MethodAnswer, NodeMode, SegmentScorer,
};
use kgraph::{KnowledgeGraph, PredicateId};
use lexicon::TransformationLibrary;
use sgq::query::QueryGraph;

/// The QGA comparator.
#[derive(Debug, Default, Clone, Copy)]
pub struct Qga;

impl Qga {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }
}

struct SparqlEdge;

impl SegmentScorer for SparqlEdge {
    fn max_hops(&self) -> usize {
        1
    }
    fn score(
        &self,
        graph: &KnowledgeGraph,
        query_pred: &str,
        preds: &[PredicateId],
    ) -> Option<f64> {
        (preds.len() == 1 && graph.predicate_name(preds[0]) == query_pred).then_some(1.0)
    }
}

impl GraphQueryMethod for Qga {
    fn name(&self) -> &'static str {
        "QGA"
    }

    fn features(&self) -> Features {
        Features {
            node_similarity: true,
            edge_to_path: false,
            predicates: true,
            idea: "keyword-based query graph assembly",
        }
    }

    fn query(
        &self,
        graph: &KnowledgeGraph,
        library: &TransformationLibrary,
        query: &QueryGraph,
        k: usize,
    ) -> Vec<MethodAnswer> {
        run_baseline(graph, library, query, k, NodeMode::Similar, &SparqlEdge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    #[test]
    fn node_similarity_but_exact_predicates() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", "Automobile");
        let de = b.add_node("Germany", "Country");
        b.add_edge(a, de, "assembly");
        let g = b.finish();
        let mut lib = TransformationLibrary::new();
        lib.add_abbreviation_row("Germany", &["GER"]);
        // GER resolves through entity linking…
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let ger = q.add_specific("GER", "Country");
        q.add_edge(auto, "assembly", ger);
        assert_eq!(Qga::new().query(&g, &lib, &q, 10).len(), 1);
        // …but a paraphrased predicate fails (exact SPARQL evaluation).
        let mut q2 = QueryGraph::new();
        let auto2 = q2.add_target("Automobile");
        let ger2 = q2.add_specific("GER", "Country");
        q2.add_edge(auto2, "product", ger2);
        assert!(Qga::new().query(&g, &lib, &q2, 10).is_empty());
    }
}
