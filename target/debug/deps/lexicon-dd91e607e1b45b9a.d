/root/repo/target/debug/deps/lexicon-dd91e607e1b45b9a.d: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

/root/repo/target/debug/deps/liblexicon-dd91e607e1b45b9a.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/library.rs:
crates/lexicon/src/matcher.rs:
crates/lexicon/src/normalize.rs:
