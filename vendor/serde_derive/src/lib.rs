//! Minimal offline shim of `serde_derive`.
//!
//! Generates impls of the sibling `serde` shim's value-model traits
//! (`Serialize::to_value` / `Deserialize::from_value`) for the shapes this
//! workspace actually derives:
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(default)]`),
//! * tuple structs (`#[serde(transparent)]` newtypes delegate to the inner
//!   field; otherwise an array),
//! * enums with unit, tuple and struct variants in serde's external-tag
//!   representation (`"Variant"` / `{"Variant": ...}`).
//!
//! Written directly against `proc_macro` (no `syn`/`quote` available
//! offline): a small token-walker extracts names, field lists and the serde
//! attributes; codegen is string assembly re-parsed into a `TokenStream`.
//! Generic types are rejected with a compile error — none of the workspace's
//! serialized types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
        transparent: bool,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Collects `serde(...)` idents from one `#[...]` attribute group, if it is
/// a serde attribute; returns the idents seen (e.g. `skip`, `transparent`).
fn serde_attr_idents(group: &proc_macro::Group) -> Vec<String> {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .filter_map(|t| match t {
                    TokenTree::Ident(i) => Some(i.to_string()),
                    _ => None,
                })
                .collect()
        }
        _ => ::std::vec::Vec::new(),
    }
}

/// Consumes leading attributes from `iter`, returning all serde idents seen.
fn take_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> Vec<String> {
    let mut idents = ::std::vec::Vec::new();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        idents.extend(serde_attr_idents(&g));
                    }
                    _ => panic!("serde shim derive: malformed attribute"),
                }
            }
            _ => return idents,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(i)) = tokens.peek() {
        if i.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Parses `name: Type, …` named-field bodies; tracks angle-bracket depth so
/// commas inside `Vec<(A, B)>`-style types do not split fields.
fn parse_named_fields(body: proc_macro::Group) -> Vec<Field> {
    let mut fields = ::std::vec::Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return fields;
        }
        let serde_idents = take_attrs(&mut tokens);
        if tokens.peek().is_none() {
            return fields;
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-depth 0.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name,
            attrs: FieldAttrs {
                skip: serde_idents.iter().any(|s| s == "skip"),
                default: serde_idents.iter().any(|s| s == "default"),
            },
        });
    }
}

/// Counts the fields of a tuple-struct/-variant body `(A, B, …)`.
fn tuple_arity(body: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut arity = 0usize;
    let mut saw_any = false;
    for t in body.stream() {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => {}
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

fn parse_variants(body: proc_macro::Group) -> Vec<Variant> {
    let mut variants = ::std::vec::Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return variants;
        }
        take_attrs(&mut tokens);
        if tokens.peek().is_none() {
            return variants;
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match tokens.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                VariantShape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                tokens.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        // Skip a discriminant (`= expr`) and the trailing comma.
        let mut depth = 0i32;
        while let Some(t) = tokens.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
        variants.push(Variant { name, shape });
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let type_attrs = take_attrs(&mut tokens);
    let transparent = type_attrs.iter().any(|s| s == "transparent");
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported by the offline shim");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: tuple_arity(&g),
                    transparent,
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        kw => panic!("serde shim derive: cannot derive for `{kw}` items"),
    }
}

/// Derives `serde::Serialize` (value-model shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = match &input {
        Input::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(__fields)\n\
                 }}\n}}"
            )
        }
        Input::TupleStruct {
            name,
            arity,
            transparent,
        } => {
            let body = if *transparent && *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n}}"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Object(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            pushes.push_str(&format!(
                                "__inner.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __inner: ::std::vec::Vec<(::std::string::String, serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(__inner))])\n\
                             }},\n",
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (value-model shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let code = match &input {
        Input::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let n = &f.name;
                if f.attrs.skip {
                    inits.push_str(&format!("{n}: Default::default(),\n"));
                } else if f.attrs.default {
                    inits.push_str(&format!(
                        "{n}: match __v.get_field(\"{n}\") {{\n\
                         Some(__x) => serde::Deserialize::from_value(__x)?,\n\
                         None => Default::default(),\n\
                         }},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: serde::Deserialize::from_value(__v.get_field(\"{n}\")\
                         .ok_or_else(|| serde::DeError(format!(\"missing field `{n}` in {name}\")))?)?,\n"
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(serde::DeError::expected(\"object for {name}\", __v));\n\
                 }}\n\
                 Ok(Self {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Input::TupleStruct {
            name,
            arity,
            transparent,
        } => {
            let body = if *transparent && *arity == 1 {
                format!("::std::result::Result::Ok({name}(serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_array()\
                     .ok_or_else(|| serde::DeError::expected(\"array for {name}\", __v))?;\n\
                     if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(serde::DeError(format!(\"expected {arity} elements for {name}, got {{}}\", __items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{ {body} }}\n}}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn from_value(_: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{ ::std::result::Result::Ok({name}) }}\n}}"
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!("::std::result::Result::Ok({name}::{vn}(serde::Deserialize::from_value(__payload)?))")
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "let __items = __payload.as_array()\
                                 .ok_or_else(|| serde::DeError::expected(\"array payload for {name}::{vn}\", __payload))?;\n\
                                 if __items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(serde::DeError(format!(\"expected {arity} elements for {name}::{vn}, got {{}}\", __items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({items}))",
                                items = items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {{ {body} }},\n"));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let n = &f.name;
                            if f.attrs.skip {
                                inits.push_str(&format!("{n}: Default::default(),\n"));
                            } else if f.attrs.default {
                                inits.push_str(&format!(
                                    "{n}: match __payload.get_field(\"{n}\") {{\n\
                                     Some(__x) => serde::Deserialize::from_value(__x)?,\n\
                                     None => Default::default(),\n\
                                     }},\n"
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: serde::Deserialize::from_value(__payload.get_field(\"{n}\")\
                                     .ok_or_else(|| serde::DeError(format!(\"missing field `{n}` in {name}::{vn}\")))?)?,\n"
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &serde::Value) -> ::std::result::Result<Self, serde::DeError> {{\n\
                 match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(serde::DeError(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __payload) = &__fields[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(serde::DeError(format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(serde::DeError::expected(\"string or single-key object for {name}\", __v)),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
