//! Reproducibility: the multithreaded engine must return identical results
//! across runs for fixed seeds — a requirement for every experiment table.

use semkg::datagen::workload::{chain_query, produced_workload};
use semkg::prelude::*;

#[test]
fn sgq_queries_are_deterministic_across_runs() {
    let ds = DatasetSpec::dbpedia_like(1.0).build();
    let space = ds.oracle_space();
    let queries = produced_workload(&ds);
    let run = || -> Vec<Vec<NodeId>> {
        let engine = SgqEngine::new(
            &ds.graph,
            &space,
            &ds.library,
            SgqConfig {
                k: 30,
                ..SgqConfig::default()
            },
        );
        queries
            .iter()
            .map(|q| engine.query(&q.graph).unwrap().answer_nodes())
            .collect()
    };
    assert_eq!(run(), run());
}

#[test]
fn multi_subquery_joins_are_deterministic() {
    let ds = DatasetSpec::dbpedia_like(1.0).build();
    let space = ds.oracle_space();
    let q = chain_query(&ds, 2);
    let run = || {
        let engine = SgqEngine::new(
            &ds.graph,
            &space,
            &ds.library,
            SgqConfig {
                k: 10,
                ..SgqConfig::default()
            },
        );
        let r = engine.query(&q.graph).unwrap();
        (
            r.answer_nodes(),
            r.matches.iter().map(|m| m.score).collect::<Vec<_>>(),
        )
    };
    let (a1, s1) = run();
    let (a2, s2) = run();
    assert_eq!(a1, a2);
    assert_eq!(s1, s2);
}

#[test]
fn dataset_and_workload_generation_reproducible() {
    let a = DatasetSpec::freebase_like(0.5).build();
    let b = DatasetSpec::freebase_like(0.5).build();
    assert_eq!(a.graph.node_count(), b.graph.node_count());
    assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    let qa = produced_workload(&a);
    let qb = produced_workload(&b);
    assert_eq!(qa.len(), qb.len());
    for (x, y) in qa.iter().zip(&qb) {
        assert_eq!(x.truth, y.truth);
    }
}
