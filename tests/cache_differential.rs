//! Differential harness for the epoch-keyed semantic answer cache.
//!
//! The cache's contract (see `sgq::sched::cache`): a cache hit returns the
//! *same certified answer* the engine would produce from scratch — bit
//! identical matches (pivots, scores, per-part path edge ids) and
//! identical deterministic execution statistics, because the cached value
//! IS a from-scratch execution, shared by `Arc`. A dominance hit trims a
//! cached (k, τ) superset down to a dominated (k' ≤ k, τ' = τ) request
//! and must equal a from-scratch run at (k', τ) — the prefix argument in
//! the module docs, checked here over a k grid at the donor's τ, with a
//! cross-τ negative control proving τ-mismatched requests execute from
//! scratch instead of trimming (an earlier τ-relaxed rule was refuted by
//! exactly this harness — see `sgq::sched::cache`). Stale epochs must
//! never escape: after a commit, a warm entry is invalidated and the
//! answer reflects the new epoch.

use datagen::dataset::{BenchDataset, DatasetSpec};
use datagen::workload::{chain_query, produced_workload, q117_variants, soccer_query};
use embedding::PredicateSpace;
use kgraph::VersionedGraph;
use sgq::sched::{BatchScheduler, Priority, QueryParams, SchedOutcome};
use sgq::{
    FinalMatch, LiveQueryService, QueryGraph, QueryResult, QueryService, SchedConfig, SgqConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn config() -> SgqConfig {
    SgqConfig {
        k: 20,
        tau: 0.3,
        workers: 4,
        ..SgqConfig::default()
    }
}

fn setup() -> (BenchDataset, PredicateSpace) {
    let ds = DatasetSpec::dbpedia_like(1.0).build();
    let space = ds.oracle_space();
    (ds, space)
}

/// The seeded differential workload, as in `scheduler_differential.rs`.
fn workload(ds: &BenchDataset) -> Vec<QueryGraph> {
    let mut queries: Vec<QueryGraph> = produced_workload(ds).into_iter().map(|q| q.graph).collect();
    queries.extend(
        q117_variants(ds, &ds.countries[0])
            .into_iter()
            .map(|q| q.graph),
    );
    queries.push(chain_query(ds, 0).graph);
    queries.push(soccer_query(ds, 0).0.graph);
    queries
}

/// The deterministic slice of [`sgq::QueryStats`] — everything except the
/// wall-clock fields (`elapsed_us`, `per_subquery_us`).
fn det_stats(r: &QueryResult) -> (usize, usize, usize, usize, usize, bool, usize, bool) {
    let s = &r.stats;
    (
        s.popped,
        s.pushed,
        s.tau_pruned,
        s.edges_examined,
        s.ta_accesses,
        s.ta_certified,
        s.subqueries,
        s.time_bound_hit,
    )
}

fn exact(outcome: SchedOutcome) -> QueryResult {
    match outcome {
        SchedOutcome::Exact(r) => r,
        other => panic!("slack deadline must stay exact, got {other:?}"),
    }
}

/// An exact cache hit is indistinguishable from a from-scratch execution:
/// identical matches *and* identical deterministic statistics — the hit
/// hands back the very result the engine certified on the first miss.
#[test]
fn exact_hits_are_bit_identical_including_deterministic_stats() {
    let (ds, space) = setup();
    let service = QueryService::build(&ds.graph, &space, &ds.library, config());
    let queries = workload(&ds);
    let baseline: Vec<QueryResult> = queries
        .iter()
        .map(|q| service.query(q).expect("direct path answers"))
        .collect();

    BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        // Pass 1: cold cache — every answer already equals the direct path
        // (the scheduler differential's claim), and fills the cache.
        for (idx, q) in queries.iter().enumerate() {
            let r = exact(
                handle
                    .query_within(q, Duration::from_secs(30), Priority::Normal)
                    .outcome,
            );
            assert_eq!(r.matches, baseline[idx].matches, "cold pass, query {idx}");
        }
        let warm = handle.stats();

        // Pass 2: every request must be served from the cache, and each
        // response must be the from-scratch execution bit for bit.
        for (idx, q) in queries.iter().enumerate() {
            let r = exact(
                handle
                    .query_within(q, Duration::from_secs(30), Priority::Normal)
                    .outcome,
            );
            assert_eq!(r.matches, baseline[idx].matches, "warm pass, query {idx}");
            assert_eq!(
                det_stats(&r),
                det_stats(&baseline[idx]),
                "a cache hit must carry the from-scratch deterministic stats (query {idx})"
            );
        }
        let done = handle.stats();
        let second_pass = queries.len() as u64;
        assert_eq!(
            done.answer_cache_served() - warm.answer_cache_served(),
            second_pass,
            "every warm-pass request is cache-served: {done:?}"
        );
        assert_eq!(
            done.batches, warm.batches,
            "the warm pass must never touch the engine"
        );
        assert!(done.answer_cache_entries > 0);
    })
    .expect("valid scheduler config");
}

/// Dominance serving over a k grid at the donor's τ: a request at
/// (k' ≤ k, same τ) answered by truncating the cached (k, τ) superset
/// equals a service built from scratch at exactly (k', τ) — matches,
/// scores and per-part path edge ids. The trimmed response carries the
/// donor's deterministic stats (it *is* the donor execution, truncated),
/// which is asserted too. A cross-τ phase is the negative control: the
/// cache must refuse to serve across a τ change (the search's per-pivot
/// scores are τ-dependent — see `sgq::sched::cache`), so those requests
/// execute from scratch and still match their references bit for bit.
#[test]
fn dominance_trimmed_answers_equal_from_scratch() {
    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    // Donor (k = 20, τ = 0.3); the equal-τ prefix rule needs no
    // exhaustiveness — top-k' is a prefix of top-k for every k' ≤ k.
    let donor_config = config();
    let service = QueryService::build(&ds.graph, &space, &ds.library, donor_config.clone());
    let queries: Vec<QueryGraph> = produced_workload(&ds)
        .into_iter()
        .map(|q| q.graph)
        .collect();
    assert!(!queries.is_empty());

    // Phase A: equal-τ, k-dominated — every request trims, engine untouched.
    let trim_grid: Vec<(usize, f64)> = vec![(1, 0.3), (3, 0.3), (10, 0.3)];
    // Phase B: τ differs from the cached donor — every request misses and
    // executes from scratch (each execution replaces the donor entry, so
    // the second point's τ must also differ from the *first* point's).
    let miss_grid: Vec<(usize, f64)> = vec![(20, 0.45), (1, 0.6)];

    let reference = |k: usize, tau: f64| {
        QueryService::build(
            &ds.graph,
            &space,
            &ds.library,
            SgqConfig {
                k,
                tau,
                ..donor_config.clone()
            },
        )
    };
    let trim_refs: Vec<QueryService<'_>> = trim_grid
        .iter()
        .map(|&(k, tau)| reference(k, tau))
        .collect();
    let miss_refs: Vec<QueryService<'_>> = miss_grid
        .iter()
        .map(|&(k, tau)| reference(k, tau))
        .collect();

    BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        // Warm the donors at the engine's own (k = 20, τ = 0.3).
        let donors: Vec<QueryResult> = queries
            .iter()
            .map(|q| {
                exact(
                    handle
                        .query_within(q, Duration::from_secs(30), Priority::Normal)
                        .outcome,
                )
            })
            .collect();
        let warm = handle.stats();

        for (g, &(k, tau)) in trim_grid.iter().enumerate() {
            for (idx, q) in queries.iter().enumerate() {
                let r = exact(
                    handle
                        .query_within_with(
                            q,
                            QueryParams {
                                k: Some(k),
                                tau: Some(tau),
                            },
                            Duration::from_secs(30),
                            Priority::Normal,
                        )
                        .outcome,
                );
                let from_scratch = trim_refs[g].query(q).expect("reference answers");
                assert_eq!(
                    r.matches, from_scratch.matches,
                    "trimmed answer diverged from a from-scratch (k={k}, τ={tau}) \
                     service on query {idx}"
                );
                assert_eq!(
                    det_stats(&r),
                    det_stats(&donors[idx]),
                    "a trimmed response carries its donor's deterministic stats \
                     (query {idx}, k={k}, τ={tau})"
                );
            }
        }
        let trimmed = handle.stats();
        assert_eq!(
            trimmed.answer_cache_dominance_hits - warm.answer_cache_dominance_hits,
            (trim_grid.len() * queries.len()) as u64,
            "every equal-τ dominated request is served by trimming: {trimmed:?}"
        );
        assert_eq!(
            trimmed.batches, warm.batches,
            "the equal-τ sweep must never touch the engine"
        );

        // Phase B: a τ change must never be bridged by the cache.
        for (g, &(k, tau)) in miss_grid.iter().enumerate() {
            for (idx, q) in queries.iter().enumerate() {
                let r = exact(
                    handle
                        .query_within_with(
                            q,
                            QueryParams {
                                k: Some(k),
                                tau: Some(tau),
                            },
                            Duration::from_secs(30),
                            Priority::Normal,
                        )
                        .outcome,
                );
                let from_scratch = miss_refs[g].query(q).expect("reference answers");
                assert_eq!(
                    r.matches, from_scratch.matches,
                    "cross-τ answer diverged from a from-scratch (k={k}, τ={tau}) \
                     service on query {idx}"
                );
                assert_eq!(
                    det_stats(&r),
                    det_stats(&from_scratch),
                    "a cross-τ request executes from scratch and carries its own \
                     stats (query {idx}, k={k}, τ={tau})"
                );
            }
        }
        let done = handle.stats();
        assert_eq!(
            done.answer_cache_dominance_hits, trimmed.answer_cache_dominance_hits,
            "a τ change must never be served by trimming: {done:?}"
        );
        assert_eq!(
            done.batched_requests - trimmed.batched_requests,
            (miss_grid.len() * queries.len()) as u64,
            "every cross-τ request executes from scratch: {done:?}"
        );
    })
    .expect("valid scheduler config");
}

/// Epoch invalidation end to end: after a commit, warm entries are stale
/// and must never escape — every post-commit answer equals the direct
/// live path at the *new* epoch, and the stale counter records the
/// invalidations.
#[test]
fn stale_epoch_answers_never_escape_a_commit() {
    let (ds, space) = setup();
    let versioned = Arc::new(VersionedGraph::new(ds.graph.clone()));
    let service = LiveQueryService::new(Arc::clone(&versioned), &space, &ds.library, config());
    let queries = workload(&ds);

    BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        // Warm pass at epoch 0, then a hit pass proving warmth.
        let pre_commit: Vec<Vec<FinalMatch>> = queries
            .iter()
            .map(|q| {
                exact(
                    handle
                        .query_within(q, Duration::from_secs(30), Priority::Normal)
                        .outcome,
                )
                .matches
            })
            .collect();
        let warm = handle.stats();
        for q in &queries {
            exact(
                handle
                    .query_within(q, Duration::from_secs(30), Priority::Normal)
                    .outcome,
            );
        }
        let hit = handle.stats();
        assert_eq!(
            hit.answer_cache_served() - warm.answer_cache_served(),
            queries.len() as u64
        );

        // A commit that provably changes answers: tombstone an edge a
        // current top match traverses (its path cannot survive), plus some
        // fresh assembly edges. The epoch bumps; every cached entry is now
        // stale.
        let victim = pre_commit
            .iter()
            .find_map(|ms| {
                ms.first()
                    .and_then(|m| m.parts.first())
                    .and_then(|p| p.edges.first())
                    .copied()
            })
            .expect("workload must produce at least one matched path");
        assert!(versioned.delete_edge(victim), "victim edge is live");
        for i in 0..8 {
            versioned.insert_triple(
                (format!("Car_cachediff_{i}").as_str(), "Automobile"),
                "assembly",
                ("Country_1", "Country"),
            );
        }
        versioned.commit();
        service.refresh();
        let baseline: Vec<Vec<FinalMatch>> = queries
            .iter()
            .map(|q| service.query(q).expect("live direct path").matches)
            .collect();
        // The commit must actually move answers — otherwise the stale/fresh
        // comparison below could not distinguish the two epochs.
        assert_ne!(
            pre_commit, baseline,
            "the commit's assembly edges must change at least one answer"
        );

        for (idx, q) in queries.iter().enumerate() {
            let r = exact(
                handle
                    .query_within(q, Duration::from_secs(30), Priority::Normal)
                    .outcome,
            );
            assert_eq!(
                r.matches, baseline[idx],
                "post-commit answer must reflect the new epoch, never a stale \
                 cache entry (query {idx})"
            );
        }
        let done = handle.stats();
        assert!(
            done.answer_cache_stale > hit.answer_cache_stale,
            "the commit must invalidate warm entries: {done:?}"
        );
    })
    .expect("valid scheduler config");
}
