//! Query graphs (paper Definition 2, Fig. 3).
//!
//! A query graph `G_Q = (V_Q, E_Q, L_Q)` contains *specific* nodes `V^s`
//! (known entities: both name and type given) and *target* nodes `V^t`
//! (unknown entities: only the type given). Every edge carries a predicate.
//! Chain-, star- and triangle-shaped graphs (Fig. 3) are all built with the
//! same three calls: [`QueryGraph::add_specific`], [`QueryGraph::add_target`]
//! and [`QueryGraph::add_edge`].

use serde::{Deserialize, Serialize};

/// Dense id of a query node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct QNodeId(pub u32);

/// Dense id of a query edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct QEdgeId(pub u32);

impl QNodeId {
    /// Raw index for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl QEdgeId {
    /// Raw index for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// What is known about a query node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryNodeKind {
    /// A known entity (`V^s`): name and type are both given, e.g.
    /// `Germany <Country>`.
    Specific {
        /// Entity name (matched through the transformation library).
        name: String,
        /// Entity type label.
        ty: String,
    },
    /// An unknown entity (`V^t`): only the type is given, e.g.
    /// `? <Automobile>`.
    Target {
        /// Entity type label.
        ty: String,
    },
}

/// A node of the query graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryNode {
    /// Node id.
    pub id: QNodeId,
    /// Specific vs target.
    pub kind: QueryNodeKind,
}

impl QueryNode {
    /// True for target (unknown) nodes.
    pub fn is_target(&self) -> bool {
        matches!(self.kind, QueryNodeKind::Target { .. })
    }

    /// True for specific (known) nodes.
    pub fn is_specific(&self) -> bool {
        !self.is_target()
    }

    /// The node's type label.
    pub fn type_label(&self) -> &str {
        match &self.kind {
            QueryNodeKind::Specific { ty, .. } | QueryNodeKind::Target { ty } => ty,
        }
    }

    /// The node's name for specific nodes, `None` for targets.
    pub fn name(&self) -> Option<&str> {
        match &self.kind {
            QueryNodeKind::Specific { name, .. } => Some(name),
            QueryNodeKind::Target { .. } => None,
        }
    }
}

/// An edge of the query graph, carrying a predicate label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEdge {
    /// Edge id.
    pub id: QEdgeId,
    /// Source query node.
    pub from: QNodeId,
    /// Destination query node.
    pub to: QNodeId,
    /// Predicate label, e.g. `product`.
    pub predicate: String,
}

impl QueryEdge {
    /// The endpoint opposite to `n`, or `None` when `n` is not an endpoint.
    pub fn other(&self, n: QNodeId) -> Option<QNodeId> {
        if self.from == n {
            Some(self.to)
        } else if self.to == n {
            Some(self.from)
        } else {
            None
        }
    }
}

/// A query graph `G_Q = (V_Q, E_Q, L_Q)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    nodes: Vec<QueryNode>,
    edges: Vec<QueryEdge>,
}

impl QueryGraph {
    /// Creates an empty query graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a specific node (known name and type), returning its id.
    pub fn add_specific(&mut self, name: &str, ty: &str) -> QNodeId {
        let id = QNodeId(self.nodes.len() as u32);
        self.nodes.push(QueryNode {
            id,
            kind: QueryNodeKind::Specific {
                name: name.into(),
                ty: ty.into(),
            },
        });
        id
    }

    /// Adds a target node (known type only), returning its id.
    pub fn add_target(&mut self, ty: &str) -> QNodeId {
        let id = QNodeId(self.nodes.len() as u32);
        self.nodes.push(QueryNode {
            id,
            kind: QueryNodeKind::Target { ty: ty.into() },
        });
        id
    }

    /// Adds an edge `from --predicate--> to`, returning its id.
    pub fn add_edge(&mut self, from: QNodeId, predicate: &str, to: QNodeId) -> QEdgeId {
        let id = QEdgeId(self.edges.len() as u32);
        self.edges.push(QueryEdge {
            id,
            from,
            to,
            predicate: predicate.into(),
        });
        id
    }

    /// All nodes.
    pub fn nodes(&self) -> &[QueryNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// Node by id.
    pub fn node(&self, id: QNodeId) -> &QueryNode {
        &self.nodes[id.index()]
    }

    /// Edge by id.
    pub fn edge(&self, id: QEdgeId) -> &QueryEdge {
        &self.edges[id.index()]
    }

    /// Ids of the target nodes `V^t`.
    pub fn target_nodes(&self) -> Vec<QNodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_target())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of the specific nodes `V^s`.
    pub fn specific_nodes(&self) -> Vec<QNodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_specific())
            .map(|n| n.id)
            .collect()
    }

    /// Edges incident to `n` (query graphs are tiny, a scan is fine).
    pub fn incident_edges(&self, n: QNodeId) -> Vec<QEdgeId> {
        self.edges
            .iter()
            .filter(|e| e.from == n || e.to == n)
            .map(|e| e.id)
            .collect()
    }

    /// Undirected degree of `n`.
    pub fn degree(&self, n: QNodeId) -> usize {
        self.incident_edges(n).len()
    }

    /// Validates structural soundness: endpoints declared, at least one
    /// target, at least one specific, and connectivity.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::SgqError;
        for e in &self.edges {
            if e.from.index() >= self.nodes.len() || e.to.index() >= self.nodes.len() {
                return Err(SgqError::DanglingEdge { edge: e.id.0 });
            }
        }
        if self.target_nodes().is_empty() {
            return Err(SgqError::NoTargetNode);
        }
        if self.specific_nodes().is_empty() {
            return Err(SgqError::NoSpecificNode);
        }
        if !self.is_connected() {
            return Err(SgqError::DisconnectedQuery);
        }
        Ok(())
    }

    /// True when all nodes are reachable from node 0 ignoring direction.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![QNodeId(0)];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for eid in self.incident_edges(n) {
                let other = self.edge(eid).other(n).expect("incident"); // lint-ok(panic-freedom): eid came from incident_edges(n), so `n` is an endpoint
                if !seen[other.index()] {
                    seen[other.index()] = true;
                    stack.push(other);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3(a): chain query — China --e1--> ?auto --e2--> ?device --e3--> Germany.
    pub(crate) fn chain() -> QueryGraph {
        let mut q = QueryGraph::new();
        let v2 = q.add_specific("China", "Country");
        let v1 = q.add_target("Automobile");
        let v3 = q.add_target("Device");
        let v4 = q.add_specific("Germany", "Country");
        q.add_edge(v1, "assembly", v2);
        q.add_edge(v1, "engine", v3);
        q.add_edge(v3, "manufacturer", v4);
        q
    }

    #[test]
    fn build_and_access() {
        let q = chain();
        assert_eq!(q.nodes().len(), 4);
        assert_eq!(q.edges().len(), 3);
        assert_eq!(q.node(QNodeId(0)).name(), Some("China"));
        assert_eq!(q.node(QNodeId(1)).type_label(), "Automobile");
        assert!(q.node(QNodeId(1)).is_target());
        assert!(q.node(QNodeId(3)).is_specific());
        assert_eq!(q.edge(QEdgeId(1)).predicate, "engine");
    }

    #[test]
    fn node_partition() {
        let q = chain();
        assert_eq!(q.target_nodes(), vec![QNodeId(1), QNodeId(2)]);
        assert_eq!(q.specific_nodes(), vec![QNodeId(0), QNodeId(3)]);
    }

    #[test]
    fn incident_edges_and_degree() {
        let q = chain();
        assert_eq!(q.degree(QNodeId(1)), 2); // the automobile target
        assert_eq!(q.degree(QNodeId(0)), 1);
        assert_eq!(q.incident_edges(QNodeId(2)), vec![QEdgeId(1), QEdgeId(2)]);
    }

    #[test]
    fn edge_other_endpoint() {
        let q = chain();
        let e = q.edge(QEdgeId(0));
        assert_eq!(e.other(e.from), Some(e.to));
        assert_eq!(e.other(e.to), Some(e.from));
        assert_eq!(e.other(QNodeId(2)), None);
    }

    #[test]
    fn validation_passes_on_chain() {
        assert!(chain().validate().is_ok());
    }

    #[test]
    fn validation_rejects_no_target() {
        let mut q = QueryGraph::new();
        let a = q.add_specific("A", "T");
        let b = q.add_specific("B", "T");
        q.add_edge(a, "p", b);
        assert_eq!(q.validate(), Err(crate::error::SgqError::NoTargetNode));
    }

    #[test]
    fn validation_rejects_no_specific() {
        let mut q = QueryGraph::new();
        let a = q.add_target("T");
        let b = q.add_target("T");
        q.add_edge(a, "p", b);
        assert_eq!(q.validate(), Err(crate::error::SgqError::NoSpecificNode));
    }

    #[test]
    fn validation_rejects_disconnected() {
        let mut q = QueryGraph::new();
        let a = q.add_specific("A", "T");
        let b = q.add_target("T");
        q.add_edge(a, "p", b);
        q.add_target("Orphan");
        assert_eq!(q.validate(), Err(crate::error::SgqError::DisconnectedQuery));
    }

    #[test]
    fn triangle_is_connected() {
        // Fig. 3(c).
        let mut q = QueryGraph::new();
        let v1 = q.add_target("Automobile");
        let v2 = q.add_target("Person");
        let v3 = q.add_specific("Germany", "Country");
        q.add_edge(v1, "assembly", v3);
        q.add_edge(v2, "nationality", v3);
        q.add_edge(v1, "designer", v2);
        assert!(q.is_connected());
        assert!(q.validate().is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let q = chain();
        let json = serde_json::to_string(&q).unwrap();
        let back: QueryGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
