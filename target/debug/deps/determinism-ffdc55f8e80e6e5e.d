/root/repo/target/debug/deps/determinism-ffdc55f8e80e6e5e.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-ffdc55f8e80e6e5e.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
