//! # semkg — semantic guided, response-time-bounded top-k search over knowledge graphs
//!
//! A from-scratch Rust reproduction of Wang, Khan, Wu, Jin, Yan:
//! *Semantic Guided and Response Times Bounded Top-k Similarity Search over
//! Knowledge Graphs* (ICDE 2020, arXiv:1910.06584).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`kgraph`] — the knowledge-graph store (Definition 1);
//! * [`embedding`] — TransE-family embedding + the predicate semantic space
//!   (§IV-A);
//! * [`lexicon`] — the synonym/abbreviation transformation library and node
//!   matcher φ (Definition 3, Table III);
//! * [`sgq`] — the paper's contribution: semantic graph, pss, A\* semantic
//!   search, TA assembly, and the TBQ time-bounded variant (§IV–VI);
//! * [`baselines`] — the seven comparator methods of Table II;
//! * [`datagen`] — synthetic datasets, workloads, metrics, noise and the
//!   simulated user study (§VII substrate).
//!
//! ## Quickstart
//!
//! ```
//! use semkg::prelude::*;
//!
//! // 1. Build (or load) a knowledge graph.
//! let mut b = GraphBuilder::new();
//! let audi = b.add_node("Audi_TT", "Automobile");
//! let bmw = b.add_node("BMW_320", "Automobile");
//! let de = b.add_node("Germany", "Country");
//! b.add_edge(audi, de, "assembly");
//! b.add_edge(bmw, de, "product");
//! let graph = b.finish();
//!
//! // 2. Learn the predicate semantic space offline (paper Phase 1).
//! let model = train_transe(&graph, &TrainConfig { dim: 16, epochs: 20, ..Default::default() });
//! let space = PredicateSpace::from_model(&graph, &model);
//!
//! // 3. Pose a query graph: ?<Automobile> --product--> Germany.
//! let mut q = QueryGraph::new();
//! let car = q.add_target("Automobile");
//! let country = q.add_specific("Germany", "Country");
//! q.add_edge(car, "product", country);
//!
//! // 4. Query.
//! let library = TransformationLibrary::new();
//! let engine = SgqEngine::new(&graph, &space, &library, SgqConfig { k: 5, tau: 0.0, ..Default::default() });
//! let result = engine.query(&q).unwrap();
//! assert_eq!(result.matches.len(), 2);
//! ```

pub use baselines;
pub use datagen;
pub use embedding;
pub use kgraph;
pub use lexicon;
pub use obs;
pub use sgq;

/// One-stop imports for applications.
pub mod prelude {
    pub use baselines::{all_baselines, GraphQueryMethod};
    pub use datagen::churn::{apply_churn_stream, churn_stream, ChurnOp};
    pub use datagen::dataset::{BenchDataset, DatasetSpec};
    pub use embedding::{train_transe, PredicateSpace, TrainConfig};
    pub use kgraph::{
        GraphBuilder, GraphSnapshot, GraphStats, GraphView, KnowledgeGraph, NodeId, VersionedGraph,
    };
    pub use lexicon::{NodeMatcher, TransformationLibrary};
    pub use obs::{MetricsRegistry, MetricsSnapshot};
    pub use sgq::{
        BatchScheduler, CheckpointReport, FinalMatch, LiveDeployment, LivePreparedQuery,
        LiveQueryService, PivotStrategy, PreparedQuery, Priority, QueryGraph, QueryResult,
        QueryService, QueryTrace, SchedConfig, SchedOutcome, SchedResponse, SchedStats,
        ServiceStats, SgqConfig, SgqEngine, ShedReason, TimeBoundConfig, TraceSink,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", "T");
        let c = b.add_node("B", "T");
        b.add_edge(a, c, "p");
        let g = b.finish();
        assert_eq!(GraphStats::of(&g).relations, 1);
    }
}
