/root/repo/target/debug/deps/rand-9e547be4fb45b23e.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9e547be4fb45b23e.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
