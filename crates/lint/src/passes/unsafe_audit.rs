//! `unsafe-audit`: every `unsafe` block must carry a `SAFETY:` comment —
//! on the same line, or in the contiguous comment-only block directly above.
//! The comment is the proof obligation: it must say which invariant makes
//! the operation sound and who maintains it.

use super::token_positions;
use crate::lexer::SourceFile;
use crate::Finding;

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (lineno, line) in file.code_lines() {
        if token_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        if line.comment.contains("SAFETY:") || justified_above(file, lineno) {
            continue;
        }
        out.push(Finding {
            path: file.path.clone(),
            line: lineno,
            rule: "unsafe-audit",
            message: "`unsafe` without a `SAFETY:` comment — state the invariant that makes this sound and who maintains it".into(),
        });
    }
    out
}

/// Walks the contiguous comment-only lines directly above `lineno` looking
/// for `SAFETY:`.
fn justified_above(file: &SourceFile, lineno: usize) -> bool {
    let mut i = lineno - 1; // index of the line above (0-based)
    while i > 0 {
        let above = &file.lines[i - 1];
        if !above.code.trim().is_empty() {
            return false;
        }
        if above.comment.contains("SAFETY:") {
            return true;
        }
        if above.comment.is_empty() {
            return false; // blank line breaks the block
        }
        i -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_unsafe_is_flagged() {
        let f = SourceFile::scan("x.rs", "let p = unsafe { ptr.read() };\n");
        let findings = check(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unsafe-audit");
    }

    #[test]
    fn same_line_safety_comment_passes() {
        let f = SourceFile::scan(
            "x.rs",
            "let p = unsafe { ptr.read() }; // SAFETY: ptr is valid for reads, checked above\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn safety_block_above_passes() {
        let f = SourceFile::scan(
            "x.rs",
            "// SAFETY: the scope joins before 'env ends, so the borrow\n// outlives every job.\nlet job = unsafe { transmute(job) };\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn blank_line_breaks_the_safety_block() {
        let f = SourceFile::scan(
            "x.rs",
            "// SAFETY: stale justification\n\nlet job = unsafe { transmute(job) };\n",
        );
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn unsafe_in_strings_and_tests_is_ignored() {
        let f = SourceFile::scan(
            "x.rs",
            "let s = \"unsafe\";\n#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n",
        );
        assert!(check(&f).is_empty());
    }
}
