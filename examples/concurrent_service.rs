//! The shared query runtime serving concurrent clients.
//!
//! Builds a synthetic DBpedia-like dataset, stands up one [`QueryService`]
//! (one engine, one similarity-row cache, one persistent worker pool) and
//! hammers it from several client threads with prepared queries, then
//! prints the aggregated service statistics.
//!
//! ```sh
//! cargo run --example concurrent_service --release
//! ```

use semkg::datagen::workload::produced_workload;
use semkg::prelude::*;

fn main() {
    let ds = DatasetSpec::dbpedia_like(1.5).build();
    let space = ds.oracle_space();
    let service = QueryService::build(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 20,
            ..SgqConfig::default()
        },
    );

    // Compile the workload once; clients then skip decomposition and plan
    // building on every request.
    let workload = produced_workload(&ds);
    let prepared: Vec<PreparedQuery> = workload
        .iter()
        .map(|q| service.prepare(&q.graph).expect("workload query prepares"))
        .collect();

    let clients = 8;
    let rounds = 50;
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let service = &service;
            let prepared = &prepared;
            s.spawn(move || {
                for i in 0..rounds {
                    let p = &prepared[(client + i) % prepared.len()];
                    let r = service.execute(p).expect("query succeeds");
                    assert!(!r.matches.is_empty() || r.stats.ta_certified);
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let stats = service.stats();
    let sim = service.similarity_stats();
    println!(
        "{} clients × {} rounds over {} prepared queries in {:.1?}",
        clients,
        rounds,
        prepared.len(),
        elapsed
    );
    println!(
        "served {} queries ({} certified), mean latency {:.0} µs, {:.0} q/s",
        stats.queries,
        stats.certified,
        stats.mean_latency_us(),
        stats.queries as f64 / elapsed.as_secs_f64()
    );
    println!(
        "similarity cache: {} row hits, {} row misses (rows computed once, shared forever)",
        sim.row_hits + sim.max_row_hits,
        sim.row_misses + sim.max_row_misses
    );
    println!(
        "worker pool: {} persistent workers, zero per-query thread spawns",
        service.engine().workers()
    );
}
