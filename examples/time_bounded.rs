//! Response-time-bounded querying (TBQ, paper §VI / Fig. 15).
//!
//! Runs the same top-100 query under tightening time bounds and reports
//! how answer quality (precision/recall vs the validation set, plus the
//! Jaccard approximation degree vs the exact SGQ answer, Eq. 12) improves
//! as the bound grows — the paper's anytime trade-off.
//!
//! Run with `cargo run --release --example time_bounded`.

use semkg::datagen::metrics::{jaccard, precision_recall};
use semkg::datagen::workload::produced_workload;
use semkg::prelude::*;
use std::time::Duration;

fn main() {
    let ds = DatasetSpec::dbpedia_like(4.0).build();
    let space = ds.oracle_space();
    println!("dataset: {} — {}\n", ds.name, GraphStats::of(&ds.graph));

    let q = &produced_workload(&ds)[0];
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 100,
            tau: 0.3, // permissive τ → a real search space to trade against
            ..SgqConfig::default()
        },
    );

    // The exact reference answer.
    let t0 = std::time::Instant::now();
    let exact = engine.query(&q.graph).expect("valid query");
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
    let exact_answers = exact.answer_nodes();
    println!(
        "exact SGQ: {} answers in {exact_ms:.2} ms",
        exact_answers.len()
    );
    println!(
        "{:<12} {:>6} {:>6} {:>9} {:>10} {:>10}",
        "bound", "P", "R", "Jaccard", "answers", "SRT ms"
    );

    for fraction in [0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5] {
        let bound = Duration::from_secs_f64((exact_ms * fraction / 1e3).max(1e-4));
        let tb = TimeBoundConfig::with_bound(bound);
        let t0 = std::time::Instant::now();
        let approx = engine.query_time_bounded(&q.graph, &tb).expect("valid");
        let srt = t0.elapsed().as_secs_f64() * 1e3;
        let answers = approx.answer_nodes();
        let (p, r) = precision_recall(&answers, &q.truth);
        println!(
            "{:<12} {p:>6.2} {r:>6.2} {:>9.2} {:>10} {srt:>10.2}",
            format!("{:.2}ms", bound.as_secs_f64() * 1e3),
            jaccard(&answers, &exact_answers),
            answers.len(),
        );
    }
    println!(
        "\nwith a generous bound the TBQ answer converges to the exact SGQ answer (Theorem 4)."
    );
}
