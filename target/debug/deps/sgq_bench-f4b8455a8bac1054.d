/root/repo/target/debug/deps/sgq_bench-f4b8455a8bac1054.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/sgq_bench-f4b8455a8bac1054: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
