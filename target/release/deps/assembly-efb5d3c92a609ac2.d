/root/repo/target/release/deps/assembly-efb5d3c92a609ac2.d: crates/bench/benches/assembly.rs

/root/repo/target/release/deps/assembly-efb5d3c92a609ac2: crates/bench/benches/assembly.rs

crates/bench/benches/assembly.rs:
