//! Sharded storage end to end: split, scatter-gather queries, imbalance
//! gauges, and the per-shard durable deployment.
//!
//! ```text
//! cargo run --release --example sharded
//! ```
//!
//! 1. Builds the seeded benchmark dataset and splits it into 4 shards —
//!    answers are bit-identical to the monolithic build (asserted here,
//!    proven exhaustively in `tests/sharded_differential.rs`).
//! 2. Prints the per-shard edge counts and skew ratio, for the balanced
//!    dataset and for the shard-hostile zipfian stream.
//! 3. Stands up a `ShardedDeployment` (per-shard snapshots + WALs under
//!    one epoch manifest), commits live writes, checkpoints, "crashes",
//!    and recovers — all shards back at one consistent epoch.

use datagen::dataset::DatasetSpec;
use datagen::workload::{produced_workload, skewed_triples, SkewSpec};
use kgraph::{GraphStats, GraphView, ShardedGraph};
use sgq::{QueryService, SgqConfig, ShardedDeployment};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let ds = DatasetSpec::dbpedia_like(1.0).build();
    let space = ds.oracle_space();
    let config = SgqConfig {
        k: 10,
        tau: 0.3,
        // Phase-trace every 4th query; tracing never affects answers (the
        // bit-identity asserts below still hold).
        trace_sample_every: 4,
        ..SgqConfig::default()
    };

    // --- 1. Scatter-gather queries over 4 shards -------------------------
    let mono = QueryService::build(&ds.graph, &space, &ds.library, config.clone());
    let sharded =
        QueryService::build_sharded(ds.graph.clone(), 4, &space, &ds.library, config.clone())
            .expect("valid shard count");
    let workload = produced_workload(&ds);
    let t0 = Instant::now();
    let mut identical = 0;
    for bench_query in &workload {
        let a = mono.query(&bench_query.graph).expect("monolithic answers");
        let b = sharded.query(&bench_query.graph).expect("sharded answers");
        assert_eq!(
            a.matches, b.matches,
            "sharded answers must be bit-identical"
        );
        identical += 1;
    }
    println!(
        "ran {identical} queries on 1 and 4 shards in {:?} — every answer bit-identical",
        t0.elapsed()
    );
    let stats = sharded.stats();
    println!(
        "service gauges: shards={} graph_edges={} max_shard_edges={} skew={:.2}",
        stats.shard_count,
        stats.graph_edges,
        stats.max_shard_edges,
        stats.shard_skew()
    );
    println!(
        "latency percentiles (registry histogram): p50={} p90={} p99={} max={} us",
        stats.latency_p50_us, stats.latency_p90_us, stats.latency_p99_us, stats.latency_max_us
    );
    if let Some(tr) = sharded.traces().recent().first() {
        println!(
            "sampled phase trace (1-in-4): seed {} us | expand {} us over {} rounds | merge {} us | total {} us",
            tr.seed_ns / 1_000,
            tr.expand_ns / 1_000,
            tr.rounds,
            tr.merge_ns / 1_000,
            tr.total_ns / 1_000
        );
    }

    // --- 2. Imbalance gauges ---------------------------------------------
    let balanced = ShardedGraph::from_graph(ds.graph.clone(), 4).expect("split");
    println!("balanced dataset: {}", GraphStats::of(&balanced));
    let hostile = kgraph::io::graph_from_triples(skewed_triples(&SkewSpec::default()));
    let hostile = ShardedGraph::from_graph(hostile, 4).expect("split");
    println!("shard-hostile stream: {}", GraphStats::of(&hostile));

    // --- 3. Per-shard durable deployment ---------------------------------
    let dir = std::env::temp_dir().join(format!("sgq_sharded_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let deployment =
        ShardedDeployment::create(&dir, ds.graph.clone(), space.clone(), ds.library.clone(), 4)
            .expect("create deployment");
    let service = deployment.service(config.clone());
    let store = Arc::clone(deployment.versioned());
    for i in 0..50 {
        store.insert_triple(
            (format!("LiveCar_{i}").as_str(), "Automobile"),
            "assembly",
            (ds.countries[i % ds.countries.len()].as_str(), "Country"),
        );
    }
    store.commit();
    service.refresh();
    let before = service.query(&workload[0].graph).expect("live answers");
    let report = service.checkpoint().expect("sharded checkpoint");
    println!(
        "checkpointed epoch {} ({} nodes, {} edges, {} bytes across meta + 4 shard slices)",
        report.epoch, report.nodes, report.edges, report.snapshot_bytes
    );
    store.insert_triple(
        ("Phantom", "Automobile"),
        "assembly",
        ("Germany", "Country"),
    );
    drop(service);
    drop(deployment); // crash: the staged Phantom write never committed
    drop(store);

    let reopened = ShardedDeployment::open(&dir).expect("recover");
    println!(
        "recovered to epoch {} (replayed {} ops, discarded {} uncommitted)",
        reopened.recovery().recovered_epoch,
        reopened.recovery().ops_replayed,
        reopened.recovery().discarded_ops
    );
    let service = reopened.service(config);
    let after = service
        .query(&workload[0].graph)
        .expect("recovered answers");
    assert_eq!(
        before.matches, after.matches,
        "recovery must be bit-identical"
    );
    assert!(service.pin().graph().node_by_name("Phantom").is_none());
    println!("post-recovery answers bit-identical; uncommitted write discarded");

    // The recovery report is also registered as gauges — scrapeable from
    // the live service's registry like every other metric.
    let prom = service.metrics().to_prometheus();
    println!("\nrecovery metrics exposed for scraping:");
    for line in prom.lines().filter(|l| {
        !l.starts_with('#') && (l.starts_with("sgq_recovery") || l.starts_with("sgq_epoch"))
    }) {
        println!("   {line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
