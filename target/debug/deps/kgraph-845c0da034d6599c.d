/root/repo/target/debug/deps/kgraph-845c0da034d6599c.d: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs Cargo.toml

/root/repo/target/debug/deps/libkgraph-845c0da034d6599c.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs Cargo.toml

crates/kgraph/src/lib.rs:
crates/kgraph/src/error.rs:
crates/kgraph/src/graph.rs:
crates/kgraph/src/ids.rs:
crates/kgraph/src/interner.rs:
crates/kgraph/src/io.rs:
crates/kgraph/src/stats.rs:
crates/kgraph/src/triple.rs:
crates/kgraph/src/typing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
