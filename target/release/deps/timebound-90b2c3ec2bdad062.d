/root/repo/target/release/deps/timebound-90b2c3ec2bdad062.d: crates/bench/benches/timebound.rs

/root/repo/target/release/deps/timebound-90b2c3ec2bdad062: crates/bench/benches/timebound.rs

crates/bench/benches/timebound.rs:
