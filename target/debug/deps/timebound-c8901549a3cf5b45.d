/root/repo/target/debug/deps/timebound-c8901549a3cf5b45.d: crates/bench/benches/timebound.rs Cargo.toml

/root/repo/target/debug/deps/libtimebound-c8901549a3cf5b45.rmeta: crates/bench/benches/timebound.rs Cargo.toml

crates/bench/benches/timebound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
