/root/repo/target/debug/examples/complex_queries-243d66430a180b43.d: examples/complex_queries.rs

/root/repo/target/debug/examples/complex_queries-243d66430a180b43: examples/complex_queries.rs

examples/complex_queries.rs:
