//! `panic-freedom`: serving paths degrade, they do not panic.
//!
//! In files under the configured serving paths, non-test code may not call
//! `unwrap`/`expect`, invoke a panicking macro, or (in the request-facing
//! subset listed in `index_paths`) index a slice with `[...]` — every one
//! of those is a reachable abort on a query path that has an error channel
//! (`SgqError`) built for exactly this.
//!
//! Two deliberate carve-outs, both visible in `lint.toml`:
//!
//! * `allow_lock_poisoning` pre-waives `.lock().unwrap()` /
//!   `.read().unwrap()` / `.write().unwrap()` and `Condvar::wait(..)`
//!   unwraps. A poisoned lock means another thread already panicked while
//!   holding it; propagating the panic is the documented policy (shared
//!   state may be torn), and demanding per-site waivers would bury the
//!   signal in boilerplate.
//! * `assert!`/`debug_assert!` are not flagged: asserts state invariants
//!   whose violation is a logic bug, and the differential tests exercise
//!   them. Denying asserts would push invariant checks out of the code.

use super::path_matches;
use crate::config::Config;
use crate::lexer::{is_ident_byte, Line, SourceFile};
use crate::Finding;

pub fn check(config: &Config, file: &SourceFile) -> Vec<Finding> {
    if !path_matches(&file.path, &config.panic_paths) {
        return Vec::new();
    }
    let check_indexing = path_matches(&file.path, &config.panic_index_paths);
    let mut out = Vec::new();
    let mut prev_code_tail = String::new();
    for (lineno, line) in file.code_lines() {
        let code = &line.code;
        for pos in super::token_positions(code, ".unwrap()") {
            if config.allow_lock_poisoning && is_lock_unwrap(code, pos, &prev_code_tail) {
                continue;
            }
            out.push(finding(file, lineno, "`.unwrap()` on a serving path — propagate `SgqError` (or waive with why this cannot fail)"));
        }
        for pos in super::token_positions(code, ".expect(") {
            if config.allow_lock_poisoning && contains_wait_before(code, pos) {
                continue;
            }
            out.push(finding(file, lineno, "`.expect(..)` on a serving path — propagate `SgqError` (or waive with why this cannot fail)"));
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if !super::token_positions(code, mac).is_empty() {
                out.push(finding(
                    file,
                    lineno,
                    &format!("`{mac}` on a serving path — return an error or waive with the invariant that makes this unreachable"),
                ));
            }
        }
        if check_indexing {
            if let Some(col) = slice_index_position(line) {
                out.push(finding(
                    file,
                    lineno,
                    &format!("slice index `[` at column {} — a bad index aborts the query; use `.get(..)` or waive with the bound that holds", col + 1),
                ));
            }
        }
        if !code.trim().is_empty() {
            prev_code_tail = code.trim_end().to_string();
        }
    }
    out
}

fn finding(file: &SourceFile, line: usize, message: &str) -> Finding {
    Finding {
        path: file.path.clone(),
        line,
        rule: "panic-freedom",
        message: message.to_string(),
    }
}

/// Whether the `.unwrap()` at `pos` unwraps a lock acquisition: the text
/// before it (or, when the unwrap starts the line, the previous code line's
/// tail) ends with `.lock()`, `.read()`, `.write()`, a `try_lock`, or a
/// `Condvar::wait` chain.
fn is_lock_unwrap(code: &str, pos: usize, prev_tail: &str) -> bool {
    let before = code[..pos].trim_end();
    let target = if before.is_empty() { prev_tail } else { before };
    target.ends_with(".lock()")
        || target.ends_with(".try_lock()")
        || target.ends_with(".read()")
        || target.ends_with(".write()")
        || contains_wait_tail(target)
}

/// `cv.wait(guard).unwrap()` / `cv.wait_timeout(guard, d).unwrap()` — the
/// call before the unwrap is a Condvar wait (its argument may contain
/// nested parens, so `ends_with` on a fixed suffix is not enough).
fn contains_wait_tail(target: &str) -> bool {
    (target.contains(".wait(") || target.contains(".wait_timeout(")) && target.ends_with(')')
}

fn contains_wait_before(code: &str, pos: usize) -> bool {
    contains_wait_tail(code[..pos].trim_end())
}

/// Column of the first raw slice-index on the line: a `[` immediately
/// preceded by an identifier char, `)`, or `]` — excluding attribute lines
/// (`#[...]`) and macro invocations (`vec![...]`).
fn slice_index_position(line: &Line) -> Option<usize> {
    let trimmed = line.code.trim_start();
    if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
        return None;
    }
    let bytes = line.code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev == b'!' {
            continue; // macro: vec![..], matches![..]
        }
        if is_ident_byte(prev) || prev == b')' || prev == b']' {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            panic_paths: vec!["serving/".into()],
            panic_index_paths: vec!["serving/front.rs".into()],
            allow_lock_poisoning: true,
            ..Config::default()
        }
    }

    #[test]
    fn unwrap_and_macros_are_flagged_on_serving_paths() {
        let f = SourceFile::scan(
            "serving/x.rs",
            "let v = maybe.unwrap();\npanic!(\"boom\");\nunreachable!();\n",
        );
        let findings = check(&cfg(), &f);
        assert_eq!(findings.len(), 3, "{findings:?}");
    }

    #[test]
    fn lock_poisoning_unwraps_are_pre_waived() {
        let f = SourceFile::scan(
            "serving/x.rs",
            "let g = self.state.lock().unwrap();\nlet r = self.map.read().unwrap();\nlet w = self.map.write().unwrap();\nguard = self.cv.wait(guard).unwrap();\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn wrapped_lock_unwrap_on_next_line_is_pre_waived() {
        let f = SourceFile::scan(
            "serving/x.rs",
            "let g = self.some.long.path.state.lock()\n    .unwrap();\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn non_lock_unwrap_is_still_flagged_with_poisoning_allowed() {
        let f = SourceFile::scan("serving/x.rs", "let v = list.first().unwrap();\n");
        assert_eq!(check(&cfg(), &f).len(), 1);
    }

    #[test]
    fn slice_index_flagged_only_in_index_paths() {
        let front = SourceFile::scan("serving/front.rs", "counts[i] += 1;\n");
        assert_eq!(check(&cfg(), &front).len(), 1);
        let deep = SourceFile::scan("serving/kernel.rs", "counts[i] += 1;\n");
        assert!(check(&cfg(), &deep).is_empty());
    }

    #[test]
    fn attributes_and_macros_are_not_slice_indexes() {
        let f = SourceFile::scan(
            "serving/front.rs",
            "#[derive(Clone)]\nlet v = vec![1, 2];\nlet t: [u8; 4] = x;\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn files_off_serving_paths_are_clean() {
        let f = SourceFile::scan("other/x.rs", "let v = maybe.unwrap(); panic!();\n");
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn asserts_are_not_flagged() {
        let f = SourceFile::scan("serving/x.rs", "assert!(ok);\ndebug_assert_eq!(a, b);\n");
        assert!(check(&cfg(), &f).is_empty());
    }
}
