/root/repo/target/release/deps/lexicon-4aeda65b16b2f6d4.d: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

/root/repo/target/release/deps/liblexicon-4aeda65b16b2f6d4.rlib: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

/root/repo/target/release/deps/liblexicon-4aeda65b16b2f6d4.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs

crates/lexicon/src/lib.rs:
crates/lexicon/src/library.rs:
crates/lexicon/src/matcher.rs:
crates/lexicon/src/normalize.rs:
