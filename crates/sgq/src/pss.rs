//! Path semantic similarity (paper Eq. 6) and its heuristic upper-bound
//! estimate (Eq. 7, Theorem 1).
//!
//! The pss of a match `u_s ⇝ u_t` is the geometric mean of the semantic
//! weights on its edges: `ψ = (∏ wⱼ)^(1/n)`. We compute it in log-space —
//! `ψ = exp(Σ ln wⱼ / n)` — so long low-weight paths cannot underflow, and
//! clamp weights to `(MIN_WEIGHT, 1]`: cosine similarities may be ≤ 0 but
//! the paper's algebra (Lemma 1, Theorem 1) assumes weights in `(0, 1]`.
//!
//! The estimate at a frontier node `u_i` is
//! `ψ̂ = (W_si · m(u_i))^(1/n̂)` where `W_si` is the explored weight
//! product and `m(u_i)` the maximum weight on `u_i`'s incident edges —
//! an upper bound of the unexplored product (Lemma 1) — and `n̂` the total
//! hop budget, an upper bound of the final path length. Both bounds together
//! give admissibility: `ψ̂ ≥ ψ` (Theorem 1).

/// Weights are clamped to `[MIN_WEIGHT, 1]` so the geometric mean stays
/// defined and the admissibility algebra holds.
pub const MIN_WEIGHT: f64 = 1e-6;

/// Clamps a raw cosine similarity into the paper's weight domain `(0, 1]`.
#[inline]
pub fn clamp_weight(sim: f64) -> f64 {
    sim.clamp(MIN_WEIGHT, 1.0)
}

/// Exact pss of a complete match: `exp(log_sum / hops)` (Eq. 6 in
/// log-space). `hops` must be ≥ 1.
#[inline]
pub fn exact_pss(log_sum: f64, hops: usize) -> f64 {
    debug_assert!(hops >= 1);
    (log_sum / hops as f64).exp()
}

/// The admissible estimator ψ̂ for one sub-query search (Eq. 7).
#[derive(Debug, Clone, Copy)]
pub struct PssEstimator {
    /// Total hop budget `n̂_total = n̂ · |segments|` — the maximum length of
    /// any admissible match of this sub-query (for the paper's single-edge
    /// sub-queries this is exactly the user's n̂).
    n_hat_total: f64,
}

impl PssEstimator {
    /// `n_hat` is the per-query-edge hop bound; `segments` the number of
    /// query edges in the sub-query.
    pub fn new(n_hat: usize, segments: usize) -> Self {
        debug_assert!(n_hat >= 1 && segments >= 1);
        Self {
            n_hat_total: (n_hat * segments) as f64,
        }
    }

    /// The total hop budget.
    pub fn hop_budget(&self) -> usize {
        self.n_hat_total as usize
    }

    /// ψ̂ at a frontier node: `exp((log_sum + ln m_u) / n̂_total)`.
    /// `m_u` is clamped into the weight domain first.
    #[inline]
    pub fn estimate(&self, log_sum: f64, m_u: f64) -> f64 {
        ((log_sum + clamp_weight(m_u).ln()) / self.n_hat_total).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_pss_matches_geometric_mean() {
        // Fig. 8: path <federalState 0.82, assembly 0.98> has pss
        // √(0.82·0.98) ≈ 0.897.
        let weights = [0.82f64, 0.98];
        let log_sum: f64 = weights.iter().map(|w| w.ln()).sum();
        let psi = exact_pss(log_sum, 2);
        assert!((psi - (0.82f64 * 0.98).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_edge_pss_is_the_weight() {
        assert!((exact_pss(0.98f64.ln(), 1) - 0.98).abs() < 1e-12);
    }

    #[test]
    fn clamp_domain() {
        assert_eq!(clamp_weight(-0.5), MIN_WEIGHT);
        assert_eq!(clamp_weight(0.0), MIN_WEIGHT);
        assert_eq!(clamp_weight(1.5), 1.0);
        assert_eq!(clamp_weight(0.7), 0.7);
    }

    #[test]
    fn estimate_with_empty_prefix_bounds_any_match() {
        // At the source node, W_si = 1 (log 0); ψ̂ = m(u)^(1/n̂).
        let est = PssEstimator::new(4, 1);
        let m_u = 0.9;
        let psi_hat = est.estimate(0.0, m_u);
        assert!((psi_hat - 0.9f64.powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn estimator_hop_budget_scales_with_segments() {
        assert_eq!(PssEstimator::new(4, 1).hop_budget(), 4);
        assert_eq!(PssEstimator::new(4, 3).hop_budget(), 12);
    }

    proptest! {
        /// Theorem 1 — admissibility: for any weight sequence of length
        /// n* ≤ n̂ and any split point i, the estimate computed from the
        /// explored prefix and m(u) ≥ (the next unexplored weight) dominates
        /// the exact pss.
        #[test]
        fn prop_estimate_is_admissible(
            raw in proptest::collection::vec(0.01f64..=1.0, 1..8),
            split in 0usize..8,
            slack in 0.0f64..0.3,
        ) {
            let weights: Vec<f64> = raw.iter().map(|&w| clamp_weight(w)).collect();
            let n_star = weights.len();
            let n_hat = 8usize; // n* ≤ n̂ always holds here
            let split = split.min(n_star - 1); // at least one unexplored edge
            let est = PssEstimator::new(n_hat, 1);

            let log_prefix: f64 = weights[..split].iter().map(|w| w.ln()).sum();
            // Lemma 1: m(u_i) is the max adjacent weight, hence ≥ the next
            // edge's weight; model it as that weight plus arbitrary slack.
            let m_u = (weights[split] + slack).min(1.0);

            let psi_hat = est.estimate(log_prefix, m_u);
            let log_full: f64 = weights.iter().map(|w| w.ln()).sum();
            let psi = exact_pss(log_full, n_star);
            prop_assert!(
                psi_hat >= psi - 1e-12,
                "estimate {psi_hat} must dominate exact {psi}"
            );
        }

        /// The exact pss of weights in (0,1] lies in (0,1].
        #[test]
        fn prop_pss_in_unit_interval(
            raw in proptest::collection::vec(0.0f64..=1.0, 1..10),
        ) {
            let log_sum: f64 = raw.iter().map(|&w| clamp_weight(w).ln()).sum();
            let psi = exact_pss(log_sum, raw.len());
            prop_assert!(psi > 0.0 && psi <= 1.0 + 1e-12);
        }

        /// Geometric-mean bounds: min w ≤ ψ ≤ max w.
        #[test]
        fn prop_pss_between_min_and_max(
            raw in proptest::collection::vec(0.05f64..=1.0, 1..10),
        ) {
            let ws: Vec<f64> = raw.iter().map(|&w| clamp_weight(w)).collect();
            let log_sum: f64 = ws.iter().map(|w| w.ln()).sum();
            let psi = exact_pss(log_sum, ws.len());
            let lo = ws.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ws.iter().cloned().fold(0.0, f64::max);
            prop_assert!(psi >= lo - 1e-12 && psi <= hi + 1e-12);
        }

        /// Larger m(u) or shorter budget never decreases the estimate's
        /// dominance margin (monotonicity used implicitly by Lemma 2).
        #[test]
        fn prop_estimate_monotone_in_m(
            log_sum in -5.0f64..0.0,
            m1 in 0.05f64..1.0,
            m2 in 0.05f64..1.0,
        ) {
            let est = PssEstimator::new(4, 2);
            let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
            prop_assert!(est.estimate(log_sum, lo) <= est.estimate(log_sum, hi) + 1e-12);
        }

        /// *Strict* float-level weak monotonicity in m(u) — no tolerance,
        /// including adjacent f64 pairs. The scan kernels' two-pass seed
        /// relies on this: the f32 upper-bound row dominates the exact row
        /// element-wise, so `estimate(quantised) < τ` must imply
        /// `estimate(exact) < τ`, which holds exactly when the estimator is
        /// weakly monotone at the float level (clamp, ln, division by a
        /// positive constant and exp all preserve `≤`).
        #[test]
        fn prop_estimate_float_monotone_in_m(
            log_sum in -5.0f64..0.0,
            m1 in 0.0f64..1.5,
            m2 in 0.0f64..1.5,
            n_hat in 1usize..6,
            segs in 1usize..4,
        ) {
            let est = PssEstimator::new(n_hat, segs);
            let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
            prop_assert!(est.estimate(log_sum, lo) <= est.estimate(log_sum, hi));
            // Adjacent representable pair: the tightest possible gap a
            // round-up quantisation can introduce.
            let up = lo.next_up();
            prop_assert!(est.estimate(log_sum, lo) <= est.estimate(log_sum, up));
        }
    }
}
