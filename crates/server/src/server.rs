//! The socket serving tier: `TcpListener` + per-connection thread pairs in
//! front of [`BatchScheduler::serve`].
//!
//! ## Threading model
//!
//! One accept thread plus **two threads per connection** — a *reader* that
//! decodes frames and submits queries, and a *writer* that resolves
//! [`Ticket`]s and streams replies back in request order. The pair is
//! linked by a bounded channel sized [`ServerConfig::max_pipeline`], which
//! gives pipelining its backpressure: a client that floods requests
//! without reading replies eventually blocks its own reader. No mutexes,
//! no polling on the reply path — the writer parks inside
//! [`Ticket::wait`], so response latency is the scheduler's latency.
//!
//! ## Hardening (every peer is untrusted)
//!
//! * frame lengths are validated against [`ServerConfig::max_frame_len`]
//!   **before any allocation**;
//! * payload checksums are verified before a request is dispatched;
//! * a started frame must complete within [`ServerConfig::frame_timeout`]
//!   (slowloris) and an idle connection is closed after
//!   [`ServerConfig::idle_timeout`];
//! * writes time out after [`ServerConfig::write_timeout`];
//! * the connection count is capped; excess peers get a typed `Busy` frame;
//! * graceful drain: in-flight tickets resolve, queries arriving inside
//!   the [`ServerConfig::drain_grace`] window are answered
//!   `Shed(Shutdown)`, then connections close and the scheduler drains.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kgraph::io::codec::checksum64;
use obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use sgq::sched::{BatchScheduler, SchedBackend, SchedHandle, SchedOutcome, ShedReason, Ticket};
use sgq::{Result, SgqError};

use crate::proto::{
    self, encode_query_reply, encode_response, frame, validate_frame_len, ErrorCode, Request,
    Response, MAGIC,
};

/// Tuning for the serving tier. Defaults are production-shaped; tests
/// shrink the timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Hard cap on a frame's payload length, enforced before allocation.
    pub max_frame_len: u32,
    /// Socket read timeout granularity — how often blocked reads wake to
    /// check the drain flag and deadlines.
    pub read_poll: Duration,
    /// A started frame must complete within this window (slowloris guard).
    pub frame_timeout: Duration,
    /// A connection with no traffic at a frame boundary is closed after
    /// this long.
    pub idle_timeout: Duration,
    /// Socket write timeout; a peer that stops reading is cut off.
    pub write_timeout: Duration,
    /// Requests a connection may have in flight before its reader blocks.
    pub max_pipeline: usize,
    /// Concurrent connection cap; excess peers get a `Busy` error frame.
    pub max_connections: usize,
    /// After drain begins, queries already in the pipe are answered
    /// `Shed(Shutdown)` for this long before the connection closes.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            read_poll: Duration::from_millis(25),
            frame_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            max_pipeline: 128,
            max_connections: 256,
            drain_grace: Duration::from_millis(500),
        }
    }
}

impl ServerConfig {
    /// Rejects configurations that would disable the hardening (zero
    /// timeouts, unbounded frames) or overflow deadline arithmetic.
    pub fn validate(&self) -> Result<()> {
        let hour = Duration::from_secs(3600);
        if self.max_frame_len < 4096 {
            return Err(SgqError::InvalidConfig(format!(
                "max_frame_len {} below the 4 KiB protocol minimum",
                self.max_frame_len
            )));
        }
        if self.max_frame_len > (1 << 26) {
            return Err(SgqError::InvalidConfig(format!(
                "max_frame_len {} above the 64 MiB cap",
                self.max_frame_len
            )));
        }
        if self.read_poll.is_zero() || self.read_poll > hour {
            return Err(SgqError::InvalidConfig(
                "read_poll must be in (0, 1h]".into(),
            ));
        }
        for (name, d) in [
            ("frame_timeout", self.frame_timeout),
            ("idle_timeout", self.idle_timeout),
            ("write_timeout", self.write_timeout),
        ] {
            if d < self.read_poll || d > hour {
                return Err(SgqError::InvalidConfig(format!(
                    "{name} must be in [read_poll, 1h]"
                )));
            }
        }
        if self.drain_grace > hour {
            return Err(SgqError::InvalidConfig("drain_grace must be <= 1h".into()));
        }
        if self.max_pipeline == 0 {
            return Err(SgqError::InvalidConfig("max_pipeline must be >= 1".into()));
        }
        if self.max_connections == 0 {
            return Err(SgqError::InvalidConfig(
                "max_connections must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Pre-registered serving-tier metrics (one registry, shared handles).
struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    connections_total: Counter,
    connections_open: Gauge,
    requests_query: Counter,
    requests_metrics: Counter,
    requests_ping: Counter,
    requests_shutdown: Counter,
    resp_exact: Counter,
    resp_degraded: Counter,
    resp_shed: Counter,
    resp_failed: Counter,
    drain_shed: Counter,
    busy_rejects: Counter,
    frame_bytes: Histogram,
}

impl ServerMetrics {
    fn new(addr: SocketAddr) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let r = &registry;
        // Endpoint-derived label value: exercises the exposition-format
        // escaping on every scrape.
        r.gauge_labeled(
            "semkg_server_info",
            "addr",
            &addr.to_string(),
            "listener address (value 1 while serving)",
        )
        .set(1);
        Self {
            connections_total: r.counter("semkg_server_connections_total", "connections accepted"),
            connections_open: r.gauge(
                "semkg_server_connections_open",
                "connections currently open",
            ),
            requests_query: r.counter_labeled(
                "semkg_server_requests_total",
                "kind",
                "query",
                "requests decoded, by kind",
            ),
            requests_metrics: r.counter_labeled(
                "semkg_server_requests_total",
                "kind",
                "metrics",
                "requests decoded, by kind",
            ),
            requests_ping: r.counter_labeled(
                "semkg_server_requests_total",
                "kind",
                "ping",
                "requests decoded, by kind",
            ),
            requests_shutdown: r.counter_labeled(
                "semkg_server_requests_total",
                "kind",
                "shutdown",
                "requests decoded, by kind",
            ),
            resp_exact: r.counter_labeled(
                "semkg_server_responses_total",
                "outcome",
                "exact",
                "query replies sent, by outcome",
            ),
            resp_degraded: r.counter_labeled(
                "semkg_server_responses_total",
                "outcome",
                "degraded",
                "query replies sent, by outcome",
            ),
            resp_shed: r.counter_labeled(
                "semkg_server_responses_total",
                "outcome",
                "shed",
                "query replies sent, by outcome",
            ),
            resp_failed: r.counter_labeled(
                "semkg_server_responses_total",
                "outcome",
                "failed",
                "query replies sent, by outcome",
            ),
            drain_shed: r.counter(
                "semkg_server_drain_shed_total",
                "queries answered Shed(Shutdown) during drain",
            ),
            busy_rejects: r.counter(
                "semkg_server_busy_rejects_total",
                "connections refused at the connection cap",
            ),
            frame_bytes: r.histogram("semkg_server_frame_bytes", "request frame payload sizes"),
            registry,
        }
    }

    fn count_protocol_error(&self, code: ErrorCode) {
        self.registry
            .counter_labeled(
                "semkg_server_protocol_errors_total",
                "kind",
                &code.to_string(),
                "frames rejected before dispatch, by error code",
            )
            .inc();
    }

    fn count_outcome(&self, outcome: &SchedOutcome) {
        match outcome {
            SchedOutcome::Exact(_) => self.resp_exact.inc(),
            SchedOutcome::Degraded { .. } => self.resp_degraded.inc(),
            SchedOutcome::Shed(_) => self.resp_shed.inc(),
            SchedOutcome::Failed(_) => self.resp_failed.inc(),
        }
    }
}

/// Shared flags + metrics for one serving session.
struct ServerState {
    draining: AtomicBool,
    open: AtomicUsize,
    metrics: ServerMetrics,
}

/// Handle passed to the [`serve`] closure: observe and control the running
/// server (mirrors [`SchedHandle`] one layer down).
pub struct ServerHandle<'a> {
    addr: SocketAddr,
    state: &'a ServerState,
}

impl ServerHandle<'_> {
    /// The bound listener address (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once drain has begun (wire `Shutdown` request or
    /// [`ServerHandle::begin_drain`]).
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::Acquire)
    }

    /// Starts a graceful drain: stop accepting, answer in-pipe queries
    /// `Shed(Shutdown)`, close connections after the grace window.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::Release);
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> usize {
        self.state.open.load(Ordering::Acquire)
    }

    /// The serving tier's own metrics registry (the scrape endpoint merges
    /// this with the scheduler's and any extra registries).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.state.metrics.registry)
    }
}

/// Runs the serving tier over `listener` until the closure returns (its
/// return triggers drain) or a wire `Shutdown` request drains it first.
///
/// `extra` registries (typically the backing service's) are merged into
/// every metrics scrape alongside the scheduler's and the server's own.
/// The closure runs on the caller's thread with accept/connection threads
/// scoped around it — a minimal run loop is
/// `|h| while !h.is_draining() { std::thread::sleep(POLL) }`.
pub fn serve<B, F, R>(
    listener: TcpListener,
    backend: &B,
    sched: sgq::SchedConfig,
    config: ServerConfig,
    extra: &[Arc<MetricsRegistry>],
    f: F,
) -> Result<R>
where
    B: SchedBackend,
    F: FnOnce(&ServerHandle<'_>) -> R,
{
    config.validate()?;
    let addr = listener
        .local_addr()
        .map_err(|e| SgqError::Scheduler(format!("listener address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| SgqError::Scheduler(format!("nonblocking listener: {e}")))?;
    let state = ServerState {
        draining: AtomicBool::new(false),
        open: AtomicUsize::new(0),
        metrics: ServerMetrics::new(addr),
    };
    BatchScheduler::serve(backend, sched, |handle| {
        std::thread::scope(|s| {
            let state = &state;
            let config = &config;
            s.spawn(|| accept_loop(s, &listener, handle, backend, config, extra, state));
            let out = f(&ServerHandle { addr, state });
            // The closure returning is the SIGTERM-equivalent: drain.
            state.draining.store(true, Ordering::Release);
            out
            // Scope exit joins the accept thread and every connection
            // pair; in-flight tickets resolve while the scheduler is
            // still live, then `BatchScheduler::serve` drains its queue.
        })
    })
}

fn accept_loop<'scope, 'env, B: SchedBackend>(
    s: &'scope std::thread::Scope<'scope, 'env>,
    listener: &'scope TcpListener,
    handle: &'scope SchedHandle<'_, B>,
    backend: &'scope B,
    config: &'scope ServerConfig,
    extra: &'scope [Arc<MetricsRegistry>],
    state: &'scope ServerState,
) {
    while !state.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections_total.inc();
                if state.open.load(Ordering::Acquire) >= config.max_connections {
                    state.metrics.busy_rejects.inc();
                    reject_busy(stream, config);
                    continue;
                }
                state.open.fetch_add(1, Ordering::AcqRel);
                state.metrics.connections_open.add(1);
                s.spawn(move || {
                    connection(stream, handle, backend, config, extra, state);
                    state.open.fetch_sub(1, Ordering::AcqRel);
                    state.metrics.connections_open.add(-1);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Refuses a connection over the cap: magic + `Busy` error frame, then a
/// short read-drain so the reply is not torn away by a reset.
fn reject_busy(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_read_timeout(Some(config.read_poll));
    let _ = stream.set_nodelay(true);
    if stream.write_all(&MAGIC).is_err() {
        return;
    }
    let payload = encode_response(&Response::Error {
        code: ErrorCode::Busy,
        detail: "connection limit reached, retry later".into(),
    });
    if stream.write_all(&frame(&payload)).is_err() {
        return;
    }
    let _ = stream.shutdown(Shutdown::Write);
    // Drain whatever the peer already sent (its magic echo at least) so
    // closing does not reset the socket before the error frame is read.
    let deadline = Instant::now() + config.frame_timeout;
    let mut scratch = [0u8; 256];
    while Instant::now() < deadline {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// What one message through the reader→writer channel carries.
enum WriterMsg {
    /// A submitted query: the writer blocks in [`Ticket::wait`] and
    /// encodes the outcome.
    Ticket(Ticket),
    /// An already-framed reply (metrics, pong, errors, drain sheds).
    Immediate(Vec<u8>),
}

fn connection<B: SchedBackend>(
    mut stream: TcpStream,
    handle: &SchedHandle<'_, B>,
    backend: &B,
    config: &ServerConfig,
    extra: &[Arc<MetricsRegistry>],
    state: &ServerState,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_poll));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    if stream.write_all(&MAGIC).is_err() {
        return;
    }
    // The peer must echo the magic before its first frame; anything else
    // (HTTP, a port scan) is cut off with a typed error.
    let deadline = Instant::now() + config.frame_timeout;
    let mut echo: Vec<u8> = Vec::with_capacity(MAGIC.len());
    loop {
        if echo.len() == MAGIC.len() {
            break;
        }
        if Instant::now() >= deadline {
            state.metrics.count_protocol_error(ErrorCode::BadMagic);
            return;
        }
        let want = MAGIC.len() - echo.len();
        match pull(&mut stream, &mut echo, want) {
            Pull::Got | Pull::WouldBlock => {}
            Pull::Eof | Pull::Err => return,
        }
    }
    if echo != MAGIC {
        state.metrics.count_protocol_error(ErrorCode::BadMagic);
        let payload = encode_response(&Response::Error {
            code: ErrorCode::BadMagic,
            detail: "connection preamble is not SKGWIRE1".into(),
        });
        let _ = stream.write_all(&frame(&payload));
        return;
    }
    let Ok(wstream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = std::sync::mpsc::sync_channel::<WriterMsg>(config.max_pipeline);
    let metrics = &state.metrics;
    std::thread::scope(|cs| {
        cs.spawn(move || writer_loop(wstream, rx, metrics));
        reader_loop(&mut stream, handle, backend, config, extra, state, &tx);
        // Reader done: half-close our send side only after the writer has
        // flushed (it owns the clone); dropping `tx` ends its loop.
        drop(tx);
    });
    let _ = stream.shutdown(Shutdown::Both);
}

fn writer_loop(mut stream: TcpStream, rx: Receiver<WriterMsg>, metrics: &ServerMetrics) {
    // After a write failure the channel is still drained — tickets must be
    // waited on (and counted) even when the peer is gone.
    let mut sink_dead = false;
    for msg in rx {
        let bytes = match msg {
            WriterMsg::Immediate(bytes) => bytes,
            WriterMsg::Ticket(ticket) => {
                let response = ticket.wait();
                metrics.count_outcome(&response.outcome);
                frame(&encode_query_reply(&response.outcome))
            }
        };
        if !sink_dead && stream.write_all(&bytes).is_err() {
            sink_dead = true;
        }
    }
    if !sink_dead {
        let _ = stream.flush();
    }
}

#[allow(clippy::too_many_arguments)]
fn reader_loop<B: SchedBackend>(
    stream: &mut TcpStream,
    handle: &SchedHandle<'_, B>,
    backend: &B,
    config: &ServerConfig,
    extra: &[Arc<MetricsRegistry>],
    state: &ServerState,
    tx: &SyncSender<WriterMsg>,
) {
    let metrics = &state.metrics;
    let mut last_activity = Instant::now();
    let mut drain_started: Option<Instant> = None;
    loop {
        let draining = state.draining.load(Ordering::Acquire);
        if draining {
            let started = *drain_started.get_or_insert_with(Instant::now);
            if started.elapsed() >= config.drain_grace {
                return;
            }
        }
        let recv = recv_frame(stream, config);
        match recv {
            Recv::Nothing => {
                if !draining && last_activity.elapsed() >= config.idle_timeout {
                    return;
                }
                continue;
            }
            Recv::Closed => return,
            Recv::Torn => {
                // Torn final frame / slowloris: nothing useful to say to a
                // peer that stopped mid-frame. Count and close.
                metrics.count_protocol_error(ErrorCode::Malformed);
                return;
            }
            Recv::Io => return,
            Recv::TooLarge(len) => {
                metrics.count_protocol_error(ErrorCode::FrameTooLarge);
                let payload = encode_response(&Response::Error {
                    code: ErrorCode::FrameTooLarge,
                    detail: format!("frame length {len} outside (0, {}]", config.max_frame_len),
                });
                let _ = tx.send(WriterMsg::Immediate(frame(&payload)));
                return;
            }
            Recv::BadChecksum => {
                metrics.count_protocol_error(ErrorCode::ChecksumMismatch);
                let payload = encode_response(&Response::Error {
                    code: ErrorCode::ChecksumMismatch,
                    detail: "payload checksum mismatch".into(),
                });
                let _ = tx.send(WriterMsg::Immediate(frame(&payload)));
                return;
            }
            Recv::Frame(payload) => {
                last_activity = Instant::now();
                metrics.frame_bytes.record(payload.len() as u64);
                match proto::decode_request(&payload) {
                    Ok(Request::Query {
                        query,
                        deadline_us,
                        priority,
                    }) => {
                        metrics.requests_query.inc();
                        // Re-load: drain may have begun while this frame
                        // was in flight inside `recv_frame`.
                        let msg = if state.draining.load(Ordering::Acquire) {
                            // The scheduler's drain begins only after the
                            // connection threads exit; the serving tier
                            // itself sheds new arrivals first.
                            metrics.drain_shed.inc();
                            let outcome = SchedOutcome::Shed(ShedReason::Shutdown);
                            metrics.count_outcome(&outcome);
                            WriterMsg::Immediate(frame(&encode_query_reply(&outcome)))
                        } else {
                            WriterMsg::Ticket(handle.submit(
                                &query,
                                Duration::from_micros(deadline_us),
                                priority,
                            ))
                        };
                        if tx.send(msg).is_err() {
                            return;
                        }
                    }
                    Ok(Request::Metrics) => {
                        metrics.requests_metrics.inc();
                        let text = render_scrape(handle, extra, state, config.max_frame_len);
                        let payload = encode_response(&Response::Metrics(text));
                        if tx.send(WriterMsg::Immediate(frame(&payload))).is_err() {
                            return;
                        }
                    }
                    Ok(Request::Ping) => {
                        metrics.requests_ping.inc();
                        let payload = encode_response(&Response::Pong(backend.current_epoch()));
                        if tx.send(WriterMsg::Immediate(frame(&payload))).is_err() {
                            return;
                        }
                    }
                    Ok(Request::Shutdown) => {
                        metrics.requests_shutdown.inc();
                        let payload = encode_response(&Response::ShutdownAck);
                        let _ = tx.send(WriterMsg::Immediate(frame(&payload)));
                        state.draining.store(true, Ordering::Release);
                    }
                    Err(we) => {
                        metrics.count_protocol_error(we.code);
                        let payload = encode_response(&Response::Error {
                            code: we.code,
                            detail: we.detail,
                        });
                        let _ = tx.send(WriterMsg::Immediate(frame(&payload)));
                        return;
                    }
                }
            }
        }
    }
}

/// Merged scrape: extra registries (the backing service), the scheduler's
/// snapshot, then the server's own — truncated at a char boundary to fit
/// one frame.
fn render_scrape<B: SchedBackend>(
    handle: &SchedHandle<'_, B>,
    extra: &[Arc<MetricsRegistry>],
    state: &ServerState,
    max_frame_len: u32,
) -> String {
    let mut snap = MetricsSnapshot::default();
    for registry in extra {
        snap.extend(registry.snapshot());
    }
    snap.extend(handle.metrics());
    snap.extend(state.metrics.registry.snapshot());
    let mut text = snap.to_prometheus();
    // Frame budget: kind byte + u32 string length prefix.
    let budget = (max_frame_len as usize).saturating_sub(8);
    if text.len() > budget {
        let mut cut = budget;
        while cut > 0 && !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text.truncate(cut);
    }
    text
}

// ---------------------------------------------------------------------------
// Frame reception
// ---------------------------------------------------------------------------

enum Recv {
    /// A complete, checksum-verified payload.
    Frame(Vec<u8>),
    /// No bytes arrived within one poll interval.
    Nothing,
    /// Clean EOF at a frame boundary.
    Closed,
    /// EOF or deadline expiry mid-frame.
    Torn,
    /// Length prefix outside `(0, max_frame_len]`.
    TooLarge(u32),
    /// Frame completed but the checksum did not verify.
    BadChecksum,
    /// Unrecoverable socket error.
    Io,
}

enum Pull {
    Got,
    WouldBlock,
    Eof,
    Err,
}

/// Reads up to `want` more bytes into `out` (single `read` call; the
/// socket's read timeout bounds the wait).
fn pull(stream: &mut TcpStream, out: &mut Vec<u8>, want: usize) -> Pull {
    let mut tmp = [0u8; 4096];
    let n = want.min(tmp.len());
    let Some(dst) = tmp.get_mut(..n) else {
        return Pull::Err;
    };
    match stream.read(dst) {
        Ok(0) => Pull::Eof,
        Ok(got) => {
            if let Some(chunk) = dst.get(..got) {
                out.extend_from_slice(chunk);
            }
            Pull::Got
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Pull::WouldBlock
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Pull::Got,
        Err(_) => Pull::Err,
    }
}

/// Receives one frame. The length prefix is validated before the payload
/// buffer is allocated; once the first header byte arrives the whole frame
/// must complete within [`ServerConfig::frame_timeout`].
fn recv_frame(stream: &mut TcpStream, config: &ServerConfig) -> Recv {
    let mut header: Vec<u8> = Vec::with_capacity(4);
    match pull(stream, &mut header, 4) {
        Pull::WouldBlock => return Recv::Nothing,
        Pull::Eof => return Recv::Closed,
        Pull::Err => return Recv::Io,
        Pull::Got => {}
    }
    let deadline = Instant::now() + config.frame_timeout;
    while header.len() < 4 {
        if Instant::now() >= deadline {
            return Recv::Torn;
        }
        let want = 4 - header.len();
        match pull(stream, &mut header, want) {
            Pull::Eof => return Recv::Torn,
            Pull::Err => return Recv::Io,
            Pull::Got | Pull::WouldBlock => {}
        }
    }
    let Ok(len_bytes) = <[u8; 4]>::try_from(header.as_slice()) else {
        return Recv::Io;
    };
    let len = u32::from_le_bytes(len_bytes);
    if validate_frame_len(len, config.max_frame_len).is_err() {
        return Recv::TooLarge(len);
    }
    // Cap held: at most max_frame_len + 8 bytes are ever allocated here.
    let total = len as usize + 8;
    let mut body: Vec<u8> = Vec::with_capacity(total);
    while body.len() < total {
        if Instant::now() >= deadline {
            return Recv::Torn;
        }
        let want = total - body.len();
        match pull(stream, &mut body, want) {
            Pull::Eof => return Recv::Torn,
            Pull::Err => return Recv::Io,
            Pull::Got | Pull::WouldBlock => {}
        }
    }
    let Some(payload) = body.get(..len as usize) else {
        return Recv::Io;
    };
    let Some(tail) = body.get(len as usize..) else {
        return Recv::Io;
    };
    let Ok(checksum_bytes) = <[u8; 8]>::try_from(tail) else {
        return Recv::Io;
    };
    if u64::from_le_bytes(checksum_bytes) != checksum64(payload) {
        return Recv::BadChecksum;
    }
    body.truncate(len as usize);
    Recv::Frame(body)
}
