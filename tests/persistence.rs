//! Integration tests for the durable storage layer: binary snapshots, the
//! write-ahead log, and whole-deployment cold start.
//!
//! The load-bearing property throughout is *restart fidelity*: a service
//! reopened from disk answers every query bit-identically (same pivots,
//! same scores, same paths down to the edge ids) to the service that never
//! restarted.

use datagen::dataset::DatasetSpec;
use datagen::workload::produced_workload;
use datagen::{apply_churn, apply_churn_stream, churn_stream};
use kgraph::{GraphView, VersionedGraph};
use proptest::prelude::*;
use sgq::{LiveDeployment, LiveQueryService, QueryService, SgqConfig, WAL_FILE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct TestDir(PathBuf);

impl TestDir {
    fn new(label: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "semkg_persistence_{label}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> SgqConfig {
    SgqConfig {
        k: 20,
        tau: 0.3,
        workers: 4,
        ..SgqConfig::default()
    }
}

/// One adjacency entry: neighbor name, edge id, predicate label, direction.
type AdjEntry = (String, u32, String, bool);

/// Full adjacency fingerprint of a graph view: names, edge ids, predicate
/// labels, directions, in iteration order. Agreement here means any search
/// runs identically (expansion order, tie-breaks, path edge ids).
fn fingerprint<G: GraphView>(g: &G) -> Vec<(String, Vec<AdjEntry>)> {
    g.nodes()
        .map(|n| {
            (
                g.node_name(n).to_string(),
                g.neighbors(n)
                    .map(|nb| {
                        (
                            g.node_name(nb.node).to_string(),
                            u32::from(nb.edge),
                            g.predicate_name(nb.predicate).to_string(),
                            nb.outgoing,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Every workload query must answer bit-identically on both services.
fn assert_services_agree(
    label: &str,
    workload: &[datagen::BenchQuery],
    a: &LiveQueryService<'_>,
    b: &LiveQueryService<'_>,
) {
    let mut compared = 0usize;
    for q in workload {
        let ra = a.query(&q.graph).expect("query on a");
        let rb = b.query(&q.graph).expect("query on b");
        assert_eq!(ra.matches, rb.matches, "{label}: diverged on {}", q.id);
        compared += ra.matches.len();
    }
    assert!(compared > 0, "{label}: workload produced no matches");
}

/// A frozen graph's answers survive a binary save→load round trip exactly,
/// and agree with the JSON snapshot path.
#[test]
fn binary_snapshot_round_trips_query_answers() {
    let dir = TestDir::new("binary_roundtrip");
    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    let workload = produced_workload(&ds);

    let bin_path = dir.0.join("g.kgb");
    let json_path = dir.0.join("g.json");
    kgraph::io::binary::save(&ds.graph, 0, &bin_path).unwrap();
    kgraph::io::save_snapshot(&ds.graph, &json_path).unwrap();

    let (from_bin, epoch) = kgraph::io::binary::load(&bin_path).unwrap();
    assert_eq!(epoch, 0);
    let from_json = kgraph::io::load_snapshot(&json_path).unwrap();
    assert_eq!(fingerprint(&from_bin), fingerprint(&ds.graph));
    assert_eq!(fingerprint(&from_json), fingerprint(&ds.graph));

    let original = QueryService::build(&ds.graph, &space, &ds.library, config());
    let reloaded = QueryService::build(&from_bin, &space, &ds.library, config());
    for q in &workload {
        let a = original.query(&q.graph).unwrap();
        let b = reloaded.query(&q.graph).unwrap();
        assert_eq!(a.matches, b.matches, "diverged on {}", q.id);
    }
}

/// The acceptance criterion end to end: build a deployment, run over 1k
/// churn ops with periodic commits and a mid-stream checkpoint, crash with
/// a staged-but-uncommitted tail, reopen — every query answers
/// bit-identically to the never-restarted in-memory service.
#[test]
fn restart_fidelity_after_churn_checkpoint_and_crash() {
    let dir = TestDir::new("restart_fidelity");
    let deploy_dir = dir.0.join("kg");
    let ds = DatasetSpec::tiny().build();
    let workload = produced_workload(&ds);

    let deployment = LiveDeployment::create(
        &deploy_dir,
        ds.graph.clone(),
        ds.oracle_space(),
        ds.library.clone(),
    )
    .unwrap();
    let service = deployment.service(config());
    let live = Arc::clone(deployment.versioned());

    let ops = churn_stream(&ds, 1200, 7);
    assert!(ops.len() >= 1000);
    for (i, op) in ops.iter().enumerate() {
        apply_churn(&live, op);
        if (i + 1) % 64 == 0 {
            live.commit();
        }
        if i + 1 == 600 {
            // Mid-stream durability maintenance: compaction + snapshot +
            // WAL truncation, all while the service keeps serving.
            let report = service.checkpoint().unwrap();
            assert!(report.edges > 0);
        }
    }
    live.commit();
    // Stage a tail that never commits: the crash must not resurrect it.
    live.insert_triple(("GhostCar", "Automobile"), "assembly", ("X", "Country"));
    service.refresh();
    let stats = service.stats();
    assert!(stats.epoch > 0, "churn committed many epochs: {stats:?}");

    // Reopen from disk while the original service keeps running (the
    // original's WAL is synced through the last commit marker, which is
    // all recovery is allowed to use).
    let reopened = LiveDeployment::open(&deploy_dir).unwrap();
    let recovery = *reopened.recovery();
    assert!(recovery.epochs_replayed > 0, "{recovery:?}");
    assert_eq!(recovery.recovered_epoch, live.epoch());
    let restarted = reopened.service(config());
    assert!(restarted.pin().graph().node_by_name("GhostCar").is_none());
    assert_eq!(
        fingerprint(&live.snapshot()),
        fingerprint(&reopened.versioned().snapshot()),
        "recovered adjacency (edge ids included) must match the live store"
    );
    assert_services_agree("restart", &workload, &service, &restarted);

    // Prepared queries replay bit-identically across the restart too.
    let q = &workload[0].graph;
    let live_prepared = service.prepare(q).unwrap();
    let cold_prepared = restarted.prepare(q).unwrap();
    assert_eq!(
        service.execute(&live_prepared).unwrap().matches,
        restarted.execute(&cold_prepared).unwrap().matches,
    );
}

/// Crash-truncate the WAL at *every* byte offset: recovery must always
/// succeed and recover exactly the epochs whose commit markers survived,
/// with the graph matching an in-memory replay of the same op prefix.
#[test]
fn recovery_from_truncated_wal_matches_replay_prefix() {
    const COMMIT_EVERY: usize = 25;
    let dir = TestDir::new("truncated_wal");
    let deploy_dir = dir.0.join("kg");
    let ds = DatasetSpec::tiny().build();
    let ops = churn_stream(&ds, 150, 11);

    let deployment = LiveDeployment::create(
        &deploy_dir,
        ds.graph.clone(),
        ds.oracle_space(),
        ds.library.clone(),
    )
    .unwrap();
    {
        let live = deployment.versioned();
        for (i, op) in ops.iter().enumerate() {
            apply_churn(live, op);
            if (i + 1) % COMMIT_EVERY == 0 {
                live.commit();
            }
        }
    }
    drop(deployment); // flush
    let wal_path = deploy_dir.join(WAL_FILE);
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let full_epochs = (ops.len() / COMMIT_EVERY) as u64;

    // A spread of cut points including ragged mid-record offsets.
    let cuts: Vec<usize> = (8..wal_bytes.len()).step_by(97).collect();
    assert!(cuts.len() > 10);
    for &cut in &cuts {
        std::fs::write(&wal_path, &wal_bytes[..cut]).unwrap();
        let reopened = LiveDeployment::open(&deploy_dir).expect("recovery must not fail");
        let epoch = reopened.versioned().epoch();
        assert!(epoch <= full_epochs, "cut {cut}: epoch {epoch}");
        // Reference: replay exactly the ops covered by the recovered epochs.
        let reference = VersionedGraph::new(ds.graph.clone());
        apply_churn_stream(&reference, &ops[..epoch as usize * COMMIT_EVERY]);
        reference.commit();
        assert_eq!(
            fingerprint(&reopened.versioned().snapshot()),
            fingerprint(&reference.snapshot()),
            "cut {cut}: recovered graph diverged from replay prefix"
        );
        // Recovery truncated the log; it must now be clean and reopenable.
        drop(reopened);
        let second = LiveDeployment::open(&deploy_dir).unwrap();
        assert!(!second.recovery().torn_tail);
        assert_eq!(second.versioned().epoch(), epoch);
        drop(second);
        std::fs::write(&wal_path, &wal_bytes).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Codec round trip under arbitrary churn: any op stream, committed and
    /// compacted, survives binary save→load with an identical adjacency
    /// fingerprint — and WAL recovery of the same stream agrees.
    #[test]
    fn prop_codec_roundtrip_of_churned_graphs(
        op_count in 1usize..300,
        seed in 0u64..10_000,
        compact_first in proptest::bool::ANY,
    ) {
        let dir = TestDir::new("prop_codec");
        let ds = DatasetSpec::tiny().build();
        let ops = churn_stream(&ds, op_count, seed);

        let live = VersionedGraph::new(ds.graph.clone());
        let wal_path = dir.0.join("wal.log");
        live.enable_wal(&wal_path).unwrap();
        apply_churn_stream(&live, &ops);
        live.commit();
        if compact_first {
            live.compact();
        }
        let snapshot = live.snapshot();
        drop(live); // crash (flushes the log)

        // WAL recovery replays to the same fingerprint as the pre-crash
        // snapshot (same epoch, same edge ids — compactions included).
        let (recovered, report) = VersionedGraph::recover(ds.graph.clone(), 0, &wal_path).unwrap();
        prop_assert_eq!(report.recovered_epoch, snapshot.epoch());
        prop_assert_eq!(
            fingerprint(&recovered.snapshot()),
            fingerprint(&snapshot)
        );

        // Binary snapshot round trip of the compacted CSR.
        let compacted = recovered.compact(); // no-op if already compacted
        let path = dir.0.join("g.kgb");
        kgraph::io::binary::save(compacted.base(), compacted.epoch(), &path).unwrap();
        let (back, epoch) = kgraph::io::binary::load(&path).unwrap();
        prop_assert_eq!(epoch, compacted.epoch());
        prop_assert_eq!(fingerprint(&back), fingerprint(compacted.base()));
    }
}
