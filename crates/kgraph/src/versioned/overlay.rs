//! The delta overlay: everything a [`crate::versioned::VersionedGraph`] has
//! accumulated on top of its immutable base CSR since the last compaction.
//!
//! Id spaces extend the base's dense ranges: delta node `i` has id
//! `base_nodes + i`, delta edge `i` has id `base_edges + i`, and newly
//! interned types/predicates continue the base interners. Deletions never
//! reclaim ids — a deleted edge is *tombstoned* and its id stays resolvable
//! (so stored matches keep rendering) but disappears from adjacency,
//! [`crate::GraphView::edges`] and [`crate::GraphView::edge_count`].

use crate::graph::{EdgeRecord, KnowledgeGraph};
use crate::ids::{EdgeId, NodeId, PredicateId, TypeId};
use crate::interner::Interner;
use rustc_hash::{FxHashMap, FxHashSet};

/// Mutations layered over one base [`KnowledgeGraph`] (see module docs).
///
/// The writer mutates one instance in place; [`commit`] freezes a clone of
/// it into the published snapshot, so the struct doubles as accumulator and
/// frozen overlay.
///
/// [`commit`]: crate::versioned::VersionedGraph::commit
#[derive(Debug, Clone, Default)]
pub struct DeltaOverlay {
    /// Node-id watermark of the base (delta node `i` ⇒ id `base_nodes + i`).
    pub(crate) base_nodes: u32,
    /// Edge-id watermark of the base.
    pub(crate) base_edges: u32,
    /// Type-id watermark of the base.
    pub(crate) base_types: u32,
    /// Predicate-id watermark of the base.
    pub(crate) base_predicates: u32,
    /// Names of nodes added since compaction, in insertion order.
    pub(crate) node_names: Vec<Box<str>>,
    /// Types of the added nodes (parallel to `node_names`).
    pub(crate) node_types: Vec<TypeId>,
    /// Name → id for the added nodes only (base names resolve via the base).
    pub(crate) name_to_node: FxHashMap<Box<str>, NodeId>,
    /// Types interned since compaction; overlay id `i` ⇒ `base_types + i`.
    pub(crate) new_types: Interner,
    /// Predicates interned since compaction; same offset scheme.
    pub(crate) new_predicates: Interner,
    /// Edges added since compaction, in insertion order.
    pub(crate) edges: Vec<EdgeRecord>,
    /// Per-source adjacency over the added edges (unified edge ids).
    pub(crate) out_adj: FxHashMap<NodeId, Vec<EdgeId>>,
    /// Per-target adjacency over the added edges (unified edge ids).
    pub(crate) in_adj: FxHashMap<NodeId, Vec<EdgeId>>,
    /// Deleted edges (base or delta ids).
    pub(crate) tombstones: FxHashSet<EdgeId>,
    /// Added nodes grouped by type (types may be base or new).
    pub(crate) nodes_by_type: FxHashMap<TypeId, Vec<NodeId>>,
}

impl DeltaOverlay {
    /// An empty overlay anchored at `base`'s id watermarks.
    pub(crate) fn empty(base: &KnowledgeGraph) -> Self {
        Self {
            base_nodes: base.node_count() as u32,
            base_edges: base.edge_count() as u32,
            base_types: base.type_count() as u32,
            base_predicates: base.predicate_count() as u32,
            ..Self::default()
        }
    }

    /// True when nothing has been added or tombstoned.
    pub fn is_empty(&self) -> bool {
        self.node_names.is_empty() && self.edges.is_empty() && self.tombstones.is_empty()
    }

    /// Number of nodes added on top of the base.
    pub fn added_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edges added on top of the base (tombstoned or not).
    pub fn added_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of tombstoned (deleted) edges.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Is `edge` deleted in this overlay?
    #[inline]
    pub(crate) fn is_tombstoned(&self, edge: EdgeId) -> bool {
        self.tombstones.contains(&edge)
    }

    /// Resolves a type label against base-then-delta, interning on miss.
    pub(crate) fn intern_type(&mut self, base: &KnowledgeGraph, label: &str) -> TypeId {
        if let Some(id) = base.type_id(label) {
            return id;
        }
        TypeId::new(self.base_types + self.new_types.intern(label))
    }

    /// Resolves an already-interned type label (base first, then delta).
    pub(crate) fn type_id(&self, base: &KnowledgeGraph, label: &str) -> Option<TypeId> {
        base.type_id(label).or_else(|| {
            self.new_types
                .get(label)
                .map(|i| TypeId::new(self.base_types + i))
        })
    }

    /// Resolves a predicate label against base-then-delta, interning on miss.
    pub(crate) fn intern_predicate(&mut self, base: &KnowledgeGraph, label: &str) -> PredicateId {
        if let Some(id) = base.predicate_id(label) {
            return id;
        }
        PredicateId::new(self.base_predicates + self.new_predicates.intern(label))
    }

    /// Resolves an already-interned predicate label (base first, then delta).
    pub(crate) fn predicate_id(&self, base: &KnowledgeGraph, label: &str) -> Option<PredicateId> {
        base.predicate_id(label).or_else(|| {
            self.new_predicates
                .get(label)
                .map(|i| PredicateId::new(self.base_predicates + i))
        })
    }

    /// Resolves an entity name to its node id (base first, then delta).
    pub(crate) fn node_by_name(&self, base: &KnowledgeGraph, name: &str) -> Option<NodeId> {
        base.node_by_name(name)
            .or_else(|| self.name_to_node.get(name).copied())
    }

    /// Resolves a node by name or creates it with type `ty`. Like
    /// [`crate::GraphBuilder::add_node`], an existing node keeps its type.
    pub(crate) fn resolve_or_add_node(
        &mut self,
        base: &KnowledgeGraph,
        name: &str,
        ty: &str,
    ) -> NodeId {
        if let Some(node) = self.node_by_name(base, name) {
            return node;
        }
        let type_id = self.intern_type(base, ty);
        let node = NodeId::new(self.base_nodes + self.node_names.len() as u32);
        let boxed: Box<str> = name.into();
        self.node_names.push(boxed.clone());
        self.node_types.push(type_id);
        self.name_to_node.insert(boxed, node);
        self.nodes_by_type.entry(type_id).or_default().push(node);
        node
    }

    /// Resolves a node id (base or delta) back to its entity name; used by
    /// the WAL to log id-addressed deletions by label.
    pub(crate) fn node_label<'a>(&'a self, base: &'a KnowledgeGraph, node: NodeId) -> &'a str {
        match node.index().checked_sub(self.base_nodes as usize) {
            None => base.node_name(node),
            Some(i) => &self.node_names[i],
        }
    }

    /// Resolves a predicate id (base or delta) back to its label.
    pub(crate) fn predicate_label<'a>(
        &'a self,
        base: &'a KnowledgeGraph,
        pred: PredicateId,
    ) -> &'a str {
        match pred.index().checked_sub(self.base_predicates as usize) {
            None => base.predicate_name(pred),
            Some(i) => self.new_predicates.resolve(i as u32),
        }
    }

    /// Appends a delta edge (caller has already ruled out duplicates).
    pub(crate) fn push_edge(&mut self, record: EdgeRecord) -> EdgeId {
        let id = EdgeId::new(self.base_edges + self.edges.len() as u32);
        self.edges.push(record);
        self.out_adj.entry(record.src).or_default().push(id);
        self.in_adj.entry(record.dst).or_default().push(id);
        id
    }
}
