//! # datagen — synthetic datasets, workloads and evaluation metrics
//!
//! The paper evaluates on DBpedia, Freebase and YAGO2 with QALD-4,
//! WebQuestions and RDF-3x workloads. Those multi-gigabyte resources cannot
//! ship with a reproduction, so this crate generates **schema-faithful
//! synthetic substitutes** (DESIGN.md §2): knowledge graphs whose predicate
//! vocabulary is grouped into semantic clusters, whose query intents are
//! answerable through several n-hop paraphrase schemas with controlled
//! cardinalities (the Fig. 1 situation), and whose ground truth is recorded
//! exactly during generation.
//!
//! The crate also provides the evaluation machinery of §VII: precision /
//! recall / F1, the Jaccard approximation degree (Eq. 12), Pearson
//! correlation for the simulated user study (Table VII), and the node/edge
//! noise injectors of §VII-E.

pub mod annotate;
pub mod churn;
pub mod dataset;
pub mod metrics;
pub mod noise;
pub mod schema;
pub mod workload;

pub use churn::{apply_churn, apply_churn_stream, churn_stream, ChurnOp};
pub use dataset::{BenchDataset, DatasetSpec};
pub use metrics::{f1_score, jaccard, pearson, precision_recall, EffReport};
pub use schema::{predicate_clusters, PredicateCluster};
pub use workload::BenchQuery;
