//! Query-noise injection (paper §VII-E, Fig. 17 / Table VIII).
//!
//! * **Node noise** — a query node's name or type is replaced "with a
//!   randomly selected synonym or abbreviation". We draw from the
//!   transformation library's alias pool most of the time (the engine can
//!   still resolve those through φ) and occasionally emit an out-of-library
//!   corruption — the paper's library likewise does not cover every alias
//!   its noise dictionary produces, which is what degrades effectiveness.
//! * **Edge noise** — a query edge's predicate is replaced "with one of its
//!   top-10 semantically similar predicates in the predicate semantic
//!   space E". The paper observes this hurts more: an almost-right
//!   predicate redirects the semantic guidance itself.

use embedding::PredicateSpace;
use kgraph::KnowledgeGraph;
use lexicon::TransformationLibrary;
use rand::rngs::StdRng;
use rand::Rng;
use sgq::query::{QueryGraph, QueryNodeKind};

/// Fraction of node-noise replacements drawn from *outside* the library.
const OUT_OF_LIBRARY: f64 = 0.3;

/// Replaces one random query node's label with an alias. Returns the noisy
/// copy (the original is untouched).
pub fn add_node_noise(
    query: &QueryGraph,
    library: &TransformationLibrary,
    rng: &mut StdRng,
) -> QueryGraph {
    let noisy = query.clone();
    if noisy.nodes().is_empty() {
        return noisy;
    }
    let idx = rng.random_range(0..noisy.nodes().len());
    let node = &noisy.nodes()[idx];
    let (label, is_name) = match &node.kind {
        QueryNodeKind::Specific { name, .. } => (name.clone(), true),
        QueryNodeKind::Target { ty } => (ty.clone(), false),
    };
    let replacement = if rng.random_bool(OUT_OF_LIBRARY) {
        format!("{label}_zz") // unknown token: φ cannot resolve it
    } else {
        let aliases = library.aliases_of(&label);
        if aliases.is_empty() {
            format!("{label}_zz")
        } else {
            aliases[rng.random_range(0..aliases.len())].clone()
        }
    };
    // Rebuild the query with the replaced label (QueryGraph is append-only).
    let mut out = QueryGraph::new();
    for (i, n) in noisy.nodes().iter().enumerate() {
        match &n.kind {
            QueryNodeKind::Specific { name, ty } => {
                if i == idx && is_name {
                    out.add_specific(&replacement, ty);
                } else {
                    out.add_specific(name, ty);
                }
            }
            QueryNodeKind::Target { ty } => {
                if i == idx && !is_name {
                    out.add_target(&replacement);
                } else {
                    out.add_target(ty);
                }
            }
        }
    }
    for e in noisy.edges() {
        out.add_edge(e.from, &e.predicate, e.to);
    }
    out
}

/// Replaces one random query edge's predicate with one of its top-10 most
/// similar predicates in the space.
pub fn add_edge_noise(
    query: &QueryGraph,
    graph: &KnowledgeGraph,
    space: &PredicateSpace,
    rng: &mut StdRng,
) -> QueryGraph {
    if query.edges().is_empty() {
        return query.clone();
    }
    let idx = rng.random_range(0..query.edges().len());
    let original = &query.edges()[idx].predicate;
    let replacement = graph
        .predicate_id(original)
        .map(|pid| {
            let top = space.top_k_similar(pid, 10);
            if top.is_empty() {
                original.clone()
            } else {
                let (p, _) = top[rng.random_range(0..top.len())];
                graph.predicate_name(p).to_string()
            }
        })
        .unwrap_or_else(|| original.clone());

    let mut out = QueryGraph::new();
    for n in query.nodes() {
        match &n.kind {
            QueryNodeKind::Specific { name, ty } => {
                out.add_specific(name, ty);
            }
            QueryNodeKind::Target { ty } => {
                out.add_target(ty);
            }
        }
    }
    for (i, e) in query.edges().iter().enumerate() {
        let pred = if i == idx { &replacement } else { &e.predicate };
        out.add_edge(e.from, pred, e.to);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use rand::SeedableRng;

    fn q117(ds: &crate::dataset::BenchDataset) -> QueryGraph {
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific(&ds.countries[0], "Country");
        q.add_edge(auto, "assembly", de);
        q
    }

    #[test]
    fn node_noise_changes_exactly_one_label() {
        let ds = DatasetSpec::tiny().build();
        let q = q117(&ds);
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = add_node_noise(&q, &ds.library, &mut rng);
        assert_eq!(noisy.nodes().len(), q.nodes().len());
        assert_eq!(noisy.edges().len(), q.edges().len());
        let changed = q
            .nodes()
            .iter()
            .zip(noisy.nodes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, 1);
        // Structure is preserved.
        assert_eq!(noisy.edges()[0].from, q.edges()[0].from);
        assert_eq!(noisy.edges()[0].predicate, "assembly");
    }

    #[test]
    fn edge_noise_swaps_to_similar_predicate() {
        let ds = DatasetSpec::tiny().build();
        let space = ds.oracle_space();
        let q = q117(&ds);
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = add_edge_noise(&q, &ds.graph, &space, &mut rng);
        let new_pred = &noisy.edges()[0].predicate;
        assert_ne!(new_pred, "assembly");
        // The replacement exists in the graph vocabulary and ranks among
        // assembly's top-10 similar predicates.
        let pid = ds.graph.predicate_id(new_pred).expect("in vocabulary");
        let asm = ds.graph.predicate_id("assembly").unwrap();
        assert!(space.top_k_similar(asm, 10).iter().any(|&(p, _)| p == pid));
        // Nodes untouched.
        assert_eq!(noisy.nodes(), q.nodes());
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let ds = DatasetSpec::tiny().build();
        let q = q117(&ds);
        let a = add_node_noise(&q, &ds.library, &mut StdRng::seed_from_u64(9));
        let b = add_node_noise(&q, &ds.library, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_library_corruption_happens() {
        let ds = DatasetSpec::tiny().build();
        let q = q117(&ds);
        let mut saw_unknown = false;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let noisy = add_node_noise(&q, &ds.library, &mut rng);
            for n in noisy.nodes() {
                let label = match &n.kind {
                    QueryNodeKind::Specific { name, .. } => name,
                    QueryNodeKind::Target { ty } => ty,
                };
                if label.ends_with("_zz") {
                    saw_unknown = true;
                }
            }
        }
        assert!(saw_unknown, "30% of replacements should be out-of-library");
    }
}
