/root/repo/target/release/deps/repro-5b88c6dbee82c6e8.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-5b88c6dbee82c6e8: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
