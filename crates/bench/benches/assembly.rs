//! TA assembly cost vs stream length (paper §V-C / the `t` calibrated by
//! Algorithm 3).

use criterion::{criterion_group, criterion_main, Criterion};
use kgraph::{EdgeId, NodeId};
use sgq::answer::SubMatch;
use sgq::ta::assemble;
use std::hint::black_box;

fn streams(len: u32, n: usize) -> Vec<Vec<SubMatch>> {
    (0..n)
        .map(|s| {
            (0..len)
                .map(|i| SubMatch {
                    source: NodeId::new(100_000 + i),
                    pivot: NodeId::new((i * 13 + s as u32) % (len / 2 + 1)),
                    pss: 1.0 - f64::from(i) / f64::from(len + 1),
                    nodes: vec![NodeId::new(100_000 + i), NodeId::new(i)],
                    edges: vec![EdgeId::new(i)],
                    bindings: Vec::new(),
                })
                .collect()
        })
        .collect()
}

fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("ta_assembly");
    group.sample_size(30);
    for len in [64u32, 512, 4096] {
        let s = streams(len, 3);
        let exhausted = vec![true; 3];
        group.bench_function(format!("assemble_3x{len}_k16"), |b| {
            b.iter(|| black_box(assemble(&s, &exhausted, 16).matches.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
