/root/repo/target/release/deps/baselines_vs_sgq-34ac3d191e6f5b18.d: tests/baselines_vs_sgq.rs

/root/repo/target/release/deps/baselines_vs_sgq-34ac3d191e6f5b18: tests/baselines_vs_sgq.rs

tests/baselines_vs_sgq.rs:
