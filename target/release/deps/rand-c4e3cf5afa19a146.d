/root/repo/target/release/deps/rand-c4e3cf5afa19a146.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c4e3cf5afa19a146.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c4e3cf5afa19a146.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
