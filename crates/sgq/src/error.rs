//! Error type of the query engine.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SgqError>;

/// Errors surfaced by query validation, decomposition, or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgqError {
    /// The query graph has no target node — nothing to search for.
    NoTargetNode,
    /// The query graph has no specific node — no anchor to search from
    /// (every sub-query graph starts at a specific node, Definition 6).
    NoSpecificNode,
    /// The query graph is not connected, so no pivot joins all sub-queries.
    DisconnectedQuery,
    /// The query graph has an edge endpoint that was never declared.
    DanglingEdge {
        /// Index of the offending query edge.
        edge: u32,
    },
    /// No decomposition covers every query edge with specific→pivot paths.
    UndecomposableQuery,
    /// A forced pivot node id is not a target node of the query.
    InvalidPivot {
        /// The offending node id.
        node: u32,
    },
    /// The engine configuration is inconsistent (e.g. `k == 0`).
    InvalidConfig(String),
    /// A prepared query was executed on an engine other than the one that
    /// built it (plans carry graph-specific node ids and row lengths).
    ForeignPreparedQuery,
    /// A durable-deployment operation failed (snapshot/WAL/space file I-O
    /// or decode; the message carries the path and format context from the
    /// storage layer).
    Storage(String),
    /// The batch scheduler refused the request instead of executing it
    /// (see [`crate::sched::ShedReason`] for why). Produced by
    /// [`crate::sched::SchedOutcome::into_result`].
    Shed(crate::sched::ShedReason),
    /// A scheduler-internal failure (e.g. an execution job panicked); the
    /// request did not produce an answer.
    Scheduler(String),
}

impl fmt::Display for SgqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgqError::NoTargetNode => write!(f, "query graph has no target node"),
            SgqError::NoSpecificNode => write!(f, "query graph has no specific node"),
            SgqError::DisconnectedQuery => write!(f, "query graph is not connected"),
            SgqError::DanglingEdge { edge } => {
                write!(f, "query edge {edge} references an undeclared node")
            }
            SgqError::UndecomposableQuery => write!(
                f,
                "no pivot admits a decomposition into specific-to-pivot paths covering all edges"
            ),
            SgqError::InvalidPivot { node } => {
                write!(f, "forced pivot {node} is not a target node of the query")
            }
            SgqError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SgqError::ForeignPreparedQuery => write!(
                f,
                "prepared query was built by a different engine (over a different graph)"
            ),
            SgqError::Storage(msg) => write!(f, "storage error: {msg}"),
            SgqError::Shed(reason) => write!(f, "request shed by the scheduler: {reason}"),
            SgqError::Scheduler(msg) => write!(f, "scheduler error: {msg}"),
        }
    }
}

impl std::error::Error for SgqError {}

impl From<kgraph::KgError> for SgqError {
    fn from(e: kgraph::KgError) -> Self {
        SgqError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SgqError::NoTargetNode.to_string().contains("target"));
        assert!(SgqError::DanglingEdge { edge: 3 }.to_string().contains('3'));
        assert!(SgqError::InvalidConfig("k".into())
            .to_string()
            .contains('k'));
        let e = SgqError::from(kgraph::KgError::snapshot("/d/s.kgb", "binary", "boom"));
        assert!(matches!(e, SgqError::Storage(_)));
        assert!(e.to_string().contains("/d/s.kgb"), "{e}");
        let e = SgqError::Shed(crate::sched::ShedReason::QueueFull);
        assert!(e.to_string().contains("shed"), "{e}");
        assert!(SgqError::Scheduler("boom".into())
            .to_string()
            .contains("boom"));
    }
}
