/root/repo/target/debug/deps/kgraph-ea3526b5767e7249.d: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

/root/repo/target/debug/deps/libkgraph-ea3526b5767e7249.rlib: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

/root/repo/target/debug/deps/libkgraph-ea3526b5767e7249.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/error.rs:
crates/kgraph/src/graph.rs:
crates/kgraph/src/ids.rs:
crates/kgraph/src/interner.rs:
crates/kgraph/src/io.rs:
crates/kgraph/src/stats.rs:
crates/kgraph/src/triple.rs:
crates/kgraph/src/typing.rs:
