/root/repo/target/debug/deps/pipeline-afec93cbefdeef5f.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-afec93cbefdeef5f: tests/pipeline.rs

tests/pipeline.rs:
