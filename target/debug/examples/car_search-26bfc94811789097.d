/root/repo/target/debug/examples/car_search-26bfc94811789097.d: examples/car_search.rs Cargo.toml

/root/repo/target/debug/examples/libcar_search-26bfc94811789097.rmeta: examples/car_search.rs Cargo.toml

examples/car_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
