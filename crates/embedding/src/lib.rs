//! # embedding — knowledge-graph embedding models
//!
//! Phase 1 of the paper (§IV-A): learn an n-dimensional semantic vector for
//! every predicate and entity such that the graph's relational structure is
//! preserved, then expose the **predicate semantic space** `E = {e₁…eₙ}`
//! whose pairwise cosine similarities (Eq. 5) weight the semantic graph.
//!
//! Three translational/bilinear models are provided — [`TransE`] (the model
//! the paper selects, Bordes et al. NIPS 2013), [`TransH`] and [`DistMult`] —
//! all trained with margin-based ranking loss, uniform negative sampling and
//! plain SGD, the recipe summarised in the paper's §IV-A: *"(1) initialize
//! the vector of each element in triple <h,r,t>, (2) define a function g()
//! to measure the relation, such as h + r ≈ t, (3) optimize g()"*.
//!
//! ```
//! use kgraph::GraphBuilder;
//! use embedding::{TrainConfig, train_transe, PredicateSpace};
//!
//! let mut b = GraphBuilder::new();
//! let de = b.add_node("Germany", "Country");
//! let bmw = b.add_node("BMW_320", "Automobile");
//! let x6 = b.add_node("BMW_X6", "Automobile");
//! b.add_edge(bmw, de, "assembly");
//! b.add_edge(x6, de, "product");
//! let g = b.finish();
//!
//! let cfg = TrainConfig { dim: 16, epochs: 30, ..TrainConfig::default() };
//! let model = train_transe(&g, &cfg);
//! let space = PredicateSpace::from_model(&g, &model);
//! let a = g.predicate_id("assembly").unwrap();
//! let p = g.predicate_id("product").unwrap();
//! assert!(space.sim(a, p) <= 1.0 + 1e-6);
//! ```

pub mod distmult;
pub mod eval;
pub mod kernels;
pub mod model;
pub mod similarity;
pub mod space;
pub mod trainer;
pub mod transe;
pub mod transh;
pub mod vector;

pub use distmult::DistMult;
pub use eval::{evaluate_link_prediction, LinkPredictionReport};
pub use model::KgeModel;
pub use similarity::{RowBundle, RowKey, SimilarityIndex, SimilarityIndexStats};
pub use space::PredicateSpace;
pub use trainer::{train, train_transe, TrainConfig, TrainReport};
pub use transe::TransE;
pub use transh::TransH;
