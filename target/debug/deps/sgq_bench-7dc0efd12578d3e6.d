/root/repo/target/debug/deps/sgq_bench-7dc0efd12578d3e6.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libsgq_bench-7dc0efd12578d3e6.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libsgq_bench-7dc0efd12578d3e6.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
