/root/repo/target/debug/deps/rand-65753c1de2aa7aec.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-65753c1de2aa7aec.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
