/root/repo/target/release/deps/anytime-e8e8d0ffe0b63c17.d: tests/anytime.rs

/root/repo/target/release/deps/anytime-e8e8d0ffe0b63c17: tests/anytime.rs

tests/anytime.rs:
