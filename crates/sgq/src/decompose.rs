//! Query-graph decomposition (paper Definition 6, Eq. 1, §VII-C).
//!
//! A general query graph is decomposed into **sub-query graphs**: path
//! graphs running from a *specific* node to the shared **pivot** node (a
//! target node where all sub-queries intersect), such that together they
//! cover every query edge. Final answers are assembled by joining sub-query
//! matches at the pivot's match.
//!
//! The objective (Eq. 1) is to minimise the summed *search-space cost* of
//! the sub-queries: a sub-query of `L` query edges may expand to `L·n̂`
//! knowledge-graph hops, so its A\*-search frontier is bounded by
//! `d^(L·n̂)` where `d` is the graph's average degree (the paper's §V
//! back-of-envelope: "average degree in DBpedia is nearly 24, a 3-hop match
//! has 24³ candidate paths"). We solve the minimum-cost edge cover over the
//! enumerated specific→pivot simple paths exactly with a bitmask dynamic
//! program — query graphs are tiny (≤ 16 edges), so `O(2^|E_Q|·paths)` is
//! immaterial.

use crate::config::PivotStrategy;
use crate::error::{Result, SgqError};
use crate::query::{QEdgeId, QNodeId, QueryGraph};
use serde::{Deserialize, Serialize};

/// A path-shaped sub-query graph `gᵢ = v^s ⇝ v^t` (Definition 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubQuery {
    /// Node sequence from the specific source to the pivot:
    /// `[v_s, v₁, …, v_p]`.
    pub nodes: Vec<QNodeId>,
    /// Edge sequence; `edges[i]` connects `nodes[i]` and `nodes[i+1]`.
    pub edges: Vec<QEdgeId>,
}

impl SubQuery {
    /// The specific node the search anchors on.
    pub fn source(&self) -> QNodeId {
        self.nodes[0]
    }

    /// The pivot node the search must reach.
    pub fn pivot(&self) -> QNodeId {
        *self.nodes.last().expect("sub-query has at least one node") // lint-ok(panic-freedom): SubQuery construction pushes the pivot last; nodes is never empty
    }

    /// Number of query edges (the paper's "L-hop sub-query").
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the sub-query has no edges (never produced by
    /// [`decompose`], but part of the contract).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The result of decomposing a query graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// The pivot (target) node all sub-queries end at.
    pub pivot: QNodeId,
    /// The covering sub-queries.
    pub subqueries: Vec<SubQuery>,
    /// Total search-space cost (Eq. 1 objective value).
    pub cost: f64,
}

/// Search-space cost of a sub-query with `edges` query edges (Eq. 1's
/// `cost(gᵢ)`): `d^(edges·n̂)`, clamped to avoid `inf` on huge degrees.
pub fn subquery_cost(edges: usize, avg_degree: f64, n_hat: usize) -> f64 {
    let d = avg_degree.max(2.0);
    let exponent = (edges * n_hat) as f64;
    // Work in log-space and cap: beyond ~1e300 relative order is unaffected.
    (exponent * d.ln()).min(690.0).exp()
}

/// Decomposes `query` into specific→pivot path sub-queries covering all
/// edges, choosing the pivot per `strategy`.
///
/// `avg_degree` parameterises the cost model (take it from
/// [`kgraph::GraphStats`]); `n_hat` is the per-edge hop bound.
pub fn decompose(
    query: &QueryGraph,
    strategy: PivotStrategy,
    avg_degree: f64,
    n_hat: usize,
) -> Result<Decomposition> {
    query.validate()?;
    let targets = query.target_nodes();
    let candidates: Vec<QNodeId> = match strategy {
        PivotStrategy::MinCost => targets,
        PivotStrategy::Random { seed } => {
            // Deterministic pseudo-random pick among decomposable targets.
            let decomposable: Vec<QNodeId> = targets
                .iter()
                .copied()
                .filter(|&p| best_cover_for_pivot(query, p, avg_degree, n_hat).is_some())
                .collect();
            if decomposable.is_empty() {
                return Err(SgqError::UndecomposableQuery);
            }
            let idx = (splitmix64(seed) as usize) % decomposable.len();
            vec![decomposable[idx]]
        }
        PivotStrategy::Forced { node } => {
            let p = QNodeId(node);
            if !targets.contains(&p) {
                return Err(SgqError::InvalidPivot { node });
            }
            vec![p]
        }
    };

    let mut best: Option<Decomposition> = None;
    for pivot in candidates {
        if let Some(d) = best_cover_for_pivot(query, pivot, avg_degree, n_hat) {
            if best.as_ref().is_none_or(|b| d.cost < b.cost) {
                best = Some(d);
            }
        }
    }
    best.ok_or(SgqError::UndecomposableQuery)
}

/// SplitMix64 — a tiny deterministic hash for the Random strategy, keeping
/// `rand` out of this crate's runtime dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Minimum-cost cover of all query edges by simple specific→pivot paths.
fn best_cover_for_pivot(
    query: &QueryGraph,
    pivot: QNodeId,
    avg_degree: f64,
    n_hat: usize,
) -> Option<Decomposition> {
    let m = query.edges().len();
    if m > 20 {
        return None; // bitmask DP domain bound; queries are tiny in practice
    }
    let paths = enumerate_paths(query, pivot);
    if paths.is_empty() {
        return None;
    }
    let full: u32 = if m == 32 { u32::MAX } else { (1u32 << m) - 1 };
    let costs: Vec<f64> = paths
        .iter()
        .map(|p| subquery_cost(p.edges.len(), avg_degree, n_hat))
        .collect();
    let masks: Vec<u32> = paths
        .iter()
        .map(|p| p.edges.iter().fold(0u32, |acc, e| acc | (1 << e.0)))
        .collect();

    // Set-cover DP over edge bitmasks.
    let mut dp: Vec<f64> = vec![f64::INFINITY; (full as usize) + 1];
    let mut choice: Vec<Option<(usize, u32)>> = vec![None; (full as usize) + 1];
    dp[0] = 0.0;
    for mask in 0..=full {
        if dp[mask as usize].is_infinite() {
            continue;
        }
        for (i, &pm) in masks.iter().enumerate() {
            let next = mask | pm;
            if next == mask {
                continue;
            }
            let c = dp[mask as usize] + costs[i];
            if c < dp[next as usize] {
                dp[next as usize] = c;
                choice[next as usize] = Some((i, mask));
            }
        }
    }
    if dp[full as usize].is_infinite() {
        return None;
    }
    let mut subqueries = Vec::new();
    let mut cursor = full;
    while cursor != 0 {
        let (i, prev) = choice[cursor as usize].expect("reachable state has a choice"); // lint-ok(panic-freedom): the DP loop records a choice for every state it marks reachable
        subqueries.push(paths[i].clone());
        cursor = prev;
    }
    subqueries.reverse();
    Some(Decomposition {
        pivot,
        subqueries,
        cost: dp[full as usize],
    })
}

/// Enumerates all simple paths from any specific node to `pivot`.
fn enumerate_paths(query: &QueryGraph, pivot: QNodeId) -> Vec<SubQuery> {
    let mut out = Vec::new();
    for source in query.specific_nodes() {
        let mut nodes = vec![source];
        let mut edges = Vec::new();
        dfs_paths(query, pivot, &mut nodes, &mut edges, &mut out);
    }
    out
}

fn dfs_paths(
    query: &QueryGraph,
    pivot: QNodeId,
    nodes: &mut Vec<QNodeId>,
    edges: &mut Vec<QEdgeId>,
    out: &mut Vec<SubQuery>,
) {
    let here = *nodes.last().expect("path non-empty"); // lint-ok(panic-freedom): recursion invariant — callers seed `nodes` with the start node
    if here == pivot && !edges.is_empty() {
        out.push(SubQuery {
            nodes: nodes.clone(),
            edges: edges.clone(),
        });
        return; // paths end at the pivot (sub-queries are specific→pivot)
    }
    for eid in query.incident_edges(here) {
        if edges.contains(&eid) {
            continue;
        }
        let next = query.edge(eid).other(here).expect("incident edge"); // lint-ok(panic-freedom): eid came from incident_edges(here), so `here` is an endpoint
        if nodes.contains(&next) {
            continue; // keep paths simple
        }
        nodes.push(next);
        edges.push(eid);
        dfs_paths(query, pivot, nodes, edges, out);
        nodes.pop();
        edges.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 3(a): China --e0-- ?auto --e1-- ?device --e2-- Germany.
    fn chain() -> QueryGraph {
        let mut q = QueryGraph::new();
        let v2 = q.add_specific("China", "Country"); // QNodeId(0)
        let v1 = q.add_target("Automobile"); // QNodeId(1)
        let v3 = q.add_target("Device"); // QNodeId(2)
        let v4 = q.add_specific("Germany", "Country"); // QNodeId(3)
        q.add_edge(v1, "assembly", v2);
        q.add_edge(v1, "engine", v3);
        q.add_edge(v3, "manufacturer", v4);
        q
    }

    /// Fig. 3(c): triangle ?auto/?person/Germany.
    fn triangle() -> QueryGraph {
        let mut q = QueryGraph::new();
        let v1 = q.add_target("Automobile"); // 0
        let v2 = q.add_target("Person"); // 1
        let v3 = q.add_specific("Germany", "Country"); // 2
        q.add_edge(v1, "assembly", v3); // e0
        q.add_edge(v2, "nationality", v3); // e1
        q.add_edge(v1, "designer", v2); // e2
        q
    }

    #[test]
    fn chain_decomposes_like_example2() {
        // Paper Example 2: pivot v1 (the automobile) yields g1 = <v2-e1-v1>
        // and g2 = <v4-e3-v3-e2-v1>.
        let d = decompose(&chain(), PivotStrategy::Forced { node: 1 }, 24.0, 4).unwrap();
        assert_eq!(d.pivot, QNodeId(1));
        assert_eq!(d.subqueries.len(), 2);
        let mut lens: Vec<usize> = d.subqueries.iter().map(SubQuery::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 2]);
        // Every edge covered.
        let covered: std::collections::HashSet<QEdgeId> = d
            .subqueries
            .iter()
            .flat_map(|s| s.edges.iter().copied())
            .collect();
        assert_eq!(covered.len(), 3);
        // Each sub-query runs specific → pivot.
        for s in &d.subqueries {
            assert!(chain().node(s.source()).is_specific());
            assert_eq!(s.pivot(), d.pivot);
        }
    }

    #[test]
    fn min_cost_prefers_balanced_pivot() {
        // For the chain, pivot v1 gives paths of length 1+2; pivot v3 (the
        // device) gives 2+1 — symmetric cost; pivot must be a target either
        // way and cost must equal d^(1·n̂) + d^(2·n̂).
        let d = decompose(&chain(), PivotStrategy::MinCost, 24.0, 4).unwrap();
        let expected = subquery_cost(1, 24.0, 4) + subquery_cost(2, 24.0, 4);
        assert!((d.cost - expected).abs() / expected < 1e-12);
        assert!(matches!(d.pivot, QNodeId(1) | QNodeId(2)));
    }

    #[test]
    fn triangle_covers_cycle_with_two_paths() {
        // Pivot v1: g1 = Germany -e0- v1 and g2 = Germany -e1- v2 -e2- v1.
        let d = decompose(&triangle(), PivotStrategy::Forced { node: 0 }, 24.0, 4).unwrap();
        assert_eq!(d.subqueries.len(), 2);
        let covered: std::collections::HashSet<QEdgeId> = d
            .subqueries
            .iter()
            .flat_map(|s| s.edges.iter().copied())
            .collect();
        assert_eq!(covered.len(), 3, "cycle edges all covered");
    }

    #[test]
    fn forced_pivot_must_be_target() {
        let err = decompose(&chain(), PivotStrategy::Forced { node: 0 }, 24.0, 4).unwrap_err();
        assert_eq!(err, SgqError::InvalidPivot { node: 0 });
    }

    #[test]
    fn random_pivot_is_deterministic_per_seed() {
        let a = decompose(&chain(), PivotStrategy::Random { seed: 1 }, 24.0, 4).unwrap();
        let b = decompose(&chain(), PivotStrategy::Random { seed: 1 }, 24.0, 4).unwrap();
        assert_eq!(a.pivot, b.pivot);
    }

    #[test]
    fn random_pivot_varies_with_seed() {
        let pivots: std::collections::HashSet<u32> = (0..32)
            .map(|s| {
                decompose(&chain(), PivotStrategy::Random { seed: s }, 24.0, 4)
                    .unwrap()
                    .pivot
                    .0
            })
            .collect();
        assert!(pivots.len() > 1, "32 seeds should hit both targets");
    }

    #[test]
    fn single_edge_query() {
        let mut q = QueryGraph::new();
        let car = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(car, "product", de);
        let d = decompose(&q, PivotStrategy::MinCost, 24.0, 4).unwrap();
        assert_eq!(d.pivot, car);
        assert_eq!(d.subqueries.len(), 1);
        assert_eq!(d.subqueries[0].source(), de);
        assert_eq!(d.subqueries[0].len(), 1);
    }

    #[test]
    fn star_query_one_path_per_arm() {
        // Fig. 3(b) style: center ?auto with three specific arms.
        let mut q = QueryGraph::new();
        let center = q.add_target("Automobile");
        let cn = q.add_specific("China", "Country");
        let kr = q.add_specific("Korea", "Country");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(center, "assembly", cn);
        q.add_edge(center, "assembly", kr);
        q.add_edge(center, "designer", de);
        let d = decompose(&q, PivotStrategy::MinCost, 24.0, 4).unwrap();
        assert_eq!(d.pivot, center);
        assert_eq!(d.subqueries.len(), 3);
        assert!(d.subqueries.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn cost_is_monotone_in_length() {
        assert!(subquery_cost(2, 24.0, 4) > subquery_cost(1, 24.0, 4));
        assert!(subquery_cost(1, 24.0, 5) > subquery_cost(1, 24.0, 4));
        assert!(subquery_cost(50, 1e9, 50).is_finite(), "cost is clamped");
    }

    #[test]
    fn undecomposable_when_pivot_unreachable_by_paths() {
        // Specific -- target1, and pivot target2 hangs off target1:
        // path from specific to target2 exists (covers both edges), but
        // forcing pivot target1 leaves edge e1 uncoverable by any
        // specific→pivot simple path.
        let mut q = QueryGraph::new();
        let s = q.add_specific("A", "T");
        let t1 = q.add_target("T");
        let t2 = q.add_target("T");
        q.add_edge(s, "p", t1);
        q.add_edge(t1, "q", t2);
        let err = decompose(&q, PivotStrategy::Forced { node: t1.0 }, 10.0, 2).unwrap_err();
        assert_eq!(err, SgqError::UndecomposableQuery);
        // MinCost finds the workable pivot t2.
        let d = decompose(&q, PivotStrategy::MinCost, 10.0, 2).unwrap();
        assert_eq!(d.pivot, t2);
    }

    #[test]
    fn subquery_accessors() {
        let d = decompose(&chain(), PivotStrategy::Forced { node: 1 }, 24.0, 4).unwrap();
        for s in &d.subqueries {
            assert!(!s.is_empty());
            assert_eq!(s.nodes.len(), s.edges.len() + 1);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]
        /// Definition 6 invariants on random connected query graphs: every
        /// sub-query is a simple specific→pivot path, consecutive entries
        /// are truly incident, and the union of sub-query edges covers E_Q.
        #[test]
        fn prop_decomposition_invariants(
            n_nodes in 2usize..7,
            specific_mask in 1u32..64,
            extra_edges in proptest::collection::vec((0usize..7, 0usize..7), 0..4),
            seed in 0u64..500,
        ) {
            use proptest::prelude::prop_assert;
            let mut q = QueryGraph::new();
            let mut any_specific = false;
            let mut any_target = false;
            for i in 0..n_nodes {
                if specific_mask & (1 << i) != 0 {
                    q.add_specific(&format!("S{i}"), "T");
                    any_specific = true;
                } else {
                    q.add_target("T");
                    any_target = true;
                }
            }
            if !any_specific || !any_target {
                return Ok(()); // decompose rejects those by validation
            }
            // Spanning chain keeps the graph connected; extras may add cycles.
            for i in 1..n_nodes {
                q.add_edge(QNodeId(i as u32 - 1), "p", QNodeId(i as u32));
            }
            for &(a, b) in &extra_edges {
                let (a, b) = (a % n_nodes, b % n_nodes);
                if a != b {
                    q.add_edge(QNodeId(a as u32), "p", QNodeId(b as u32));
                }
            }
            let Ok(d) = decompose(&q, PivotStrategy::Random { seed }, 10.0, 3) else {
                return Ok(()); // some shapes are genuinely undecomposable
            };
            let mut covered = std::collections::HashSet::new();
            for s in &d.subqueries {
                prop_assert!(q.node(s.source()).is_specific());
                prop_assert!(q.node(d.pivot).is_target());
                prop_assert!(s.pivot() == d.pivot);
                // Simple path: no repeated nodes, edges incident pairwise.
                let unique: std::collections::HashSet<_> = s.nodes.iter().collect();
                prop_assert!(unique.len() == s.nodes.len());
                for (i, &e) in s.edges.iter().enumerate() {
                    let edge = q.edge(e);
                    prop_assert!(edge.other(s.nodes[i]) == Some(s.nodes[i + 1]));
                    covered.insert(e);
                }
            }
            prop_assert!(covered.len() == q.edges().len(), "all edges covered");
        }
    }
}
