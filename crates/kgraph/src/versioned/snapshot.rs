//! Epoch-tagged, immutable snapshots of a versioned graph.
//!
//! A [`GraphSnapshot`] is two `Arc`s and an epoch number: the base CSR
//! [`KnowledgeGraph`] and the frozen [`DeltaOverlay`] committed on top of
//! it. Cloning (and therefore *pinning* — a query holds a clone for its
//! whole execution) is two refcount bumps; snapshots never block writers
//! and writers never mutate a published snapshot.
//!
//! The [`GraphView`] impl merges the two layers: adjacency is
//! `base ∪ delta − tombstones`, and the iteration order is exactly the
//! order a compacted rebuild would produce (base out-edges, delta
//! out-edges, base in-edges, delta in-edges, each in insertion order), so
//! search results — including tie-breaks — match the compacted graph.
//!
//! One scoping note on that identity: φ *type buckets*
//! ([`GraphView::nodes_with_type`]) concatenate the base bucket and the
//! delta bucket, while compaction rebuilds buckets in node-id order. For
//! any builder-produced base those agree (buckets are filled in id order),
//! but a base mutated post-freeze by [`KnowledgeGraph::retype_node`] /
//! noise injection can hold an out-of-order bucket, in which case
//! *exact-score-tied* candidates may rank differently before vs after
//! compaction. Scores and answer sets are unaffected.

use super::overlay::DeltaOverlay;
use crate::graph::{EdgeRecord, KnowledgeGraph, NeighborRef};
use crate::ids::{EdgeId, NodeId, PredicateId, TypeId};
use crate::view::GraphView;
use std::borrow::Cow;
use std::sync::Arc;

/// One consistent, immutable epoch of a [`crate::versioned::VersionedGraph`].
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    base: Arc<KnowledgeGraph>,
    delta: Arc<DeltaOverlay>,
    epoch: u64,
}

impl GraphSnapshot {
    pub(crate) fn new(base: Arc<KnowledgeGraph>, delta: Arc<DeltaOverlay>, epoch: u64) -> Self {
        Self { base, delta, epoch }
    }

    /// The epoch this snapshot was published at (0 = the initial base).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable base CSR under the overlay.
    pub fn base(&self) -> &KnowledgeGraph {
        &self.base
    }

    /// The frozen overlay committed on top of the base.
    pub fn delta(&self) -> &DeltaOverlay {
        &self.delta
    }

    /// True when the overlay is empty (snapshot == base CSR).
    pub fn is_compacted(&self) -> bool {
        self.delta.is_empty()
    }

    /// Nodes added on top of the base.
    pub fn delta_added_nodes(&self) -> usize {
        self.delta.added_nodes()
    }

    /// Edges added on top of the base (tombstoned or not).
    pub fn delta_added_edges(&self) -> usize {
        self.delta.added_edges()
    }

    /// Tombstoned (deleted) edges.
    pub fn tombstone_count(&self) -> usize {
        self.delta.tombstone_count()
    }

    fn base_nodes(&self) -> usize {
        self.delta.base_nodes as usize
    }

    fn base_edges(&self) -> usize {
        self.delta.base_edges as usize
    }

    #[inline]
    fn neighbor_of(&self, edge: EdgeId, outgoing: bool) -> NeighborRef {
        let rec = GraphView::edge(self, edge);
        NeighborRef {
            node: if outgoing { rec.dst } else { rec.src },
            predicate: rec.predicate,
            edge,
            outgoing,
        }
    }
}

impl GraphView for GraphSnapshot {
    fn node_count(&self) -> usize {
        self.base_nodes() + self.delta.node_names.len()
    }

    fn edge_count(&self) -> usize {
        self.base_edges() + self.delta.edges.len() - self.delta.tombstones.len()
    }

    fn type_count(&self) -> usize {
        self.delta.base_types as usize + self.delta.new_types.len()
    }

    fn predicate_count(&self) -> usize {
        self.delta.base_predicates as usize + self.delta.new_predicates.len()
    }

    fn node_name(&self, node: NodeId) -> &str {
        match node.index().checked_sub(self.base_nodes()) {
            None => self.base.node_name(node),
            Some(i) => &self.delta.node_names[i],
        }
    }

    fn node_type(&self, node: NodeId) -> TypeId {
        match node.index().checked_sub(self.base_nodes()) {
            None => self.base.node_type(node),
            Some(i) => self.delta.node_types[i],
        }
    }

    fn type_id(&self, ty: &str) -> Option<TypeId> {
        self.delta.type_id(&self.base, ty)
    }

    fn type_name(&self, ty: TypeId) -> &str {
        match ty.index().checked_sub(self.delta.base_types as usize) {
            None => self.base.type_name(ty),
            Some(i) => self.delta.new_types.resolve(i as u32),
        }
    }

    fn predicate_id(&self, predicate: &str) -> Option<PredicateId> {
        self.delta.predicate_id(&self.base, predicate)
    }

    fn predicate_name(&self, predicate: PredicateId) -> &str {
        match predicate
            .index()
            .checked_sub(self.delta.base_predicates as usize)
        {
            None => self.base.predicate_name(predicate),
            Some(i) => self.delta.new_predicates.resolve(i as u32),
        }
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.delta.node_by_name(&self.base, name)
    }

    fn nodes_with_type(&self, ty: TypeId) -> Cow<'_, [NodeId]> {
        let delta = self.delta.nodes_by_type.get(&ty).map(Vec::as_slice);
        if ty.index() < self.delta.base_types as usize {
            let base = self.base.nodes_with_type(ty);
            match delta {
                None => Cow::Borrowed(base),
                Some(d) => {
                    let mut all = Vec::with_capacity(base.len() + d.len());
                    all.extend_from_slice(base);
                    all.extend_from_slice(d);
                    Cow::Owned(all)
                }
            }
        } else {
            Cow::Borrowed(delta.unwrap_or(&[]))
        }
    }

    fn edge(&self, edge: EdgeId) -> EdgeRecord {
        match edge.index().checked_sub(self.base_edges()) {
            None => self.base.edge(edge),
            Some(i) => self.delta.edges[i],
        }
    }

    fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).count()
    }

    fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NeighborRef> + '_ {
        const EMPTY: &[EdgeId] = &[];
        let in_base = node.index() < self.base_nodes();
        let base_out = if in_base {
            self.base.out_edges(node)
        } else {
            EMPTY
        };
        let base_in = if in_base {
            self.base.in_edges(node)
        } else {
            EMPTY
        };
        let delta_out = self.delta.out_adj.get(&node).map_or(EMPTY, Vec::as_slice);
        let delta_in = self.delta.in_adj.get(&node).map_or(EMPTY, Vec::as_slice);
        // Compaction order: out-edges in unified insertion order, then
        // in-edges likewise — so overlay reads tie-break exactly like a
        // rebuilt CSR (see module docs).
        base_out
            .iter()
            .chain(delta_out)
            .filter(|&&e| !self.delta.is_tombstoned(e))
            .map(|&e| self.neighbor_of(e, true))
            .chain(
                base_in
                    .iter()
                    .chain(delta_in)
                    .filter(|&&e| !self.delta.is_tombstoned(e))
                    .map(|&e| self.neighbor_of(e, false)),
            )
    }

    fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeRecord)> + '_ {
        let base_edges = self.delta.base_edges;
        self.base
            .edges()
            .chain(
                self.delta
                    .edges
                    .iter()
                    .enumerate()
                    .map(move |(i, &rec)| (EdgeId::new(base_edges + i as u32), rec)),
            )
            .filter(|&(id, _)| !self.delta.is_tombstoned(id))
    }

    fn types(&self) -> impl Iterator<Item = (TypeId, &str)> + '_ {
        let base_types = self.delta.base_types;
        self.base.types().chain(
            self.delta
                .new_types
                .iter()
                .map(move |(i, s)| (TypeId::new(base_types + i), s)),
        )
    }

    fn predicates(&self) -> impl Iterator<Item = (PredicateId, &str)> + '_ {
        let base_predicates = self.delta.base_predicates;
        self.base.predicates().chain(
            self.delta
                .new_predicates
                .iter()
                .map(move |(i, s)| (PredicateId::new(base_predicates + i), s)),
        )
    }

    fn duplicate_edges_dropped(&self) -> usize {
        // Writer-side duplicate drops live in `VersionedStats`; the
        // snapshot only knows what its base CSR collapsed.
        self.base.duplicate_edges_dropped()
    }
}
