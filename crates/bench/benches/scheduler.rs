//! Deadline-aware batch scheduler vs the unscheduled service path.
//!
//! Three measurements over one `QueryService` (one engine, one similarity
//! cache, one worker pool), on a production-shaped workload where 80% of
//! traffic hits a small hot set of queries:
//!
//! 1. criterion smoke: scheduled single-query round-trip;
//! 2. **sustained throughput at 16 closed-loop clients** — direct
//!    `service.query` vs `handle.query_within` with slack deadlines. The
//!    scheduler must win ≥1.3×: concurrent duplicate requests coalesce
//!    into one prepared execution and plans are cached across requests;
//! 3. **2× overload, open loop** — requests arrive at twice the measured
//!    scheduled capacity with a 25 ms deadline. The scheduler sheds and
//!    degrades to keep the p99 latency of *served* responses bounded by
//!    the deadline instead of collapsing.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::workload::{produced_workload, RequestMix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgq::sched::{BatchScheduler, Priority, SchedOutcome, Ticket};
use sgq::{QueryGraph, QueryService, SchedConfig, SgqConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
/// The shared 80/20 hot-set mix (`datagen::workload::RequestMix`).
const MIX: RequestMix = RequestMix {
    hot_fraction: 80,
    hot_set: 4,
};

fn pick(rng: &mut StdRng, len: usize) -> usize {
    MIX.pick(rng, len)
}

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx]
}

/// Closed-loop direct-path throughput: q/s over `duration`.
fn run_unscheduled(service: &QueryService<'_>, queries: &[QueryGraph], duration: Duration) -> f64 {
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let stop = &stop;
            let completed = &completed;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xbeef + client as u64);
                while !stop.load(Ordering::Relaxed) {
                    let idx = pick(&mut rng, queries.len());
                    black_box(service.query(&queries[idx]).expect("query").matches.len());
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    completed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Closed-loop scheduled throughput (slack deadlines): q/s over `duration`.
fn run_scheduled(service: &QueryService<'_>, queries: &[QueryGraph], duration: Duration) -> f64 {
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    BatchScheduler::serve(service, SchedConfig::default(), |handle| {
        std::thread::scope(|s| {
            for client in 0..CLIENTS {
                let stop = &stop;
                let completed = &completed;
                let handle = &handle;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xfeed + client as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let idx = pick(&mut rng, queries.len());
                        let r = handle.query_within(
                            &queries[idx],
                            Duration::from_secs(10),
                            Priority::Normal,
                        );
                        assert!(
                            matches!(r.outcome, SchedOutcome::Exact(_)),
                            "slack deadlines stay exact: {:?}",
                            r.outcome
                        );
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
    })
    .expect("scheduler config");
    completed.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Open-loop overload: `offered` requests/s for `duration`, 25 ms
/// deadlines. Returns (sample p99 of served in ms, histogram p99 in ms
/// from the scheduler's latency registry, served, degraded, shed).
fn run_overload(
    service: &QueryService<'_>,
    queries: &[QueryGraph],
    offered: f64,
    duration: Duration,
) -> (f64, f64, u64, u64, u64) {
    let deadline = Duration::from_millis(25);
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut served = 0u64;
    let mut degraded = 0u64;
    let mut shed = 0u64;
    let mut hist_p99_ms = 0.0f64;
    BatchScheduler::serve(service, SchedConfig::default(), |handle| {
        let per_client = offered / CLIENTS as f64;
        let interval = Duration::from_secs_f64(1.0 / per_client.max(1.0));
        let results: Vec<Vec<(SchedOutcome, Duration)>> = std::thread::scope(|s| {
            let workers: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let handle = &handle;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0xadd + client as u64);
                        let mut tickets: Vec<Ticket> = Vec::new();
                        let start = Instant::now();
                        let mut fired = 0u32;
                        while start.elapsed() < duration {
                            let due = interval * fired;
                            let now = start.elapsed();
                            if now < due {
                                std::thread::sleep(due - now);
                            }
                            let idx = pick(&mut rng, queries.len());
                            tickets.push(handle.submit(&queries[idx], deadline, Priority::Normal));
                            fired += 1;
                        }
                        tickets
                            .into_iter()
                            .map(|t| {
                                let r = t.wait();
                                (r.outcome, r.latency)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        for (outcome, latency) in results.into_iter().flatten() {
            match outcome {
                SchedOutcome::Exact(_) => {
                    served += 1;
                    latencies_ms.push(latency.as_secs_f64() * 1e3);
                }
                SchedOutcome::Degraded { .. } => {
                    served += 1;
                    degraded += 1;
                    latencies_ms.push(latency.as_secs_f64() * 1e3);
                }
                SchedOutcome::Shed(_) => shed += 1,
                SchedOutcome::Failed(e) => panic!("overload run failed: {e}"),
            }
        }
        // The operational p99: every served request of this run went
        // through the registry's log-linear latency histogram — exactly
        // what a Prometheus scrape of the live scheduler would report.
        hist_p99_ms = handle.stats().latency(Priority::Normal).p99_us as f64 / 1e3;
    })
    .expect("scheduler config");
    (
        percentile(&mut latencies_ms, 0.99),
        hist_p99_ms,
        served,
        degraded,
        shed,
    )
}

fn bench_scheduler(c: &mut Criterion) {
    let ds = DatasetSpec::dbpedia_like(1.5).build();
    let space = ds.oracle_space();
    let queries: Vec<QueryGraph> = produced_workload(&ds)
        .into_iter()
        .map(|q| q.graph)
        .collect();
    let service = QueryService::build(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 20,
            ..SgqConfig::default()
        },
    );

    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    group.bench_function("scheduled_single_query_roundtrip", |b| {
        BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
            b.iter(|| {
                black_box(handle.query_within(
                    &queries[0],
                    Duration::from_secs(10),
                    Priority::Normal,
                ))
            })
        })
        .expect("scheduler config");
    });
    group.finish();

    // Sustained throughput, 16 closed-loop clients, 80/20 hot-set skew.
    let phase = Duration::from_millis(2500);
    let unscheduled_qps = run_unscheduled(&service, &queries, phase);
    let scheduled_qps = run_scheduled(&service, &queries, phase);
    let speedup = scheduled_qps / unscheduled_qps;
    println!(
        "\nsustained throughput at {CLIENTS} clients ({}% of traffic on {} hot queries):",
        MIX.hot_fraction, MIX.hot_set
    );
    println!("  unscheduled (direct service.query)  {unscheduled_qps:>10.0} q/s");
    println!("  scheduled   (batched, EDF)          {scheduled_qps:>10.0} q/s");
    println!("  speedup                             {speedup:>10.2}x  (target >= 1.30x)");
    if speedup < 1.3 {
        println!("  WARNING: speedup below the 1.3x target on this run/host");
    }

    // 2x overload, open loop, 25 ms deadlines.
    let offered = scheduled_qps * 2.0;
    let (sample_p99_ms, p99_ms, served, degraded, shed) =
        run_overload(&service, &queries, offered, Duration::from_millis(2500));
    let total = served + shed;
    println!("\n2x overload ({offered:.0} requests/s offered, 25 ms deadlines):");
    println!("  served {served} ({degraded} degraded) / shed {shed} of {total}");
    println!("  p99 latency of served responses     {p99_ms:>10.2} ms  (deadline 25 ms; registry histogram)");
    println!("  p99 from the raw latency samples    {sample_p99_ms:>10.2} ms  (cross-check)");
    // "Bounded" means pinned to the deadline instead of collapsing into
    // seconds of queueing. A served response may straddle the deadline by a
    // small epsilon (a request admitted just inside its deadline resolves
    // just past it), and a contended CI host adds scheduling jitter on top
    // — so the tight comparison is reported, while the hard assert only
    // catches a genuine regression back to unbounded queueing (p99 beyond
    // 4x the deadline). The SLO is judged on the registry histogram's p99 —
    // the number a production scrape would alert on.
    if p99_ms > 25.0 * 1.25 {
        println!("  WARNING: p99 exceeded deadline + 25% epsilon on this run/host");
    }
    assert!(
        p99_ms <= 25.0 * 4.0,
        "p99 of served responses collapsed under overload ({p99_ms:.2} ms for a 25 ms deadline) — \
         shedding/degradation is not keeping latency bounded"
    );
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
