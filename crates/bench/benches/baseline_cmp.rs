//! SGQ vs each baseline on the same query/graph — the latency comparison
//! behind Figs. 12–14(d).

use baselines::all_baselines;
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::workload::produced_workload;
use sgq::{SgqConfig, SgqEngine};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let ds = DatasetSpec::dbpedia_like(1.5).build();
    let space = ds.oracle_space();
    let q = &produced_workload(&ds)[0];
    let k = 40;
    let mut group = c.benchmark_group("method_cmp");
    group.sample_size(15);
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k,
            ..SgqConfig::default()
        },
    );
    group.bench_function("SGQ", |b| {
        b.iter(|| black_box(engine.query(&q.graph).unwrap().matches.len()))
    });
    for m in all_baselines() {
        group.bench_function(m.name(), |b| {
            b.iter(|| black_box(m.query(&ds.graph, &ds.library, &q.graph, k).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
