//! # baselines — re-implementations of the paper's comparator methods
//!
//! The paper's evaluation (Tables I–II, Figs. 12–14) compares SGQ/TBQ
//! against seven published systems. The originals are separate C++/Java
//! codebases; this crate re-implements each method's *decision procedure* at
//! the level the paper's Table II characterises them, so the comparative
//! results emerge from genuine behavioural differences rather than
//! hard-coding (see DESIGN.md §2, substitution 5):
//!
//! | Method | Node similarity | Edge-to-path | Predicates | Main idea |
//! |--------|-----------------|--------------|------------|-----------|
//! | gStore | ✗ | ✗ | ✓ | graph isomorphism |
//! | SLQ    | ✓ | ✗ | ✗ | transformation library |
//! | NeMa   | ✓ | ✓ | ✗ | structural similarity |
//! | S4     | ✗ | ✓ | ✓ | structural pattern mining |
//! | p-hom  | ✓ | ✓ | ✗ | p-homomorphism |
//! | GraB   | ✗ | ✓ | ✗ | bounded matching scores |
//! | QGA    | ✓ | ✗ | ✓ | keyword-based query graph assembly |
//!
//! All methods answer through the same harness contract
//! ([`GraphQueryMethod`]): given a query graph and `k`, return ranked pivot
//! entities. Internally they share the [`common`] path-enumeration skeleton
//! parameterised by each method's node-matching mode and segment scorer.

pub mod common;
pub mod grab;
pub mod gstore;
pub mod nema;
pub mod phom;
pub mod qga;
pub mod s4;
pub mod slq;

pub use common::{Features, GraphQueryMethod, MethodAnswer};
pub use grab::GraB;
pub use gstore::GStore;
pub use nema::NeMa;
pub use phom::PHom;
pub use qga::Qga;
pub use s4::S4;
pub use slq::Slq;

/// All baselines with default settings, for sweep experiments.
pub fn all_baselines() -> Vec<Box<dyn GraphQueryMethod>> {
    vec![
        Box::new(GStore::new()),
        Box::new(Slq::new()),
        Box::new(NeMa::new(4)),
        Box::new(S4::new(4)),
        Box::new(PHom::new(4)),
        Box::new(GraB::new(4)),
        Box::new(Qga::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_matches_table2() {
        let expect = [
            ("gStore", false, false, true),
            ("SLQ", true, false, false),
            ("NeMa", true, true, false),
            ("S4", false, true, true),
            ("p-hom", true, true, false),
            ("GraB", false, true, false),
            ("QGA", true, false, true),
        ];
        let methods = all_baselines();
        assert_eq!(methods.len(), expect.len());
        for (m, (name, ns, e2p, preds)) in methods.iter().zip(expect) {
            let f = m.features();
            assert_eq!(m.name(), name);
            assert_eq!(f.node_similarity, ns, "{name} node similarity");
            assert_eq!(f.edge_to_path, e2p, "{name} edge-to-path");
            assert_eq!(f.predicates, preds, "{name} predicates");
        }
    }
}
