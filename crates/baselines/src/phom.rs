//! p-homomorphism (Fan et al., PVLDB 2010) — graph homomorphism revisited
//! for graph matching.
//!
//! p-hom relaxes subgraph isomorphism: query nodes map through label
//! similarity and a query edge may map to any bounded path, with a
//! length-decaying score. Like NeMa and GraB it ignores predicate
//! semantics; its geometric decay (rather than NeMa's harmonic decay)
//! weighs long detours slightly differently, but both admit semantically
//! wrong routes — Table I reports the lowest accuracy of the cohort.

use crate::common::{
    run_baseline, Features, GraphQueryMethod, MethodAnswer, NodeMode, SegmentScorer,
};
use kgraph::{KnowledgeGraph, PredicateId};
use lexicon::TransformationLibrary;
use sgq::query::QueryGraph;

/// The p-hom comparator.
#[derive(Debug, Clone, Copy)]
pub struct PHom {
    max_hops: usize,
    decay: f64,
}

impl PHom {
    /// `max_hops` bounds the edge-to-path mapping; decay is fixed at 0.8.
    pub fn new(max_hops: usize) -> Self {
        Self {
            max_hops: max_hops.max(1),
            decay: 0.8,
        }
    }
}

struct GeometricDecay {
    max_hops: usize,
    decay: f64,
}

impl SegmentScorer for GeometricDecay {
    fn max_hops(&self) -> usize {
        self.max_hops
    }
    fn score(&self, _: &KnowledgeGraph, _: &str, preds: &[PredicateId]) -> Option<f64> {
        Some(self.decay.powi(preds.len() as i32 - 1))
    }
}

impl GraphQueryMethod for PHom {
    fn name(&self) -> &'static str {
        "p-hom"
    }

    fn features(&self) -> Features {
        Features {
            node_similarity: true,
            edge_to_path: true,
            predicates: false,
            idea: "p-homomorphism",
        }
    }

    fn query(
        &self,
        graph: &KnowledgeGraph,
        library: &TransformationLibrary,
        query: &QueryGraph,
        k: usize,
    ) -> Vec<MethodAnswer> {
        run_baseline(
            graph,
            library,
            query,
            k,
            NodeMode::Similar,
            &GeometricDecay {
                max_hops: self.max_hops,
                decay: self.decay,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    #[test]
    fn geometric_decay_ranks_short_paths_first() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("A1", "Automobile");
        let a2 = b.add_node("A2", "Automobile");
        let mid = b.add_node("M", "City");
        let de = b.add_node("Germany", "Country");
        b.add_edge(a1, de, "x");
        b.add_edge(a2, mid, "y");
        b.add_edge(mid, de, "z");
        let g = b.finish();
        let lib = TransformationLibrary::new();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de_q = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de_q);
        let ans = PHom::new(3).query(&g, &lib, &q, 10);
        assert_eq!(ans.len(), 2);
        assert_eq!(g.node_name(ans[0].node), "A1");
        assert!((ans[0].score - 1.0).abs() < 1e-12);
        assert!((ans[1].score - 0.8).abs() < 1e-12);
    }
}
