//! The common interface of knowledge-graph embedding models.

use rand::rngs::StdRng;
use rand::Rng;

/// A triple of dense indices `(head entity, relation, tail entity)`.
pub type IdxTriple = (usize, usize, usize);

/// A trainable knowledge-graph embedding model.
///
/// Implementations own their parameter matrices. `score` follows the
/// *higher-is-more-plausible* convention; translational models return a
/// negated distance.
pub trait KgeModel: Send + Sync {
    /// Allocates and randomly initialises parameters.
    fn init(n_entities: usize, n_relations: usize, dim: usize, rng: &mut StdRng) -> Self
    where
        Self: Sized;

    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Plausibility score of a triple; higher means more plausible.
    fn score(&self, triple: IdxTriple) -> f32;

    /// One SGD step on a (positive, negative) pair with margin ranking loss
    /// `max(0, margin − score(pos) + score(neg))`. Returns the loss *before*
    /// the update (0 when the pair already satisfies the margin).
    fn sgd_step(&mut self, pos: IdxTriple, neg: IdxTriple, lr: f32, margin: f32) -> f32;

    /// Re-applies norm constraints after an epoch (e.g. project entities to
    /// the unit ball for TransE).
    fn constrain(&mut self);

    /// Embedding vector of relation `r` (the predicate semantic vector used
    /// by Eq. 5).
    fn relation_embedding(&self, r: usize) -> &[f32];

    /// Embedding vector of entity `e`.
    fn entity_embedding(&self, e: usize) -> &[f32];
}

/// Draws uniform random values in `[-b, b]` where `b = 6/√dim`, the Xavier
/// bound used in the TransE paper's initialisation.
pub(crate) fn xavier_init(dim: usize, len: usize, rng: &mut StdRng) -> Vec<f32> {
    let bound = 6.0 / (dim as f32).sqrt();
    (0..len).map(|_| rng.random_range(-bound..bound)).collect()
}

/// Row view helpers for flat parameter matrices.
#[inline]
pub(crate) fn row(data: &[f32], dim: usize, i: usize) -> &[f32] {
    &data[i * dim..(i + 1) * dim]
}

/// Mutable row view.
#[inline]
pub(crate) fn row_mut(data: &mut [f32], dim: usize, i: usize) -> &mut [f32] {
    &mut data[i * dim..(i + 1) * dim]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let dim = 25;
        let v = xavier_init(dim, 100, &mut rng);
        let b = 6.0 / (dim as f32).sqrt();
        assert!(v.iter().all(|x| (-b..b).contains(x)));
    }

    #[test]
    fn row_views() {
        let data = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(row(&data, 3, 1), &[3.0, 4.0, 5.0]);
    }
}
