//! The synthetic schema: entity types, predicate clusters, and the oracle
//! predicate space.
//!
//! Predicates are organised into **semantic clusters** mirroring how the
//! paper's Fig. 2/Fig. 6 predicates relate (`product` ≈ `assembly` ≫
//! `language`): predicates within one cluster receive nearby vectors, and
//! clusters are mutually (near-)orthogonal. [`oracle_space`] materialises
//! that design as a [`PredicateSpace`] — the documented stand-in for a
//! TransE model trained on web-scale DBpedia, whose absolute cosine values
//! a laptop-scale training run cannot reproduce (DESIGN.md §2). The real
//! trained space remains available through `embedding::train_transe` and is
//! exercised by the Table IX experiment.

use embedding::PredicateSpace;
use kgraph::KnowledgeGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named group of semantically-related predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateCluster {
    /// Cluster label (for diagnostics).
    pub name: &'static str,
    /// Member predicate labels with their affinity to the cluster anchor.
    /// Members at lower affinity sit farther from the cluster core, giving
    /// the paper's *graded* similarity spectrum (Fig. 2: 0.98 / 0.85 / 0.81
    /// …) — essential for the τ-sensitivity experiment (Table X), where
    /// τ = 0.9 must prune some correct-but-weaker schemas.
    pub predicates: &'static [(&'static str, f32)],
    /// Cosine of the cluster anchor against the *production* anchor. The
    /// paper's Fig. 2 space is not binary — `sim(product, designer) = 0.85`
    /// and `sim(product, nationality) = 0.81` are high enough that the
    /// designer route to KIA_K5 enters the top-3 — so sibling clusters sit
    /// at a controlled moderate angle rather than orthogonally.
    pub production_affinity: f32,
}

/// The full cluster design shared by the three synthetic datasets.
pub fn predicate_clusters() -> Vec<PredicateCluster> {
    vec![
        PredicateCluster {
            name: "production",
            predicates: &[
                ("product", 1.0),
                ("assembly", 0.98),
                ("country", 0.95),
                ("manufacturer", 0.90),
                ("location", 0.88),
                ("locationCountry", 0.86),
                ("designCompany", 0.84),
                ("federalState", 0.80),
            ],
            production_affinity: 1.0,
        },
        PredicateCluster {
            name: "person",
            predicates: &[
                ("designer", 0.95),
                ("nationality", 0.92),
                ("team", 0.85),
                ("coach", 0.80),
            ],
            production_affinity: 0.85,
        },
        PredicateCluster {
            name: "device",
            predicates: &[("engine", 0.95), ("poweredBy", 0.90)],
            production_affinity: 0.6,
        },
        PredicateCluster {
            name: "soccer",
            predicates: &[("ground", 0.95), ("homeStadium", 0.90)],
            production_affinity: 0.85,
        },
        PredicateCluster {
            name: "commerce",
            predicates: &[("popularIn", 0.95), ("soldIn", 0.90)],
            production_affinity: 0.35,
        },
        PredicateCluster {
            name: "misc",
            predicates: &[
                ("language", 0.90),
                ("currency", 0.90),
                ("related", 0.85),
                ("knownFor", 0.85),
            ],
            production_affinity: 0.1,
        },
    ]
}

/// Residual jitter added on top of the designed affinities.
const JITTER: f32 = 0.02;
/// Oracle vector dimensionality (high enough that independent random
/// directions are near-orthogonal, keeping cosines close to the design).
const DIM: usize = 128;

/// Builds the oracle predicate space for `graph`: every graph predicate gets
/// a vector near its cluster anchor; predicates outside all clusters get an
/// isolated random direction. Deterministic in `seed`.
pub fn oracle_space(graph: &KnowledgeGraph, seed: u64) -> PredicateSpace {
    let clusters = predicate_clusters();
    let mut rng = StdRng::seed_from_u64(seed);
    // Production anchor first; sibling anchors at their designed affinity:
    // anchor_c = a·P + √(1−a²)·O_c with O_c ⊥ P (Gram-Schmidt).
    let production = random_unit(&mut rng);
    let anchors: Vec<Vec<f32>> = clusters
        .iter()
        .map(|c| {
            let a = c.production_affinity.clamp(-1.0, 1.0);
            if (a - 1.0).abs() < 1e-6 {
                return production.clone();
            }
            let mut ortho = random_unit(&mut rng);
            let dot: f32 = ortho.iter().zip(&production).map(|(x, y)| x * y).sum();
            for (o, p) in ortho.iter_mut().zip(&production) {
                *o -= dot * p;
            }
            let norm: f32 = ortho.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            let scale = (1.0 - a * a).sqrt() / norm;
            ortho
                .iter()
                .zip(&production)
                .map(|(o, p)| a * p + scale * o)
                .collect()
        })
        .collect();

    let mut vectors = Vec::with_capacity(graph.predicate_count());
    let mut labels = Vec::with_capacity(graph.predicate_count());
    for (_, label) in graph.predicates() {
        let member = clusters.iter().enumerate().find_map(|(ci, c)| {
            c.predicates
                .iter()
                .find(|(p, _)| *p == label)
                .map(|&(_, aff)| (ci, aff))
        });
        // Per-predicate deterministic jitter independent of iteration order.
        let mut prng = StdRng::seed_from_u64(seed ^ hash_label(label));
        let v = match member {
            Some((ci, aff)) => {
                // v = a·anchor + √(1−a²)·(own direction): two members with
                // affinities a₁, a₂ land at cosine ≈ a₁·a₂ (own directions
                // are independent and near-orthogonal at this DIM).
                let own = random_unit(&mut prng);
                let ortho = (1.0 - aff * aff).max(0.0).sqrt();
                let mut v: Vec<f32> = anchors[ci]
                    .iter()
                    .zip(&own)
                    .map(|(a, o)| aff * a + ortho * o)
                    .collect();
                for x in v.iter_mut() {
                    *x += JITTER * prng.random_range(-1.0f32..1.0);
                }
                v
            }
            None => random_unit(&mut prng),
        };
        vectors.push(v);
        labels.push(label.to_string());
    }
    PredicateSpace::from_raw(vectors, labels)
}

fn random_unit(rng: &mut StdRng) -> Vec<f32> {
    let v: Vec<f32> = (0..DIM).map(|_| rng.random_range(-1.0f32..1.0)).collect();
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    v.into_iter().map(|x| x / norm).collect()
}

fn hash_label(label: &str) -> u64 {
    // FNV-1a, deterministic across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn graph_with_all_predicates() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("X", "T");
        let y = b.add_node("Y", "T");
        for c in predicate_clusters() {
            for (p, _) in c.predicates {
                b.add_edge(x, y, p);
            }
        }
        b.add_edge(x, y, "unclustered_pred");
        b.finish()
    }

    #[test]
    fn clusters_are_disjoint() {
        let clusters = predicate_clusters();
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            for (p, aff) in c.predicates {
                assert!(seen.insert(*p), "{p} appears in two clusters");
                assert!((0.0..=1.0).contains(aff));
            }
        }
    }

    #[test]
    fn within_cluster_similarity_dominates() {
        let g = graph_with_all_predicates();
        let space = oracle_space(&g, 7);
        let p = |l: &str| g.predicate_id(l).unwrap();
        let within = space.sim(p("product"), p("assembly"));
        let across = space.sim(p("product"), p("language"));
        assert!(
            within > 0.9,
            "within-cluster sim should be high, got {within}"
        );
        assert!(
            across < 0.4,
            "cross-cluster sim should be low, got {across}"
        );
        assert!(within > across + 0.3);
    }

    #[test]
    fn affinities_mirror_fig2() {
        let g = graph_with_all_predicates();
        let space = oracle_space(&g, 7);
        let p = |l: &str| g.predicate_id(l).unwrap();
        // sim(product, designer) ≈ 0.85 and sim(product, nationality) ≈ 0.81
        // in the paper's Fig. 2 — person-cluster predicates must land at a
        // moderate angle, below within-cluster but far above misc.
        let designer = space.sim(p("product"), p("designer"));
        assert!((0.7..0.95).contains(&designer), "got {designer}");
        let ground_country = space.sim(p("ground"), p("country"));
        assert!(
            (0.6..0.95).contains(&ground_country),
            "got {ground_country}"
        );
        assert!(space.sim(p("product"), p("assembly")) > designer);
        assert!(designer > space.sim(p("product"), p("language")));
    }

    #[test]
    fn oracle_space_is_deterministic() {
        let g = graph_with_all_predicates();
        let a = oracle_space(&g, 7);
        let b = oracle_space(&g, 7);
        let p = g.predicate_id("assembly").unwrap();
        let q = g.predicate_id("designer").unwrap();
        assert_eq!(a.sim(p, q), b.sim(p, q));
        let c = oracle_space(&g, 8);
        // Different seed rotates the anchors (with overwhelming likelihood).
        assert_ne!(a.sim(p, q), c.sim(p, q));
    }

    #[test]
    fn every_graph_predicate_is_covered() {
        let g = graph_with_all_predicates();
        let space = oracle_space(&g, 1);
        assert_eq!(space.len(), g.predicate_count());
        let unclustered = g.predicate_id("unclustered_pred").unwrap();
        let product = g.predicate_id("product").unwrap();
        // Unclustered predicates land far from the production cluster.
        assert!(space.sim(unclustered, product) < 0.6);
    }
}
