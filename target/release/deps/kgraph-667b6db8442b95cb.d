/root/repo/target/release/deps/kgraph-667b6db8442b95cb.d: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

/root/repo/target/release/deps/libkgraph-667b6db8442b95cb.rlib: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

/root/repo/target/release/deps/libkgraph-667b6db8442b95cb.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/error.rs:
crates/kgraph/src/graph.rs:
crates/kgraph/src/ids.rs:
crates/kgraph/src/interner.rs:
crates/kgraph/src/io.rs:
crates/kgraph/src/stats.rs:
crates/kgraph/src/triple.rs:
crates/kgraph/src/typing.rs:
