/root/repo/target/debug/deps/determinism-9b7ed95d7d31263f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-9b7ed95d7d31263f: tests/determinism.rs

tests/determinism.rs:
