/root/repo/target/debug/deps/rustc_hash-faf67fab67e68006.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-faf67fab67e68006.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/debug/deps/librustc_hash-faf67fab67e68006.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
