/root/repo/target/debug/deps/embedding-41d5ee801605cad3.d: crates/embedding/src/lib.rs crates/embedding/src/distmult.rs crates/embedding/src/eval.rs crates/embedding/src/model.rs crates/embedding/src/similarity.rs crates/embedding/src/space.rs crates/embedding/src/trainer.rs crates/embedding/src/transe.rs crates/embedding/src/transh.rs crates/embedding/src/vector.rs

/root/repo/target/debug/deps/libembedding-41d5ee801605cad3.rmeta: crates/embedding/src/lib.rs crates/embedding/src/distmult.rs crates/embedding/src/eval.rs crates/embedding/src/model.rs crates/embedding/src/similarity.rs crates/embedding/src/space.rs crates/embedding/src/trainer.rs crates/embedding/src/transe.rs crates/embedding/src/transh.rs crates/embedding/src/vector.rs

crates/embedding/src/lib.rs:
crates/embedding/src/distmult.rs:
crates/embedding/src/eval.rs:
crates/embedding/src/model.rs:
crates/embedding/src/similarity.rs:
crates/embedding/src/space.rs:
crates/embedding/src/trainer.rs:
crates/embedding/src/transe.rs:
crates/embedding/src/transh.rs:
crates/embedding/src/vector.rs:
