/root/repo/target/debug/deps/semgraph-0825dd3a9ba5f36f.d: crates/bench/benches/semgraph.rs Cargo.toml

/root/repo/target/debug/deps/libsemgraph-0825dd3a9ba5f36f.rmeta: crates/bench/benches/semgraph.rs Cargo.toml

crates/bench/benches/semgraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
