//! `semkg-lint` — the workspace invariant analyzer.
//!
//! The repo's core guarantees — bit-identical answers across
//! kernel/shard/trace/recovery paths, a serving tier that degrades instead
//! of crashing, and lock-free stats that never overcount — are enforced
//! dynamically by the differential tests. This crate writes the same
//! contracts down as machine-checked *static* rules: five passes walk every
//! workspace source file (through the masking lexer in [`lexer`]) and deny
//! violations unless a waiver comment explains why the site is sound (see
//! `crates/lint/README.md` for the syntax).
//!
//! Rules (see `crates/lint/README.md` for the full catalog):
//!
//! | rule             | contract it guards                                        |
//! |------------------|-----------------------------------------------------------|
//! | `lock-order`     | no hold-while-acquiring against the declared hierarchy    |
//! | `atomic-ordering`| every `Relaxed` on the audit surface is justified; no `SeqCst` |
//! | `panic-freedom`  | serving paths degrade, they do not `unwrap`               |
//! | `determinism`    | answer-affecting modules stay clock- and hash-order-free  |
//! | `unsafe-audit`   | every `unsafe` block carries a `SAFETY:` comment          |
//!
//! Waivers are themselves checked: an empty reason is a finding
//! (`waiver-reason`), and a waiver that suppresses nothing is a finding
//! (`unused-waiver`) — so the waiver inventory cannot silently rot.

pub mod config;
pub mod lexer;
pub mod passes;

pub use config::Config;
pub use lexer::{Line, SourceFile};

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, printed as `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A waiver comment (rule + reason) collected from one file.
#[derive(Debug, Clone)]
struct Waiver {
    rule: String,
    /// 1-indexed line of the waiver comment itself.
    at: usize,
    /// 1-indexed code line the waiver applies to (same line for trailing
    /// waivers; the next code line for standalone comment lines).
    target: usize,
    used: bool,
}

/// Collects waivers from a scanned file.
///
/// A waiver written as a trailing comment applies to its own line; a waiver
/// on a standalone comment line applies to the next line that contains code
/// (consecutive standalone waivers may stack above one line). Waivers inside
/// test regions are ignored, like everything else there.
fn collect_waivers(file: &SourceFile) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for (lineno, line) in file.lines.iter().enumerate().map(|(i, l)| (i + 1, l)) {
        if line.in_test {
            continue;
        }
        let Some(pos) = line.comment.find("lint-ok(") else {
            continue;
        };
        let rest = &line.comment[pos + "lint-ok(".len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "waiver-reason",
                message: "malformed waiver: missing `)` after lint-ok(rule".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "waiver-reason",
                message: format!("waiver for `{rule}` must carry a reason: `// lint-ok({rule}): <why this site is sound>`"),
            });
        }
        let standalone = line.code.trim().is_empty();
        let target = if standalone {
            // Applies to the next line that has code on it.
            file.lines
                .iter()
                .enumerate()
                .skip(lineno)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(i, _)| i + 1)
                .unwrap_or(lineno)
        } else {
            lineno
        };
        waivers.push(Waiver {
            rule,
            at: lineno,
            target,
            used: false,
        });
    }
    (waivers, findings)
}

/// Runs every pass over `files` and applies waiver suppression.
///
/// Returns the surviving findings, sorted by path then line. Waived
/// findings are dropped; waivers that matched nothing surface as
/// `unused-waiver` findings so stale waivers cannot accumulate.
pub fn run(config: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        let (mut waivers, waiver_findings) = collect_waivers(file);
        out.extend(waiver_findings);

        let mut raw = Vec::new();
        raw.extend(passes::lock_order::check(config, file));
        raw.extend(passes::atomic_ordering::check(config, file));
        raw.extend(passes::panic_freedom::check(config, file));
        raw.extend(passes::determinism::check(config, file));
        raw.extend(passes::unsafe_audit::check(file));

        for finding in raw {
            let waived = waivers
                .iter_mut()
                .find(|w| w.rule == finding.rule && w.target == finding.line);
            match waived {
                // A reasonless waiver still suppresses the underlying
                // finding — its own `waiver-reason` finding already fails
                // the build, and one clear message beats two.
                Some(w) => w.used = true,
                None => out.push(finding),
            }
        }

        for w in waivers.iter().filter(|w| !w.used) {
            out.push(Finding {
                path: file.path.clone(),
                line: w.at,
                rule: "unused-waiver",
                message: format!(
                    "waiver for `{}` suppresses nothing on line {} — remove it or fix the target",
                    w.rule, w.target
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Collects the workspace `.rs` files the lint walks: `src/**` of the root
/// crate and of every crate under `crates/` — not `vendor/` (external shims
/// with their own contracts), not `target/`, and not `tests/`/`benches/`
/// (test-only code is exactly what the rules exempt).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads and scans the workspace rooted at `root` and runs every pass.
///
/// `root` must contain `lint.toml`. Paths in findings are reported relative
/// to `root` with `/` separators regardless of platform.
pub fn run_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let config_text = std::fs::read_to_string(root.join("lint.toml"))
        .map_err(|e| format!("{}: {e}", root.join("lint.toml").display()))?;
    let config = Config::parse(&config_text).map_err(|e| e.to_string())?;
    let paths = workspace_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile::scan(rel, &text));
    }
    Ok(run(&config, &files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_config() -> Config {
        Config::default()
    }

    #[test]
    fn trailing_waiver_suppresses_and_is_used() {
        let cfg = empty_config();
        let file = SourceFile::scan(
            "x.rs",
            "unsafe { core(); } // lint-ok(unsafe-audit): covered by outer invariant\n",
        );
        let findings = run(&cfg, &[file]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let cfg = empty_config();
        let file = SourceFile::scan(
            "x.rs",
            "// lint-ok(unsafe-audit): covered by outer invariant\nunsafe { core(); }\n",
        );
        let findings = run(&cfg, &[file]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn waiver_without_reason_is_a_finding() {
        let cfg = empty_config();
        let file = SourceFile::scan("x.rs", "unsafe { core(); } // lint-ok(unsafe-audit)\n");
        let findings = run(&cfg, &[file]);
        assert!(findings.iter().any(|f| f.rule == "waiver-reason"));
    }

    #[test]
    fn unused_waiver_is_a_finding() {
        let cfg = empty_config();
        let file = SourceFile::scan(
            "x.rs",
            "let x = 1; // lint-ok(unsafe-audit): nothing here\n",
        );
        let findings = run(&cfg, &[file]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-waiver");
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let cfg = empty_config();
        let file = SourceFile::scan(
            "x.rs",
            "unsafe { core(); } // lint-ok(determinism): wrong rule\n",
        );
        let findings = run(&cfg, &[file]);
        assert!(findings.iter().any(|f| f.rule == "unsafe-audit"));
        assert!(findings.iter().any(|f| f.rule == "unused-waiver"));
    }
}
