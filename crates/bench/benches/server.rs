//! Socket serving tier: throughput and latency through a real TCP
//! boundary (`semkg-server`'s `server::serve` + the wire client).
//!
//! Two measurements over a sharded deployment of the scale-1.0
//! dbpedia-like dataset:
//!
//! * **closed loop** — q/s and client-observed p99 at 1, 8, and 32
//!   connections, one in-flight request per connection;
//! * **overload smoke** — an open loop offering 2× the measured 8-way
//!   capacity with 25 ms deadlines. The gate is the scheduler's
//!   submit-to-resolution p99 for high-priority traffic, read from the
//!   server's own scrape: it must stay within 4× the deadline (the same
//!   envelope `benches/scheduler.rs` asserts in-process) while the excess
//!   is shed as typed `Shed` outcomes. Client-observed latency in an open
//!   loop past capacity additionally contains unbounded socket-buffer
//!   queueing and is reported, not gated.
//!
//! The numbers land in `BENCH_server.json` at the workspace root.

use datagen::dataset::DatasetSpec;
use datagen::workload::RequestMix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use semkg_server::server::{self, ServerConfig};
use semkg_server::{Client, WireOutcome};
use serde::Serialize;
use sgq::{Priority, QueryGraph, SchedConfig, SgqConfig, ShardedDeployment};
use std::net::{SocketAddr, TcpListener};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The shared 80/20 hot-set + 20/60/20-priority mix, mirroring
/// `benches/scheduler.rs` (`datagen::workload::RequestMix`).
const MIX: RequestMix = RequestMix {
    hot_fraction: 80,
    hot_set: 4,
};
const DEADLINE: Duration = Duration::from_millis(25);
const CLOSED_SECS: f64 = 1.2;
const OVERLOAD_SECS: f64 = 2.5;

fn pick(rng: &mut StdRng, len: usize) -> usize {
    MIX.pick(rng, len)
}

fn pick_priority(rng: &mut StdRng) -> Priority {
    MIX.pick_priority(rng)
}

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

struct ClosedRun {
    qps: f64,
    p99_ms: f64,
    served: u64,
    shed: u64,
}

/// One in-flight request per connection; generous deadline so everything
/// resolves `Exact`.
fn closed_loop(addr: SocketAddr, queries: &[QueryGraph], connections: usize) -> ClosedRun {
    let duration = Duration::from_secs_f64(CLOSED_SECS);
    let started = Instant::now();
    let per_conn: Vec<(u64, u64, Vec<f64>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..connections)
            .map(|conn| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rng = StdRng::seed_from_u64(0xbe9c + conn as u64);
                    let mut lat_ms = Vec::new();
                    let (mut served, mut shed) = (0u64, 0u64);
                    let start = Instant::now();
                    while start.elapsed() < duration {
                        let q = &queries[pick(&mut rng, queries.len())];
                        let sent = Instant::now();
                        match client
                            .query(q, Duration::from_secs(30), Priority::Normal)
                            .expect("query")
                        {
                            WireOutcome::Exact(_) | WireOutcome::Degraded { .. } => {
                                served += 1;
                                lat_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                            }
                            WireOutcome::Shed(_) => shed += 1,
                            WireOutcome::Failed(e) => panic!("query failed: {e}"),
                        }
                    }
                    (served, shed, lat_ms)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut all = Vec::new();
    let (mut served, mut shed) = (0u64, 0u64);
    for (s, sh, lat) in per_conn {
        served += s;
        shed += sh;
        all.extend(lat);
    }
    ClosedRun {
        qps: (served + shed) as f64 / elapsed,
        p99_ms: percentile(&mut all, 0.99),
        served,
        shed,
    }
}

struct OverloadRun {
    sent: u64,
    served: u64,
    shed: u64,
    client_p99_ms: f64,
}

/// Open loop at a fixed offered rate with tight deadlines: senders fire on
/// schedule regardless of responses; receivers match in-order replies.
fn open_loop(
    addr: SocketAddr,
    queries: &[QueryGraph],
    connections: usize,
    offered_qps: f64,
) -> OverloadRun {
    let duration = Duration::from_secs_f64(OVERLOAD_SECS);
    let per_conn_rate = (offered_qps / connections as f64).max(1.0);
    let per_conn: Vec<(u64, u64, u64, Vec<f64>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..connections)
            .map(|conn| {
                s.spawn(move || {
                    let sender = Client::connect(addr).expect("connect");
                    let mut receiver = sender.try_clone().expect("clone");
                    let (tx, rx) = mpsc::channel::<Instant>();
                    std::thread::scope(|cs| {
                        let send_worker = cs.spawn(move || {
                            let mut client = sender;
                            let mut rng = StdRng::seed_from_u64(0x0de0 + conn as u64);
                            let start = Instant::now();
                            let mut fired = 0u64;
                            while start.elapsed() < duration {
                                let due = Duration::from_secs_f64(fired as f64 / per_conn_rate);
                                let now = start.elapsed();
                                if now < due {
                                    std::thread::sleep(due - now);
                                }
                                let q = &queries[pick(&mut rng, queries.len())];
                                let req = semkg_server::Request::Query {
                                    query: q.clone(),
                                    deadline_us: DEADLINE.as_micros() as u64,
                                    priority: pick_priority(&mut rng),
                                };
                                client.send_request(&req).expect("send");
                                tx.send(Instant::now()).expect("receiver alive");
                                fired += 1;
                            }
                            fired
                        });
                        let mut lat_ms = Vec::new();
                        let (mut served, mut shed) = (0u64, 0u64);
                        for sent_at in rx.iter() {
                            match receiver.recv_response().expect("recv") {
                                semkg_server::Response::Query(outcome) => match outcome {
                                    WireOutcome::Exact(_) | WireOutcome::Degraded { .. } => {
                                        served += 1;
                                        lat_ms.push(sent_at.elapsed().as_secs_f64() * 1e3);
                                    }
                                    WireOutcome::Shed(_) => shed += 1,
                                    WireOutcome::Failed(e) => panic!("query failed: {e}"),
                                },
                                other => panic!("expected query reply, got {other:?}"),
                            }
                        }
                        let fired = send_worker.join().unwrap();
                        (fired, served, shed, lat_ms)
                    })
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let mut all = Vec::new();
    let (mut sent, mut served, mut shed) = (0u64, 0u64, 0u64);
    for (f, s, sh, lat) in per_conn {
        sent += f;
        served += s;
        shed += sh;
        all.extend(lat);
    }
    OverloadRun {
        sent,
        served,
        shed,
        client_p99_ms: percentile(&mut all, 0.99),
    }
}

/// Value of the first scrape line starting with `prefix`, if any.
fn scrape_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| !l.starts_with('#') && l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
}

#[derive(Serialize)]
struct ClosedReport {
    connections: usize,
    qps: f64,
    p99_ms: f64,
    served: u64,
    shed: u64,
}

#[derive(Serialize)]
struct OverloadReport {
    offered_qps: f64,
    capacity_qps: f64,
    sent: u64,
    served: u64,
    shed: u64,
    shed_fraction: f64,
    sched_high_p99_ms: f64,
    client_p99_ms: f64,
    deadline_ms: f64,
}

#[derive(Serialize)]
struct ServerReport {
    bench: &'static str,
    scale: f64,
    shards: usize,
    closed_loop: Vec<ClosedReport>,
    overload: OverloadReport,
}

fn main() {
    let scale = 1.0;
    let shards = 2;
    println!("server bench: building dbpedia-like dataset (scale {scale})...");
    let ds = DatasetSpec::dbpedia_like(scale).build();
    let queries: Vec<QueryGraph> = datagen::workload::produced_workload(&ds)
        .into_iter()
        .map(|q| q.graph)
        .collect();
    assert!(!queries.is_empty());

    let dir = std::env::temp_dir().join(format!("semkg_server_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = ds.oracle_space();
    let deployment = ShardedDeployment::create(dir.join("kg"), ds.graph, space, ds.library, shards)
        .expect("deployment");
    let service = deployment.service(SgqConfig::default());
    let registry = Arc::clone(service.registry());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");

    let report = server::serve(
        listener,
        &service,
        SchedConfig::default(),
        ServerConfig::default(),
        &[registry],
        |handle| {
            let addr = handle.addr();
            let mut closed_reports = Vec::new();
            let mut capacity_qps = 0.0;
            for &connections in &[1usize, 8, 32] {
                let run = closed_loop(addr, &queries, connections);
                println!(
                    "  closed {connections:>2} conns: {:>8.0} q/s | p99 {:>6.2} ms | {} served, {} shed",
                    run.qps, run.p99_ms, run.served, run.shed
                );
                if connections == 8 {
                    capacity_qps = run.qps;
                }
                closed_reports.push(ClosedReport {
                    connections,
                    qps: run.qps,
                    p99_ms: run.p99_ms,
                    served: run.served,
                    shed: run.shed,
                });
            }

            let offered = capacity_qps * 2.0;
            let run = open_loop(addr, &queries, 8, offered);
            let scrape = Client::connect(addr)
                .expect("connect")
                .metrics()
                .expect("scrape");
            let sched_high_p99_us = scrape_value(
                &scrape,
                "sgq_sched_latency_us{priority=\"high\",quantile=\"0.99\"}",
            )
            .expect("scheduler latency in scrape");
            let sched_high_p99_ms = sched_high_p99_us / 1e3;
            let shed_fraction = run.shed as f64 / (run.served + run.shed).max(1) as f64;
            println!(
                "  overload 2x ({offered:.0} q/s offered): {} sent, {} served, {} shed \
                 ({:.0}% shed)\n    scheduler high p99 {sched_high_p99_ms:.2} ms (envelope \
                 {:.0} ms) | client-observed p99 {:.0} ms (incl. socket queueing)",
                run.sent,
                run.served,
                run.shed,
                shed_fraction * 100.0,
                DEADLINE.as_secs_f64() * 4e3,
                run.client_p99_ms,
            );
            // The acceptance gate: the bounded-response-time contract holds
            // across the socket boundary under 2x overload.
            assert!(
                sched_high_p99_ms <= DEADLINE.as_secs_f64() * 4e3,
                "scheduler high-priority p99 {sched_high_p99_ms:.2} ms exceeds 4x deadline"
            );
            assert!(run.shed > 0, "2x overload must shed");

            let overload = OverloadReport {
                offered_qps: offered,
                capacity_qps,
                sent: run.sent,
                served: run.served,
                shed: run.shed,
                shed_fraction,
                sched_high_p99_ms,
                client_p99_ms: run.client_p99_ms,
                deadline_ms: DEADLINE.as_secs_f64() * 1e3,
            };
            handle.begin_drain();
            ServerReport {
                bench: "server",
                scale,
                shards,
                closed_loop: closed_reports,
                overload,
            }
        },
    )
    .expect("serve");
    let _ = std::fs::remove_dir_all(&dir);

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(out, json + "\n").expect("BENCH_server.json written");
    println!("wrote {out}");
}
