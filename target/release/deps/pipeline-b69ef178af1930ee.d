/root/repo/target/release/deps/pipeline-b69ef178af1930ee.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-b69ef178af1930ee: tests/pipeline.rs

tests/pipeline.rs:
