//! Low-level little-endian encoding shared by the binary snapshot format
//! ([`super::binary`]) and the write-ahead log ([`super::wal`]).
//!
//! Everything is explicit little-endian via `to_le_bytes`/`from_le_bytes`,
//! so files are portable across hosts. Integrity is a 64-bit FNV-style
//! checksum per section/record — cheap, dependency-free, and plenty to
//! detect torn writes and bit rot (this is corruption *detection* for
//! trusted local files, not an adversarial MAC).

/// 64-bit FNV-1a over little-endian 8-byte *words* (zero-padded tail, the
/// input length mixed into the seed). Word-striding keeps the checksum off
/// the cold-start critical path — byte-at-a-time FNV costs milliseconds on
/// multi-megabyte CSR sections, ~8× more than this.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk")); // lint-ok(panic-freedom): chunks_exact(8) yields exactly 8-byte chunks
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (`u32` length + bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked reader over a byte buffer; every decode failure is a
/// `String` detail the caller wraps with path/format context.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes `n` raw bytes; `what` labels truncation errors.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: need {n} bytes for {what}, {} left at offset {}",
                self.remaining(),
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4-byte slice"), // lint-ok(panic-freedom): take(4, ..) returned exactly 4 bytes or errored above
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"), // lint-ok(panic-freedom): take(8, ..) returned exactly 8 bytes or errored above
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<&'a str, String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|e| format!("{what}: invalid utf-8: {e}"))
    }

    /// Reads a `u32` count followed by that many little-endian `u32`s.
    ///
    /// The byte length is computed with `checked_mul`: a hostile or corrupt
    /// count cannot wrap `usize` on 32-bit targets into a small in-bounds
    /// read (or panic in debug builds) — it fails as a decode error, and
    /// [`Cursor::take`] bounds the read itself, so no allocation larger
    /// than the buffer ever happens.
    pub fn u32_array(&mut self, what: &str) -> Result<Vec<u32>, String> {
        let n = self.u32(what)? as usize;
        let byte_len = n
            .checked_mul(4)
            .ok_or_else(|| format!("corrupt length for {what}: {n} u32s overflows usize"))?;
        let bytes = self.take(byte_len, what)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))) // lint-ok(panic-freedom): chunks_exact(4) yields exactly 4-byte chunks
            .collect())
    }
}

/// Appends a `u32` count followed by the raw array, little-endian.
pub fn put_u32_array(out: &mut Vec<u8>, vals: impl ExactSizeIterator<Item = u32>) {
    put_u32(out, vals.len() as u32);
    for v in vals {
        put_u32(out, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        assert_eq!(checksum64(b"foobar"), checksum64(b"foobar"));
        // Single-bit flips, transpositions, length changes all move it.
        assert_ne!(checksum64(b"foobar"), checksum64(b"foobaR"));
        assert_ne!(checksum64(b"foobar"), checksum64(b"foobra"));
        assert_ne!(checksum64(b"foobar"), checksum64(b"foobar\0"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        // Word boundaries: 8-byte-aligned and ragged tails both covered.
        assert_ne!(checksum64(b"12345678"), checksum64(b"123456789"));
        assert_ne!(checksum64(b"12345678"), checksum64(b"12345679"));
    }

    #[test]
    fn cursor_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "Audi_TT");
        put_u32_array(&mut buf, [1u32, 2, 3].into_iter());
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32("a").unwrap(), 7);
        assert_eq!(c.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(c.str("c").unwrap(), "Audi_TT");
        assert_eq!(c.u32_array("d").unwrap(), vec![1, 2, 3]);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn cursor_reports_truncation_with_context() {
        let mut c = Cursor::new(&[1, 2]);
        let err = c.u32("epoch").unwrap_err();
        assert!(err.contains("epoch"), "{err}");
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn u32_array_with_hostile_count_fails_cleanly() {
        // A length prefix of u32::MAX (satellite regression: the unchecked
        // `n * 4` used to wrap `usize` on 32-bit targets) must surface as a
        // clean decode error — truncation on 64-bit hosts, checked_mul
        // overflow where usize is 32-bit — never a wrapped multiply that
        // reads a short slice, and never a panic or huge allocation.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(&[0u8; 16]);
        let err = Cursor::new(&buf).u32_array("hostile").unwrap_err();
        assert!(err.contains("hostile"), "{err}");
        // The same guard on every u32 count the codec can hand back.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX - 3);
        let err = Cursor::new(&buf).u32_array("edge ids").unwrap_err();
        assert!(err.contains("edge ids"), "{err}");
    }

    #[test]
    fn cursor_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = Cursor::new(&buf).str("label").unwrap_err();
        assert!(err.contains("utf-8"), "{err}");
    }
}
