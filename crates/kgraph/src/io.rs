//! Loading and saving knowledge graphs.
//!
//! Two formats are supported:
//! * 5-column TSV triples (see [`crate::triple`]) — the interchange format,
//! * JSON snapshots of the frozen [`KnowledgeGraph`] — faster to reload since
//!   CSR rows are not rebuilt from scratch.

use crate::error::Result;
use crate::graph::{GraphBuilder, KnowledgeGraph};
use crate::triple::Triple;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads triples from a TSV reader, one per line; blank lines and lines
/// starting with `#` are skipped.
pub fn read_triples<R: std::io::Read>(reader: R) -> Result<Vec<Triple>> {
    let reader = BufReader::new(reader);
    let mut triples = Vec::new();
    // Workhorse-String loop (perf guide: avoids per-line allocation of
    // `lines()`).
    let mut buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        triples.push(Triple::from_tsv(line, line_no)?);
    }
    Ok(triples)
}

/// Writes triples as TSV.
pub fn write_triples<W: Write>(writer: W, triples: impl IntoIterator<Item = Triple>) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for t in triples {
        writeln!(w, "{}", t.to_tsv())?;
    }
    w.flush()?;
    Ok(())
}

/// Builds a graph from an iterator of triples.
pub fn graph_from_triples(triples: impl IntoIterator<Item = Triple>) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for t in triples {
        b.add_triple(
            (&t.head, &t.head_type),
            &t.predicate,
            (&t.tail, &t.tail_type),
        );
    }
    b.finish()
}

/// Loads a graph from a TSV triples file.
pub fn load_tsv(path: impl AsRef<Path>) -> Result<KnowledgeGraph> {
    let file = std::fs::File::open(path)?;
    Ok(graph_from_triples(read_triples(file)?))
}

/// Saves a graph as a TSV triples file.
pub fn save_tsv(graph: &KnowledgeGraph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_triples(file, graph.triples())
}

/// Saves a frozen graph as a JSON snapshot.
pub fn save_snapshot(graph: &KnowledgeGraph, path: impl AsRef<Path>) -> Result<()> {
    let file = BufWriter::new(std::fs::File::create(path)?);
    serde_json::to_writer(file, graph)?;
    Ok(())
}

/// Loads a JSON snapshot, rebuilding in-memory lookup tables.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<KnowledgeGraph> {
    let file = BufReader::new(std::fs::File::open(path)?);
    let mut graph: KnowledgeGraph = serde_json::from_reader(file)?;
    graph.rebuild_after_deserialize();
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Triple> {
        vec![
            Triple::new("Audi_TT", "Automobile", "assembly", "Germany", "Country"),
            Triple::new("Volkswagen", "Company", "product", "Audi_TT", "Automobile"),
        ]
    }

    #[test]
    fn triple_stream_roundtrip() {
        let mut buf = Vec::new();
        write_triples(&mut buf, sample()).unwrap();
        let back = read_triples(buf.as_slice()).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nAudi_TT\tAutomobile\tassembly\tGermany\tCountry\n";
        let triples = read_triples(text.as_bytes()).unwrap();
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn error_carries_line_number() {
        let text = "# ok\nbroken line\n";
        let err = read_triples(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn graph_from_triples_merges_nodes() {
        let g = graph_from_triples(sample());
        assert_eq!(g.node_count(), 3); // Audi_TT shared between the two triples
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn tsv_file_roundtrip() {
        let dir = std::env::temp_dir().join("kgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        let g = graph_from_triples(sample());
        save_tsv(&g, &path).unwrap();
        let back = load_tsv(&path).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert!(back.node_by_name("Volkswagen").is_some());
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("kgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        let g = graph_from_triples(sample());
        save_snapshot(&g, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.edge_count(), 2);
        let audi = back.node_by_name("Audi_TT").unwrap();
        assert_eq!(back.degree(audi), 2);
    }
}
