/root/repo/target/debug/deps/anytime-3ccbce7a21a6682f.d: tests/anytime.rs

/root/repo/target/debug/deps/anytime-3ccbce7a21a6682f: tests/anytime.rs

tests/anytime.rs:
