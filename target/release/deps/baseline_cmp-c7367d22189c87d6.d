/root/repo/target/release/deps/baseline_cmp-c7367d22189c87d6.d: crates/bench/benches/baseline_cmp.rs

/root/repo/target/release/deps/baseline_cmp-c7367d22189c87d6: crates/bench/benches/baseline_cmp.rs

crates/bench/benches/baseline_cmp.rs:
