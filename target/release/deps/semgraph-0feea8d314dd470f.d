/root/repo/target/release/deps/semgraph-0feea8d314dd470f.d: crates/bench/benches/semgraph.rs

/root/repo/target/release/deps/semgraph-0feea8d314dd470f: crates/bench/benches/semgraph.rs

crates/bench/benches/semgraph.rs:
