//! String interning.
//!
//! Entity names, entity types and edge predicates are interned once so that
//! the query engine's hot loops compare and hash `u32` ids instead of
//! strings. The interner is append-only: ids are dense and stable.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// An append-only string pool mapping strings to dense `u32` ids and back.
///
/// ```
/// use kgraph::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("assembly");
/// assert_eq!(i.intern("assembly"), a); // idempotent
/// assert_eq!(i.resolve(a), "assembly");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<Box<str>>,
    #[serde(skip)]
    lookup: FxHashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its dense id. Re-interning returns the same id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, id);
        id
    }

    /// Returns the id of `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.lookup.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Resolves an id, returning `None` when out of range.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(AsRef::as_ref)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_ref()))
    }

    /// Rebuilds the reverse lookup table; required after deserialization
    /// because the map is not serialized (the vector is authoritative).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
    }

    /// Builds an interner directly from its id-ordered string table (the
    /// binary-snapshot decode path — one hash per string instead of
    /// [`Self::intern`]'s lookup-then-insert two). Returns `None` when the
    /// table holds a duplicate, which a well-formed snapshot never does.
    pub fn from_strings(strings: Vec<Box<str>>) -> Option<Self> {
        let mut lookup = FxHashMap::with_capacity_and_hasher(strings.len(), Default::default());
        for (i, s) in strings.iter().enumerate() {
            if lookup.insert(s.clone(), i as u32).is_some() {
                return None;
            }
        }
        Some(Self { strings, lookup })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("product");
        let b = i.intern("assembly");
        assert_ne!(a, b);
        assert_eq!(i.intern("product"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let id = i.intern("Germany");
        assert_eq!(i.resolve(id), "Germany");
        assert_eq!(i.get("Germany"), Some(id));
        assert_eq!(i.get("France"), None);
    }

    #[test]
    fn try_resolve_handles_out_of_range() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(0), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        for (n, s) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(s), n as u32);
        }
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn serde_roundtrip_rebuilds_lookup() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let json = serde_json::to_string(&i).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        back.rebuild_lookup();
        assert_eq!(back.get("y"), Some(1));
        assert_eq!(back.intern("x"), 0);
        assert_eq!(back.intern("z"), 2);
    }

    proptest! {
        #[test]
        fn prop_bijection(strings in proptest::collection::vec("[a-z]{1,8}", 0..50)) {
            let mut i = Interner::new();
            let ids: Vec<u32> = strings.iter().map(|s| i.intern(s)).collect();
            // Resolving every id returns the original string.
            for (s, &id) in strings.iter().zip(&ids) {
                prop_assert_eq!(i.resolve(id), s.as_str());
            }
            // Distinct strings get distinct ids.
            let mut seen = std::collections::HashMap::new();
            for (s, &id) in strings.iter().zip(&ids) {
                if let Some(&prev) = seen.get(s) {
                    prop_assert_eq!(prev, id);
                } else {
                    seen.insert(s.clone(), id);
                }
            }
            prop_assert_eq!(i.len(), seen.len());
        }
    }
}
