/root/repo/target/debug/deps/lexicon-11f7c83620ca1830.d: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs Cargo.toml

/root/repo/target/debug/deps/liblexicon-11f7c83620ca1830.rmeta: crates/lexicon/src/lib.rs crates/lexicon/src/library.rs crates/lexicon/src/matcher.rs crates/lexicon/src/normalize.rs Cargo.toml

crates/lexicon/src/lib.rs:
crates/lexicon/src/library.rs:
crates/lexicon/src/matcher.rs:
crates/lexicon/src/normalize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
