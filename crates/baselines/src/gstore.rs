//! gStore (Zou et al., PVLDB 2011) — subgraph-isomorphism SPARQL matching.
//!
//! Exact matching end to end: query nodes must match graph nodes by
//! identical label, and every query edge must map to exactly one graph edge
//! carrying the identical predicate. No transformation library, no
//! edge-to-path mapping — which is why it only retrieves the answers of the
//! directly-materialised schema in the paper's Table I (234 of 596) and
//! fails entirely on query variants with synonym/abbreviation labels.

use crate::common::{
    run_baseline, Features, GraphQueryMethod, MethodAnswer, NodeMode, SegmentScorer,
};
use kgraph::{KnowledgeGraph, PredicateId};
use lexicon::TransformationLibrary;
use sgq::query::QueryGraph;

/// The gStore comparator.
#[derive(Debug, Default, Clone, Copy)]
pub struct GStore;

impl GStore {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }
}

struct ExactEdge;

impl SegmentScorer for ExactEdge {
    fn max_hops(&self) -> usize {
        1
    }
    fn score(
        &self,
        graph: &KnowledgeGraph,
        query_pred: &str,
        preds: &[PredicateId],
    ) -> Option<f64> {
        (preds.len() == 1 && graph.predicate_name(preds[0]) == query_pred).then_some(1.0)
    }
}

impl GraphQueryMethod for GStore {
    fn name(&self) -> &'static str {
        "gStore"
    }

    fn features(&self) -> Features {
        Features {
            node_similarity: false,
            edge_to_path: false,
            predicates: true,
            idea: "graph isomorphism",
        }
    }

    fn query(
        &self,
        graph: &KnowledgeGraph,
        library: &TransformationLibrary,
        query: &QueryGraph,
        k: usize,
    ) -> Vec<MethodAnswer> {
        run_baseline(graph, library, query, k, NodeMode::Exact, &ExactEdge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("A1", "Automobile");
        let a2 = b.add_node("A2", "Automobile");
        let de = b.add_node("Germany", "Country");
        let city = b.add_node("Munich", "City");
        b.add_edge(a1, de, "assembly");
        b.add_edge(a2, city, "assembly");
        b.add_edge(city, de, "country");
        b.finish()
    }

    #[test]
    fn exact_schema_only() {
        let g = graph();
        let lib = TransformationLibrary::new();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de);
        let ans = GStore::new().query(&g, &lib, &q, 10);
        assert_eq!(ans.len(), 1);
        assert_eq!(g.node_name(ans[0].node), "A1");
    }

    #[test]
    fn fails_on_synonym_type_like_fig1_g1q() {
        let g = graph();
        let mut lib = TransformationLibrary::new();
        lib.add_synonym_row("Automobile", &["Car"]);
        let mut q = QueryGraph::new();
        let auto = q.add_target("Car");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de);
        assert!(GStore::new().query(&g, &lib, &q, 10).is_empty());
    }

    #[test]
    fn fails_on_wrong_predicate() {
        let g = graph();
        let lib = TransformationLibrary::new();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "product", de);
        assert!(GStore::new().query(&g, &lib, &q, 10).is_empty());
    }
}
