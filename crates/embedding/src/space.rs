//! The predicate semantic space `E = {e₁…eₙ}` (paper §IV-A).
//!
//! The space holds one unit-normalised vector per predicate of the knowledge
//! graph. The semantic similarity between two predicates (paper Eq. 5) is
//! then a plain dot product. Because the query engine evaluates
//! `sim(L_Q(e), L(e'))` for every traversed edge, vectors are pre-normalised
//! once so the hot path is a single fused dot product.

use crate::model::KgeModel;
use crate::vector;
use kgraph::io::codec::{checksum64, put_str, put_u32, put_u64, Cursor};
use kgraph::{KgError, KnowledgeGraph, PredicateId};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// File magic of the on-disk predicate-space format.
pub const SPACE_MAGIC: &[u8; 8] = b"KGVSPC01";
/// Current format version.
pub const SPACE_VERSION: u32 = 1;

/// Predicate → semantic vector map with cosine-similarity queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredicateSpace {
    dim: usize,
    /// Unit-normalised vectors, row-major by `PredicateId`.
    vectors: Vec<f32>,
    /// Predicate labels for diagnostics / experiment output.
    labels: Vec<String>,
}

impl PredicateSpace {
    /// Extracts predicate vectors from a trained model.
    pub fn from_model<M: KgeModel>(graph: &KnowledgeGraph, model: &M) -> Self {
        let dim = model.dim();
        let mut vectors = Vec::with_capacity(graph.predicate_count() * dim);
        let mut labels = Vec::with_capacity(graph.predicate_count());
        for (pid, label) in graph.predicates() {
            let mut v = model.relation_embedding(pid.index()).to_vec();
            vector::normalize(&mut v);
            vectors.extend_from_slice(&v);
            labels.push(label.to_string());
        }
        Self {
            dim,
            vectors,
            labels,
        }
    }

    /// Builds a space directly from raw vectors (used by tests and by the
    /// synthetic "oracle" space in the data generator).
    pub fn from_raw(vectors: Vec<Vec<f32>>, labels: Vec<String>) -> Self {
        assert_eq!(vectors.len(), labels.len());
        let dim = vectors.first().map_or(0, Vec::len);
        let mut flat = Vec::with_capacity(vectors.len() * dim);
        for mut v in vectors {
            assert_eq!(v.len(), dim, "all predicate vectors must share a dim");
            vector::normalize(&mut v);
            flat.extend_from_slice(&v);
        }
        Self {
            dim,
            vectors: flat,
            labels,
        }
    }

    /// Number of predicates in the space.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The unit vector of predicate `p`.
    pub fn vector(&self, p: PredicateId) -> &[f32] {
        &self.vectors[p.index() * self.dim..(p.index() + 1) * self.dim]
    }

    /// The label of predicate `p`.
    pub fn label(&self, p: PredicateId) -> &str {
        &self.labels[p.index()]
    }

    /// Cosine similarity between two predicates (paper Eq. 5). Since vectors
    /// are unit-normalised this is a dot product, clamped to `[-1, 1]`.
    #[inline]
    pub fn sim(&self, a: PredicateId, b: PredicateId) -> f32 {
        if a == b {
            return 1.0;
        }
        vector::dot(self.vector(a), self.vector(b)).clamp(-1.0, 1.0)
    }

    /// The `k` predicates most similar to `p` (excluding `p`), best first.
    /// Used by the edge-noise experiment (§VII-E: "replace the predicate
    /// with one of its top-10 semantically similar predicates in E").
    pub fn top_k_similar(&self, p: PredicateId, k: usize) -> Vec<(PredicateId, f32)> {
        let mut sims: Vec<(PredicateId, f32)> = (0..self.len() as u32)
            .map(PredicateId::new)
            .filter(|&q| q != p)
            .map(|q| (q, self.sim(p, q)))
            .collect();
        sims.sort_by(|a, b| b.1.total_cmp(&a.1));
        sims.truncate(k);
        sims
    }

    /// Full similarity row of `p` against every predicate, indexable by
    /// `PredicateId` — precomputed once per query edge by the engine so the
    /// per-KG-edge cost during search is one array load.
    pub fn sim_row(&self, p: PredicateId) -> Vec<f32> {
        (0..self.len() as u32)
            .map(|q| self.sim(p, PredicateId::new(q)))
            .collect()
    }

    /// Saves the space as a checksummed little-endian binary file
    /// (atomically, via tmp + rename), so a trained deployment cold-starts
    /// without re-running the embedding phase.
    ///
    /// Layout: magic `KGVSPC01`, `u32` version, then one checksummed
    /// payload — `u32` dim, `u32` predicate count, the labels
    /// (length-prefixed UTF-8) and the `f32` vectors row-major — followed
    /// by its FNV-1a 64 checksum.
    pub fn save(&self, path: impl AsRef<Path>) -> kgraph::Result<()> {
        let path = path.as_ref();
        let wrap = |e: std::io::Error| KgError::snapshot(path, "predicate-space", e);
        let mut payload = Vec::with_capacity(self.vectors.len() * 4 + self.labels.len() * 16);
        put_u32(&mut payload, self.dim as u32);
        put_u32(&mut payload, self.labels.len() as u32);
        for label in &self.labels {
            put_str(&mut payload, label);
        }
        for v in &self.vectors {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let tmp = path.with_extension("tmp");
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp).map_err(wrap)?);
        file.write_all(SPACE_MAGIC).map_err(wrap)?;
        let mut header = Vec::with_capacity(4);
        put_u32(&mut header, SPACE_VERSION);
        file.write_all(&header).map_err(wrap)?;
        file.write_all(&payload).map_err(wrap)?;
        let mut checksum = Vec::with_capacity(8);
        put_u64(&mut checksum, checksum64(&payload));
        file.write_all(&checksum).map_err(wrap)?;
        file.into_inner()
            .map_err(|e| KgError::snapshot(path, "predicate-space", e.to_string()))?
            .sync_all()
            .map_err(wrap)?;
        std::fs::rename(&tmp, path).map_err(wrap)?;
        Ok(())
    }

    /// Loads a space saved by [`Self::save`]. All failures carry the path
    /// and format context.
    pub fn load(path: impl AsRef<Path>) -> kgraph::Result<Self> {
        let path = path.as_ref();
        let wrap = |detail: String| KgError::snapshot(path, "predicate-space", detail);
        let buf = std::fs::read(path).map_err(|e| KgError::snapshot(path, "predicate-space", e))?;
        let mut c = Cursor::new(&buf);
        let magic = c.take(8, "magic").map_err(wrap)?;
        if magic != SPACE_MAGIC {
            return Err(wrap(format!(
                "bad magic {magic:02x?} (expected {SPACE_MAGIC:02x?})"
            )));
        }
        let version = c.u32("format version").map_err(wrap)?;
        if version != SPACE_VERSION {
            return Err(wrap(format!("unsupported format version {version}")));
        }
        if c.remaining() < 8 {
            return Err(wrap("truncated: missing checksum".into()));
        }
        let payload = &buf[buf.len() - c.remaining()..buf.len() - 8];
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8-byte tail"));
        let actual = checksum64(payload);
        if stored != actual {
            return Err(wrap(format!(
                "checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
            )));
        }
        let mut c = Cursor::new(payload);
        let dim = c.u32("dimension").map_err(wrap)? as usize;
        let count = c.u32("predicate count").map_err(wrap)? as usize;
        // Decoded sizes are untrusted until proven consistent with the
        // payload: cap the pre-allocation and reject overflowing products
        // instead of aborting on a ~100 GB reservation for a corrupt count.
        let mut labels = Vec::with_capacity(count.min(payload.len()));
        for _ in 0..count {
            labels.push(c.str("label").map_err(wrap)?.to_string());
        }
        let vector_bytes = count
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(4))
            .filter(|&n| n <= c.remaining())
            .ok_or_else(|| wrap(format!("vector block {count}x{dim} exceeds payload")))?;
        let raw = c.take(vector_bytes, "vectors").map_err(wrap)?;
        if c.remaining() != 0 {
            return Err(wrap(format!("{} trailing bytes", c.remaining())));
        }
        let vectors: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();
        Ok(Self {
            dim,
            vectors,
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> PredicateSpace {
        PredicateSpace::from_raw(
            vec![
                vec![1.0, 0.0],  // product
                vec![0.9, 0.1],  // assembly (close to product)
                vec![0.0, 1.0],  // language (orthogonal)
                vec![-1.0, 0.0], // opposite
            ],
            vec![
                "product".into(),
                "assembly".into(),
                "language".into(),
                "opposite".into(),
            ],
        )
    }

    #[test]
    fn self_similarity_is_one() {
        let s = space();
        for p in 0..4 {
            assert_eq!(s.sim(PredicateId::new(p), PredicateId::new(p)), 1.0);
        }
    }

    #[test]
    fn similarity_is_symmetric_and_ordered() {
        let s = space();
        let product = PredicateId::new(0);
        let assembly = PredicateId::new(1);
        let language = PredicateId::new(2);
        assert!((s.sim(product, assembly) - s.sim(assembly, product)).abs() < 1e-6);
        assert!(s.sim(product, assembly) > s.sim(product, language));
    }

    #[test]
    fn top_k_excludes_self_and_sorts() {
        let s = space();
        let top = s.top_k_similar(PredicateId::new(0), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, PredicateId::new(1)); // assembly first
        assert!(top[0].1 >= top[1].1);
        assert!(top.iter().all(|&(p, _)| p != PredicateId::new(0)));
    }

    #[test]
    fn sim_row_matches_pointwise() {
        let s = space();
        let row = s.sim_row(PredicateId::new(1));
        for q in 0..4u32 {
            assert!(
                (row[q as usize] - s.sim(PredicateId::new(1), PredicateId::new(q))).abs() < 1e-6
            );
        }
    }

    #[test]
    fn labels_roundtrip() {
        let s = space();
        assert_eq!(s.label(PredicateId::new(2)), "language");
        assert_eq!(s.len(), 4);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn vectors_are_normalised() {
        let s = PredicateSpace::from_raw(vec![vec![3.0, 4.0]], vec!["p".into()]);
        let v = s.vector(PredicateId::new(0));
        assert!((crate::vector::norm(v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let dir = std::env::temp_dir().join(format!("embedding_space_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("space.kgv");
        let s = space();
        s.save(&path).unwrap();
        let back = PredicateSpace::load(&path).unwrap();
        assert_eq!(back.dim(), s.dim());
        assert_eq!(back.len(), s.len());
        for p in 0..s.len() as u32 {
            let p = PredicateId::new(p);
            assert_eq!(back.label(p), s.label(p));
            // Bit-exact vectors: similarity scores replay identically.
            assert_eq!(back.vector(p), s.vector(p));
        }
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corruption_with_context() {
        let dir = std::env::temp_dir().join(format!("embedding_space_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("space.kgv");
        space().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[14] ^= 0x20; // flip a payload bit
        std::fs::write(&path, &bytes).unwrap();
        let err = PredicateSpace::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");
        assert!(msg.contains("space.kgv"), "{msg}");
        // Truncation anywhere fails cleanly too.
        for cut in [0, 4, 11, bytes.len() - 3] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(PredicateSpace::load(&path).is_err(), "cut {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_absurd_counts_without_allocating() {
        // A tiny well-checksummed file claiming u32::MAX predicates must
        // error, not attempt a multi-gigabyte allocation or overflow
        // `count * dim * 4`.
        let dir = std::env::temp_dir().join(format!("embedding_space_huge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("space.kgv");
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // dim
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        let mut file = Vec::new();
        file.extend_from_slice(SPACE_MAGIC);
        file.extend_from_slice(&SPACE_VERSION.to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&kgraph::io::codec::checksum64(&payload).to_le_bytes());
        std::fs::write(&path, &file).unwrap();
        let err = PredicateSpace::load(&path).unwrap_err();
        assert!(err.to_string().contains("space.kgv"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_model_preserves_count() {
        use crate::trainer::{train_transe, TrainConfig};
        use kgraph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", "T");
        let c = b.add_node("B", "T");
        b.add_edge(a, c, "p");
        b.add_edge(c, a, "q");
        let g = b.finish();
        let model = train_transe(
            &g,
            &TrainConfig {
                dim: 8,
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        let s = PredicateSpace::from_model(&g, &model);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 8);
        assert_eq!(s.label(g.predicate_id("q").unwrap()), "q");
    }
}
