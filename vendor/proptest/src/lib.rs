//! Minimal offline shim of `proptest`.
//!
//! Runs each property as a fixed number of seeded random cases (no
//! shrinking — a failing case panics with its generated inputs, which the
//! deterministic seeding makes reproducible). Supports the strategy forms
//! this workspace uses:
//!
//! * numeric `Range` / `RangeInclusive` strategies (`0usize..24`,
//!   `0.01f64..=1.0`),
//! * tuples of strategies,
//! * `proptest::collection::vec(elem, len)` with fixed or ranged lengths,
//! * regex-lite string literals of the `[class]{m,n}` shape
//!   (`"[A-Za-z0-9_]{1,12}"`),
//! * `proptest!` with an optional `#![proptest_config(...)]` header,
//!   `prop_assert!`, `prop_assert_eq!`, early `return Ok(())`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Failure raised by `prop_assert!`-style macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test, per-case RNG (FNV-1a over the test name, mixed
/// with the case index).
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

/// Boolean strategies (subset: `proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// Regex-lite string strategy: a sequence of `[class]{m,n}` / `[class]{m}` /
/// literal-char segments. Covers the patterns used in this workspace.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            if chars[i] == '[' {
                // Character class.
                let mut class = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            class.push(c);
                        }
                        i += 3;
                    } else {
                        class.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {self:?}");
                i += 1; // skip ']'
                        // Repetition count.
                let (min, max) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition")
                        + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad repetition min"),
                            b.trim().parse().expect("bad repetition max"),
                        ),
                        None => {
                            let n: usize = spec.trim().parse().expect("bad repetition");
                            (n, n)
                        }
                    }
                } else {
                    (1usize, 1usize)
                };
                assert!(!class.is_empty(), "empty character class in {self:?}");
                let n = if min == max {
                    min
                } else {
                    rng.random_range(min..=max)
                };
                for _ in 0..n {
                    out.push(class[rng.random_range(0..class.len())]);
                }
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.random_range(self.size.min..=self.size.max)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declares seeded property tests (shim of the `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), __case, __config.cases, __e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Soft assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Soft equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __a, __b, format!($($fmt)*)
            )));
        }
    }};
}

/// One-stop imports mirroring upstream's prelude.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = crate::case_rng("string_strategy", 0);
        for _ in 0..200 {
            let s = Strategy::generate("[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        use rand::Rng;
        assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn vec_lengths_in_range(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn tuples_and_ranges(pair in (0usize..7, 1.0f64..2.0), k in 1usize..4) {
            prop_assert!(pair.0 < 7);
            prop_assert!((1.0..2.0).contains(&pair.1));
            prop_assert_eq!(k.min(3), k);
            if k == 2 {
                return Ok(());
            }
            prop_assert!(k != 2);
        }
    }
}
