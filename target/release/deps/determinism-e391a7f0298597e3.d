/root/repo/target/release/deps/determinism-e391a7f0298597e3.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-e391a7f0298597e3: tests/determinism.rs

tests/determinism.rs:
