//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro -- all                 # every experiment
//! repro -- table1 fig12       # a subset
//! repro -- --scale 0.5 all    # scale dataset cardinalities
//! repro -- --list             # registry
//! ```

use sgq_bench::{run_experiment, EXPERIMENTS};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if pos + 1 < args.len() {
            scale = args[pos + 1].parse().unwrap_or(1.0);
            args.drain(pos..=pos + 1);
        } else {
            args.remove(pos);
        }
    }
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "--list" || a == "-l" || a == "--help")
    {
        eprintln!("usage: repro [--scale S] <experiment…|all>\n\nexperiments:");
        for (name, desc) in EXPERIMENTS {
            eprintln!("  {name:<8} {desc}");
        }
        return;
    }
    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|(n, _)| *n).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        match run_experiment(name, scale) {
            Some(output) => {
                println!("================================================================");
                println!("{output}");
            }
            None => eprintln!("unknown experiment `{name}` (try --list)"),
        }
    }
}
