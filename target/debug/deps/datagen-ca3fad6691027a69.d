/root/repo/target/debug/deps/datagen-ca3fad6691027a69.d: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs

/root/repo/target/debug/deps/libdatagen-ca3fad6691027a69.rlib: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs

/root/repo/target/debug/deps/libdatagen-ca3fad6691027a69.rmeta: crates/datagen/src/lib.rs crates/datagen/src/annotate.rs crates/datagen/src/dataset.rs crates/datagen/src/metrics.rs crates/datagen/src/noise.rs crates/datagen/src/schema.rs crates/datagen/src/workload.rs

crates/datagen/src/lib.rs:
crates/datagen/src/annotate.rs:
crates/datagen/src/dataset.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/noise.rs:
crates/datagen/src/schema.rs:
crates/datagen/src/workload.rs:
