//! Integration tests for the live-update subsystem: overlay reads must be
//! query-equivalent to full rebuilds, and epoch pinning must make pinned
//! queries bit-identical under concurrent writes.

use datagen::dataset::DatasetSpec;
use datagen::workload::produced_workload;
use datagen::{apply_churn_stream, churn_stream};
use kgraph::{GraphView, VersionedGraph};
use sgq::{LiveQueryService, QueryService, SgqConfig};
use std::sync::Arc;

fn config() -> SgqConfig {
    SgqConfig {
        k: 20,
        tau: 0.3,
        workers: 4,
        ..SgqConfig::default()
    }
}

/// Acceptance criterion: an *uncompacted* overlay with ≥10% mutated edges
/// returns top-k answers identical to a full rebuild of the same logical
/// graph.
#[test]
fn overlay_with_heavy_churn_matches_full_rebuild() {
    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    let base_edges = ds.graph.edge_count();
    let ops = churn_stream(&ds, base_edges, 1234);

    // Path A: overlay only — committed, never compacted.
    let overlay_store = VersionedGraph::new(ds.graph.clone());
    apply_churn_stream(&overlay_store, &ops);
    let overlayed = overlay_store.commit();
    assert!(!overlayed.is_compacted());

    // ≥10% of the base edges mutated (added or tombstoned).
    let stats = overlay_store.stats();
    let mutated = stats.delta_edges + stats.tombstones;
    assert!(
        mutated * 10 >= base_edges,
        "churn too small: {mutated} mutations over {base_edges} base edges"
    );

    // Path B: the same logical graph as one fresh CSR (full rebuild).
    let rebuild_store = VersionedGraph::new(ds.graph.clone());
    apply_churn_stream(&rebuild_store, &ops);
    let rebuilt = rebuild_store.compact();
    assert!(rebuilt.is_compacted());
    assert_eq!(overlayed.edge_count(), rebuilt.edge_count());
    assert_eq!(overlayed.node_count(), rebuilt.node_count());

    let lib = &ds.library;
    let overlay_service = QueryService::build(overlayed.clone(), &space, lib, config());
    let rebuild_service = QueryService::build(rebuilt.clone(), &space, lib, config());

    let workload = produced_workload(&ds);
    assert!(!workload.is_empty());
    let mut compared = 0usize;
    for q in &workload {
        let a = overlay_service.query(&q.graph).expect("overlay query");
        let b = rebuild_service.query(&q.graph).expect("rebuild query");
        assert_eq!(
            a.matches.len(),
            b.matches.len(),
            "top-k size diverged on {}",
            q.id
        );
        for (ma, mb) in a.matches.iter().zip(&b.matches) {
            // Node ids survive compaction, so both pivot id and name match.
            assert_eq!(ma.pivot, mb.pivot, "ranking diverged on {}", q.id);
            assert_eq!(
                overlayed.node_name(ma.pivot),
                rebuilt.node_name(mb.pivot),
                "name mismatch on {}",
                q.id
            );
            assert!(
                (ma.score - mb.score).abs() < 1e-9,
                "score diverged on {}: {} vs {}",
                q.id,
                ma.score,
                mb.score
            );
        }
        compared += a.matches.len();
    }
    assert!(compared > 0, "workload produced no matches to compare");
}

/// A query pinned to epoch N is bit-identical before and after a commit to
/// epoch N+1 — even while other clients hammer the service and a writer
/// keeps mutating and compacting the store.
#[test]
fn pinned_queries_are_bit_identical_across_concurrent_commits() {
    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    let service = LiveQueryService::new(
        Arc::new(VersionedGraph::new(ds.graph.clone())),
        &space,
        &ds.library,
        config(),
    );
    let workload = produced_workload(&ds);
    let query = &workload[0].graph;

    let prepared = service.prepare(query).expect("prepare at epoch 0");
    assert_eq!(prepared.epoch(), 0);
    let baseline = service.execute(&prepared).expect("baseline execution");
    assert!(!baseline.matches.is_empty());

    let ops = churn_stream(&ds, 120, 99);
    std::thread::scope(|s| {
        // Writer: stream updates, committing every 16 ops, compacting once
        // mid-stream.
        s.spawn(|| {
            let live = service.versioned();
            for (i, chunk) in ops.chunks(16).enumerate() {
                apply_churn_stream(live, chunk);
                live.commit();
                if i == 3 {
                    live.compact();
                }
            }
        });
        // Readers: replay the pinned query concurrently; every result must
        // equal the epoch-0 baseline bit for bit.
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..25 {
                    let r = service.execute(&prepared).expect("pinned replay");
                    assert_eq!(r.matches, baseline.matches);
                }
            });
        }
        // Ad-hoc clients meanwhile run against whatever epoch is current;
        // results only need to be well-formed.
        s.spawn(|| {
            for q in workload.iter().cycle().take(30) {
                let r = service.query(&q.graph).expect("ad-hoc query");
                assert!(r.matches.len() <= config().k);
            }
        });
    });

    // After the dust settles the store advanced, the pinned query did not.
    assert!(service.versioned().epoch() > 0);
    assert_eq!(prepared.epoch(), 0);
    let replay = service.execute(&prepared).unwrap();
    assert_eq!(replay.matches, baseline.matches);

    // A fresh prepare adopts the newest epoch.
    let repinned = service.prepare(query).expect("re-prepare");
    assert_eq!(repinned.epoch(), service.versioned().epoch());

    let stats = service.stats();
    assert!(stats.engine_refreshes >= 1, "stats: {stats:?}");
    assert_eq!(stats.errors, 0);
}

/// A live service over a store that never changes behaves exactly like the
/// static service on the frozen graph.
#[test]
fn idle_live_service_matches_static_service() {
    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    let static_service = QueryService::build(&ds.graph, &space, &ds.library, config());
    let live_service = LiveQueryService::new(
        Arc::new(VersionedGraph::new(ds.graph.clone())),
        &space,
        &ds.library,
        config(),
    );
    for q in produced_workload(&ds) {
        let a = static_service.query(&q.graph).unwrap();
        let b = live_service.query(&q.graph).unwrap();
        assert_eq!(a.matches, b.matches, "diverged on {}", q.id);
    }
    assert_eq!(live_service.stats().epoch, 0);
    assert_eq!(live_service.stats().engine_refreshes, 0);
}

/// PR 3 shipped `LiveQueryService::checkpoint` without a test pairing it
/// against concurrent `refresh` calls. Stress the pairing: a writer commits
/// continuously, a maintenance thread checkpoints (commit + compact +
/// snapshot + WAL truncation) repeatedly, and reader threads hammer
/// `refresh()` — every epoch any observer sees must be monotonically
/// non-decreasing, `refresh` must honour its at-least-published contract,
/// and the post-race answers must equal a fresh engine over the final
/// snapshot.
#[test]
fn refresh_racing_checkpoint_keeps_epochs_monotonic() {
    use sgq::LiveDeployment;
    use std::sync::atomic::{AtomicBool, Ordering};

    struct TestDir(std::path::PathBuf);
    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir =
        TestDir(std::env::temp_dir().join(format!("sgq_refresh_ckpt_{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&dir.0);

    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    let deployment = LiveDeployment::create(
        dir.0.join("kg"),
        ds.graph.clone(),
        space.clone(),
        ds.library.clone(),
    )
    .expect("create deployment");
    let service = deployment.service(config());
    let v = Arc::clone(deployment.versioned());
    let writer_done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writer: a commit roughly every insert.
        s.spawn(|| {
            for i in 0..120 {
                v.insert_triple(
                    (format!("Car_race_{i}").as_str(), "Automobile"),
                    "assembly",
                    ("Country_1", "Country"),
                );
                v.commit();
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
            }
            writer_done.store(true, Ordering::Release);
        });
        // Maintenance: checkpoints racing the writer and the readers.
        s.spawn(|| {
            for _ in 0..6 {
                let report = service.checkpoint().expect("checkpoint");
                assert!(report.edges > 0);
                std::thread::yield_now();
            }
        });
        // Readers: refresh + stats, asserting per-observer monotonicity.
        for _ in 0..3 {
            s.spawn(|| {
                let mut last_refresh = 0u64;
                let mut last_stats = 0u64;
                while !writer_done.load(Ordering::Acquire) {
                    let published = service.versioned().epoch();
                    let adopted = service.refresh();
                    assert!(
                        adopted >= published,
                        "refresh returned {adopted}, below the {published} published before the call"
                    );
                    assert!(
                        adopted >= last_refresh,
                        "refresh went backwards: {last_refresh} -> {adopted}"
                    );
                    last_refresh = adopted;
                    let epoch = service.stats().epoch;
                    assert!(
                        epoch >= last_stats,
                        "stats epoch went backwards: {last_stats} -> {epoch}"
                    );
                    last_stats = epoch;
                }
            });
        }
    });

    // Quiesced: the live service must agree bit-for-bit with a fresh
    // engine over the final published snapshot.
    service.refresh();
    let snapshot = v.snapshot();
    let direct = QueryService::build(snapshot, &space, &ds.library, config());
    for q in produced_workload(&ds) {
        let live = service.query(&q.graph).unwrap();
        let fresh = direct.query(&q.graph).unwrap();
        assert_eq!(live.matches, fresh.matches, "diverged on {}", q.id);
    }
    assert_eq!(service.stats().errors, 0);
}

/// The answer cache across the durable lifecycle: a warm cache must be
/// invalidated by `commit()`, by `compact()`, and by crash/recovery — at
/// every boundary each scheduled response equals the live direct path at
/// the *new* epoch, never a stale entry, and the stale counter records
/// the invalidations. After the boundary the cache re-warms and serves
/// again.
#[test]
fn answer_cache_never_serves_stale_epochs_across_the_durable_lifecycle() {
    use sgq::sched::{BatchScheduler, Priority, SchedOutcome};
    use sgq::{LiveDeployment, QueryGraph, SchedConfig};
    use std::time::Duration;

    struct TestDir(std::path::PathBuf);
    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir =
        TestDir(std::env::temp_dir().join(format!("sgq_cache_lifecycle_{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&dir.0);
    let deploy_dir = dir.0.join("kg");

    let ds = DatasetSpec::tiny().build();
    let space = ds.oracle_space();
    let queries: Vec<QueryGraph> = produced_workload(&ds)
        .into_iter()
        .map(|q| q.graph)
        .collect();

    let deployment = LiveDeployment::create(
        &deploy_dir,
        ds.graph.clone(),
        space.clone(),
        ds.library.clone(),
    )
    .expect("create deployment");
    {
        let service = deployment.service(config());
        let v = Arc::clone(deployment.versioned());
        BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
            let scheduled = |q: &QueryGraph| match handle
                .query_within(q, Duration::from_secs(30), Priority::Normal)
                .outcome
            {
                SchedOutcome::Exact(r) => r.matches,
                other => panic!("slack deadline must stay exact, got {other:?}"),
            };
            // Warm, then prove warmth.
            let pre: Vec<_> = queries.iter().map(&scheduled).collect();
            let warm = handle.stats();
            for q in &queries {
                scheduled(q);
            }
            let served = handle.stats();
            assert_eq!(
                served.answer_cache_served() - warm.answer_cache_served(),
                queries.len() as u64
            );

            // Boundary 1: commit. Tombstone an edge a current top match
            // traverses, so at least one answer provably changes.
            let victim = pre
                .iter()
                .find_map(|ms| {
                    ms.first()
                        .and_then(|m| m.parts.first())
                        .and_then(|p| p.edges.first())
                        .copied()
                })
                .expect("workload must produce at least one matched path");
            assert!(v.delete_edge(victim), "victim edge is live");
            v.commit();
            service.refresh();
            let post_commit: Vec<_> = queries
                .iter()
                .map(|q| service.query(q).expect("direct live path").matches)
                .collect();
            assert_ne!(pre, post_commit, "the tombstone must move an answer");
            for (idx, q) in queries.iter().enumerate() {
                assert_eq!(
                    scheduled(q),
                    post_commit[idx],
                    "post-commit response must reflect the new epoch (query {idx})"
                );
            }
            let after_commit = handle.stats();
            assert!(
                after_commit.answer_cache_stale > served.answer_cache_stale,
                "the commit must invalidate warm entries: {after_commit:?}"
            );

            // Re-warm, then boundary 2: compact. Compaction drops the
            // tombstone and renumbers edge ids, so the old entries are
            // bit-stale even though the logical answers are unchanged —
            // the reference is the direct live path at the compacted epoch.
            for q in &queries {
                scheduled(q);
            }
            let rewarmed = handle.stats();
            assert!(rewarmed.answer_cache_served() > after_commit.answer_cache_served());
            v.compact();
            service.refresh();
            let post_compact: Vec<_> = queries
                .iter()
                .map(|q| service.query(q).expect("compacted direct path").matches)
                .collect();
            for (idx, q) in queries.iter().enumerate() {
                assert_eq!(
                    scheduled(q),
                    post_compact[idx],
                    "post-compaction response must reflect the renumbered epoch \
                     (query {idx})"
                );
            }
            let after_compact = handle.stats();
            assert!(
                after_compact.answer_cache_stale > rewarmed.answer_cache_stale,
                "the compaction epoch must invalidate warm entries: {after_compact:?}"
            );
        })
        .expect("valid scheduler config");
    }
    drop(deployment); // crash

    // Boundary 3: recovery. A fresh process opens the deployment; its
    // scheduler starts cold (nothing can be stale), re-warms, and serves —
    // every response equals the recovered direct path.
    let deployment = LiveDeployment::open(&deploy_dir).expect("recover");
    let service = deployment.service(config());
    let recovered: Vec<_> = queries
        .iter()
        .map(|q| service.query(q).expect("recovered direct path").matches)
        .collect();
    BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        for _pass in 0..2 {
            for (idx, q) in queries.iter().enumerate() {
                match handle
                    .query_within(q, Duration::from_secs(30), Priority::Normal)
                    .outcome
                {
                    SchedOutcome::Exact(r) => assert_eq!(
                        r.matches, recovered[idx],
                        "post-recovery response diverged (query {idx})"
                    ),
                    other => panic!("slack deadline must stay exact, got {other:?}"),
                }
            }
        }
        let stats = handle.stats();
        assert_eq!(
            stats.answer_cache_stale, 0,
            "a cold cache has no stale entries"
        );
        assert_eq!(
            stats.answer_cache_served(),
            queries.len() as u64,
            "the second post-recovery pass is cache-served: {stats:?}"
        );
    })
    .expect("valid scheduler config");
}
