/root/repo/target/release/deps/sgq_bench-82fa5d0a91c8cfb4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libsgq_bench-82fa5d0a91c8cfb4.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libsgq_bench-82fa5d0a91c8cfb4.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
