/root/repo/target/debug/deps/semkg-8fc14c662c25af0d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemkg-8fc14c662c25af0d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
