//! DistMult — a bilinear-diagonal model included as a non-translational
//! member of the embedding family surveyed in the paper's §IV-A.
//!
//! Plausibility is the trilinear product `score(h,r,t) = Σᵢ hᵢ·rᵢ·tᵢ`.
//! Training maximises the margin between positive and corrupted triples.

use crate::model::{row, row_mut, xavier_init, IdxTriple, KgeModel};
use crate::vector;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// DistMult parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistMult {
    dim: usize,
    entities: Vec<f32>,
    relations: Vec<f32>,
}

impl DistMult {
    fn entity_count(&self) -> usize {
        self.entities.len() / self.dim
    }
}

impl KgeModel for DistMult {
    fn init(n_entities: usize, n_relations: usize, dim: usize, rng: &mut StdRng) -> Self {
        Self {
            dim,
            entities: xavier_init(dim, n_entities * dim, rng),
            relations: xavier_init(dim, n_relations * dim, rng),
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, (h, r, t): IdxTriple) -> f32 {
        let hv = row(&self.entities, self.dim, h);
        let rv = row(&self.relations, self.dim, r);
        let tv = row(&self.entities, self.dim, t);
        (0..self.dim).map(|i| hv[i] * rv[i] * tv[i]).sum()
    }

    fn sgd_step(&mut self, pos: IdxTriple, neg: IdxTriple, lr: f32, margin: f32) -> f32 {
        let loss = margin - self.score(pos) + self.score(neg);
        if loss <= 0.0 {
            return 0.0;
        }
        // ∂score/∂h = r⊙t etc.; ascend on pos, descend on neg.
        for (sign, (h, r, t)) in [(1.0f32, pos), (-1.0f32, neg)] {
            let hv = row(&self.entities, self.dim, h).to_vec();
            let rv = row(&self.relations, self.dim, r).to_vec();
            let tv = row(&self.entities, self.dim, t).to_vec();
            let gh: Vec<f32> = (0..self.dim).map(|i| rv[i] * tv[i]).collect();
            let gr: Vec<f32> = (0..self.dim).map(|i| hv[i] * tv[i]).collect();
            let gt: Vec<f32> = (0..self.dim).map(|i| hv[i] * rv[i]).collect();
            vector::axpy(row_mut(&mut self.entities, self.dim, h), sign * lr, &gh);
            vector::axpy(row_mut(&mut self.relations, self.dim, r), sign * lr, &gr);
            vector::axpy(row_mut(&mut self.entities, self.dim, t), sign * lr, &gt);
        }
        loss
    }

    fn constrain(&mut self) {
        // DistMult constrains entities to the unit sphere to stop scores from
        // growing without bound.
        for e in 0..self.entity_count() {
            vector::normalize(row_mut(&mut self.entities, self.dim, e));
        }
    }

    fn relation_embedding(&self, r: usize) -> &[f32] {
        row(&self.relations, self.dim, r)
    }

    fn entity_embedding(&self, e: usize) -> &[f32] {
        row(&self.entities, self.dim, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> DistMult {
        let mut rng = StdRng::seed_from_u64(3);
        DistMult::init(5, 2, 8, &mut rng)
    }

    #[test]
    fn score_is_symmetric_in_h_t() {
        // DistMult's well-known property: score(h,r,t) == score(t,r,h).
        let m = model();
        assert!((m.score((0, 1, 2)) - m.score((2, 1, 0))).abs() < 1e-6);
    }

    #[test]
    fn training_raises_positive_score_margin() {
        let mut m = model();
        m.constrain(); // measure from the constrained manifold
        let pos = (0, 0, 1);
        let neg = (0, 0, 3);
        let before = m.score(pos) - m.score(neg);
        for _ in 0..100 {
            m.sgd_step(pos, neg, 0.05, 4.0);
            m.constrain();
        }
        let after = m.score(pos) - m.score(neg);
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn constrain_normalizes_entities() {
        let mut m = model();
        m.constrain();
        for e in 0..5 {
            assert!((vector::norm(m.entity_embedding(e)) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_loss_skips_update() {
        let mut m = model();
        for _ in 0..200 {
            m.sgd_step((0, 0, 1), (0, 0, 3), 0.05, 0.2);
            m.constrain();
        }
        let snap = m.relations.clone();
        let loss = m.sgd_step((0, 0, 1), (0, 0, 3), 0.05, 0.2);
        assert_eq!(loss, 0.0);
        assert_eq!(m.relations, snap);
    }
}
