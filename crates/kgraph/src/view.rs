//! Read-only graph abstraction shared by the frozen CSR store and the
//! versioned live store.
//!
//! The query stack (φ node matching, sub-query planning, A\* search, TA
//! assembly, statistics) only ever *reads* a graph. [`GraphView`] captures
//! exactly that read surface, so the same monomorphised search code runs
//! against either:
//!
//! * a plain [`KnowledgeGraph`] (the static, frozen hot path — zero-cost,
//!   the trait methods compile down to the inherent ones), or
//! * a [`crate::versioned::GraphSnapshot`] — an immutable base CSR plus a
//!   delta overlay (added nodes/edges, tombstoned edges) published at one
//!   epoch by [`crate::versioned::VersionedGraph`].
//!
//! Implementations must be deterministic: two calls to [`GraphView::neighbors`]
//! on the same view yield the same sequence, and the sequence is the edge
//! *insertion* order per direction (out-edges first, then in-edges). The A\*
//! search's tie-breaking — and therefore bit-identical replay of prepared
//! queries — relies on this ordering guarantee.

use crate::graph::{EdgeRecord, KnowledgeGraph, NeighborRef};
use crate::ids::{EdgeId, NodeId, PredicateId, TypeId};
use std::borrow::Cow;

/// The read surface of a knowledge graph (see module docs).
///
/// `Sync` is a supertrait because the engine's worker pool runs sub-query
/// searches borrowing the view from several threads at once.
pub trait GraphView: Sync {
    /// Number of entities (dense ids `0..node_count`).
    fn node_count(&self) -> usize;
    /// Number of *live* directed edges. Edge ids need not be dense: a
    /// versioned view keeps tombstoned ids reserved until compaction.
    fn edge_count(&self) -> usize;
    /// Number of distinct entity types.
    fn type_count(&self) -> usize;
    /// Number of distinct predicate labels.
    fn predicate_count(&self) -> usize;

    /// Entity name of `node`.
    fn node_name(&self, node: NodeId) -> &str;
    /// Entity type id of `node`.
    fn node_type(&self, node: NodeId) -> TypeId;
    /// Entity type label of `node`.
    fn node_type_name(&self, node: NodeId) -> &str {
        self.type_name(self.node_type(node))
    }
    /// Resolves a type label to its id.
    fn type_id(&self, ty: &str) -> Option<TypeId>;
    /// Resolves a type id to its label.
    fn type_name(&self, ty: TypeId) -> &str;
    /// Resolves a predicate label to its id.
    fn predicate_id(&self, predicate: &str) -> Option<PredicateId>;
    /// Resolves a predicate id to its label.
    fn predicate_name(&self, predicate: PredicateId) -> &str;
    /// Looks up an entity by its unique name.
    fn node_by_name(&self, name: &str) -> Option<NodeId>;

    /// All entities carrying type `ty`, in insertion order. Borrowed for the
    /// frozen store; a versioned view concatenates base and delta members.
    fn nodes_with_type(&self, ty: TypeId) -> Cow<'_, [NodeId]>;

    /// The edge record behind `edge` (which may be tombstoned — adjacency
    /// iterators never yield tombstoned ids, but stored ids stay resolvable).
    fn edge(&self, edge: EdgeId) -> EdgeRecord;

    /// Undirected degree over live edges (in + out).
    fn degree(&self, node: NodeId) -> usize;

    /// Iterates both-direction live adjacency of `node`: out-edges in
    /// insertion order, then in-edges in insertion order (see module docs
    /// for why this ordering is load-bearing).
    fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NeighborRef> + '_;

    /// Iterates all node ids.
    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterates all live edges as `(EdgeId, EdgeRecord)` in insertion order.
    fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeRecord)> + '_;

    /// Iterates interned type labels as `(TypeId, label)`.
    fn types(&self) -> impl Iterator<Item = (TypeId, &str)> + '_;

    /// Iterates interned predicate labels as `(PredicateId, label)`.
    fn predicates(&self) -> impl Iterator<Item = (PredicateId, &str)> + '_;

    /// How many exact-duplicate edge insertions were collapsed while the
    /// underlying store was assembled (0 when the store doesn't track it).
    fn duplicate_edges_dropped(&self) -> usize {
        0
    }

    // --- Sharded-storage hooks -------------------------------------------
    //
    // A [`crate::shard::ShardedGraph`] stores its adjacency as per-shard CSR
    // slices while still honouring the deterministic-order contract above.
    // These hooks let generic callers (the φ matcher, the engine's seeding
    // phase, statistics) scatter their scans per shard and gather in node-id
    // order without knowing the concrete store. Monolithic stores are one
    // big shard.

    /// Number of storage shards behind this view (1 for monolithic stores).
    fn shard_count(&self) -> usize {
        1
    }

    /// The shard owning `node`'s adjacency (always 0 for monolithic stores).
    fn shard_of(&self, _node: NodeId) -> usize {
        0
    }

    /// Node ids owned by `shard`, ascending. The monolithic default owns
    /// every node in shard 0 and must materialise the list — callers should
    /// only reach for this when [`GraphView::shard_count`] exceeds 1, where
    /// sharded stores return a borrowed slice.
    fn shard_nodes(&self, shard: usize) -> Cow<'_, [NodeId]> {
        debug_assert_eq!(shard, 0, "monolithic views have exactly one shard");
        Cow::Owned((0..self.node_count() as u32).map(NodeId::new).collect())
    }

    /// Triples owned by `shard` — the edges whose *source* node it owns
    /// (the hash-by-source-node partitioning contract).
    fn shard_edge_count(&self, shard: usize) -> usize {
        debug_assert_eq!(shard, 0, "monolithic views have exactly one shard");
        self.edge_count()
    }
}

impl GraphView for KnowledgeGraph {
    fn node_count(&self) -> usize {
        KnowledgeGraph::node_count(self)
    }
    fn edge_count(&self) -> usize {
        KnowledgeGraph::edge_count(self)
    }
    fn type_count(&self) -> usize {
        KnowledgeGraph::type_count(self)
    }
    fn predicate_count(&self) -> usize {
        KnowledgeGraph::predicate_count(self)
    }
    fn node_name(&self, node: NodeId) -> &str {
        KnowledgeGraph::node_name(self, node)
    }
    fn node_type(&self, node: NodeId) -> TypeId {
        KnowledgeGraph::node_type(self, node)
    }
    fn type_id(&self, ty: &str) -> Option<TypeId> {
        KnowledgeGraph::type_id(self, ty)
    }
    fn type_name(&self, ty: TypeId) -> &str {
        KnowledgeGraph::type_name(self, ty)
    }
    fn predicate_id(&self, predicate: &str) -> Option<PredicateId> {
        KnowledgeGraph::predicate_id(self, predicate)
    }
    fn predicate_name(&self, predicate: PredicateId) -> &str {
        KnowledgeGraph::predicate_name(self, predicate)
    }
    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        KnowledgeGraph::node_by_name(self, name)
    }
    fn nodes_with_type(&self, ty: TypeId) -> Cow<'_, [NodeId]> {
        Cow::Borrowed(KnowledgeGraph::nodes_with_type(self, ty))
    }
    fn edge(&self, edge: EdgeId) -> EdgeRecord {
        KnowledgeGraph::edge(self, edge)
    }
    fn degree(&self, node: NodeId) -> usize {
        KnowledgeGraph::degree(self, node)
    }
    fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NeighborRef> + '_ {
        KnowledgeGraph::neighbors(self, node)
    }
    fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeRecord)> + '_ {
        KnowledgeGraph::edges(self)
    }
    fn types(&self) -> impl Iterator<Item = (TypeId, &str)> + '_ {
        KnowledgeGraph::types(self)
    }
    fn predicates(&self) -> impl Iterator<Item = (PredicateId, &str)> + '_ {
        KnowledgeGraph::predicates(self)
    }
    fn duplicate_edges_dropped(&self) -> usize {
        KnowledgeGraph::duplicate_edges_dropped(self)
    }
}

/// References to views are views: the engine stores its graph handle by
/// value, and the static path instantiates it with `&KnowledgeGraph`.
impl<G: GraphView + ?Sized> GraphView for &G {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }
    fn type_count(&self) -> usize {
        (**self).type_count()
    }
    fn predicate_count(&self) -> usize {
        (**self).predicate_count()
    }
    fn node_name(&self, node: NodeId) -> &str {
        (**self).node_name(node)
    }
    fn node_type(&self, node: NodeId) -> TypeId {
        (**self).node_type(node)
    }
    fn type_id(&self, ty: &str) -> Option<TypeId> {
        (**self).type_id(ty)
    }
    fn type_name(&self, ty: TypeId) -> &str {
        (**self).type_name(ty)
    }
    fn predicate_id(&self, predicate: &str) -> Option<PredicateId> {
        (**self).predicate_id(predicate)
    }
    fn predicate_name(&self, predicate: PredicateId) -> &str {
        (**self).predicate_name(predicate)
    }
    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        (**self).node_by_name(name)
    }
    fn nodes_with_type(&self, ty: TypeId) -> Cow<'_, [NodeId]> {
        (**self).nodes_with_type(ty)
    }
    fn edge(&self, edge: EdgeId) -> EdgeRecord {
        (**self).edge(edge)
    }
    fn degree(&self, node: NodeId) -> usize {
        (**self).degree(node)
    }
    fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NeighborRef> + '_ {
        (**self).neighbors(node)
    }
    fn edges(&self) -> impl Iterator<Item = (EdgeId, EdgeRecord)> + '_ {
        (**self).edges()
    }
    fn types(&self) -> impl Iterator<Item = (TypeId, &str)> + '_ {
        (**self).types()
    }
    fn predicates(&self) -> impl Iterator<Item = (PredicateId, &str)> + '_ {
        (**self).predicates()
    }
    fn duplicate_edges_dropped(&self) -> usize {
        (**self).duplicate_edges_dropped()
    }
    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }
    fn shard_of(&self, node: NodeId) -> usize {
        (**self).shard_of(node)
    }
    fn shard_nodes(&self, shard: usize) -> Cow<'_, [NodeId]> {
        (**self).shard_nodes(shard)
    }
    fn shard_edge_count(&self, shard: usize) -> usize {
        (**self).shard_edge_count(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn tiny() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", "T1");
        let c = b.add_node("B", "T2");
        b.add_edge(a, c, "p");
        b.finish()
    }

    /// The trait impl on KnowledgeGraph must agree with the inherent API.
    #[test]
    fn trait_mirrors_inherent_api() {
        let g = tiny();
        fn probe<G: GraphView>(g: &G) -> (usize, usize, Vec<NodeId>, usize) {
            let a = g.node_by_name("A").unwrap();
            (
                g.node_count(),
                g.edge_count(),
                g.nodes_with_type(g.node_type(a)).into_owned(),
                g.neighbors(a).count(),
            )
        }
        let (n, m, t1, deg) = probe(&g);
        assert_eq!(n, 2);
        assert_eq!(m, 1);
        assert_eq!(t1, vec![g.node_by_name("A").unwrap()]);
        assert_eq!(deg, 1);
    }

    /// `&G` is a view wherever `G` is, with identical results.
    #[test]
    fn reference_blanket_impl_delegates() {
        let g = tiny();
        fn count<G: GraphView>(g: G) -> usize {
            g.nodes().map(|n| g.degree(n)).sum()
        }
        assert_eq!(count(&g), 2);
        let by_double_ref: &&KnowledgeGraph = &&g;
        assert_eq!(count(by_double_ref), 2);
    }
}
