/root/repo/target/debug/examples/car_search-56069658942459c8.d: examples/car_search.rs

/root/repo/target/debug/examples/car_search-56069658942459c8: examples/car_search.rs

examples/car_search.rs:
