/root/repo/target/debug/deps/kgraph-86da7e90fe4f4b5d.d: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

/root/repo/target/debug/deps/libkgraph-86da7e90fe4f4b5d.rmeta: crates/kgraph/src/lib.rs crates/kgraph/src/error.rs crates/kgraph/src/graph.rs crates/kgraph/src/ids.rs crates/kgraph/src/interner.rs crates/kgraph/src/io.rs crates/kgraph/src/stats.rs crates/kgraph/src/triple.rs crates/kgraph/src/typing.rs

crates/kgraph/src/lib.rs:
crates/kgraph/src/error.rs:
crates/kgraph/src/graph.rs:
crates/kgraph/src/ids.rs:
crates/kgraph/src/interner.rs:
crates/kgraph/src/io.rs:
crates/kgraph/src/stats.rs:
crates/kgraph/src/triple.rs:
crates/kgraph/src/typing.rs:
