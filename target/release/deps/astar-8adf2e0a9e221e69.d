/root/repo/target/release/deps/astar-8adf2e0a9e221e69.d: crates/bench/benches/astar.rs

/root/repo/target/release/deps/astar-8adf2e0a9e221e69: crates/bench/benches/astar.rs

crates/bench/benches/astar.rs:
