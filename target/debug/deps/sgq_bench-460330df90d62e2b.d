/root/repo/target/debug/deps/sgq_bench-460330df90d62e2b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libsgq_bench-460330df90d62e2b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
