//! A\* semantic search (paper Algorithm 1, §V-B).
//!
//! Finds matches of one sub-query graph in non-increasing order of path
//! semantic similarity, expanding the semantic graph on the fly:
//!
//! 1. **Next-hop selection** — pop the partial path with the greatest
//!    estimated pss ψ̂ from a max-heap (Lemma 2 keeps ψ̂ ≥ ψ_opt);
//! 2. **Search-space expansion** — extend it along every incident edge,
//!    weighting each edge from the sub-query plan's similarity rows,
//!    pruning states with ψ̂ < τ (Lemma 3: no false positives) and states
//!    that exceed the per-segment hop budget n̂;
//! 3. **Match check** — a popped state that completed the final segment at
//!    a pivot-constraint node is the next-best match (Theorem 2).
//!
//! Generalisation over the paper's single-edge exposition: a sub-query may
//! consist of several query edges (*segments*). The search state therefore
//! carries `(node, segment, hops-within-segment)`; a segment completes when
//! the traversed edge lands on a node matching the next query node (via φ),
//! and the `visited` set of Algorithm 1 line 6 is keyed by `(node, segment)`
//! so distinct segments may pass through the same node. For single-edge
//! sub-queries this is exactly the paper's algorithm.
//!
//! The search is *resumable*: [`AStarSearch::next_match`] pops until the
//! next match surfaces, so the TA assembly can pull additional matches on
//! demand (§V-B Remark 2).

use crate::answer::SubMatch;
use crate::config::ScanMode;
use crate::pss::{exact_pss, MIN_WEIGHT};
use crate::runtime::WorkerPool;
use crate::semgraph::SubQueryPlan;
use embedding::kernels;
use kgraph::{EdgeId, GraphView, KnowledgeGraph, NodeId};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Candidate sets below this size seed serially even on a sharded view:
/// the scatter's job-dispatch overhead only pays off once the per-source
/// adjacency scans dominate it.
const SCATTER_MIN_SOURCES: usize = 256;

/// Search counters (reported through
/// [`crate::answer::QueryStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Frontier pops (the paper's next-hop selections).
    pub popped: usize,
    /// States pushed into the frontier.
    pub pushed: usize,
    /// States rejected by the τ threshold.
    pub tau_pruned: usize,
    /// Edges examined during expansion (one per neighbor iteration in
    /// [`AStarSearch`]'s expand step; seeding scans are not counted).
    /// Deterministic across scan modes and shard counts — the denominator
    /// for the scan bench's ns-per-edge figure.
    #[serde(default)]
    pub edges_examined: usize,
}

/// One immutable search state in the arena; parents encode the partial path.
#[derive(Debug, Clone, Copy)]
struct StateRec {
    node: NodeId,
    parent: u32,
    edge: Option<EdgeId>,
    /// Current segment; `== plan.segments()` marks a complete match.
    seg: u16,
    hops_in_seg: u16,
    total_hops: u16,
    log_sum: f64,
}

const NO_PARENT: u32 = u32::MAX;

/// Max-heap entry ordered by priority, ties broken FIFO by arena index so
/// runs are deterministic.
#[derive(Debug, Clone, Copy)]
struct Frontier {
    priority: f64,
    idx: u32,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Resumable A\* semantic search over one sub-query plan, generic over the
/// graph view (static CSR or a versioned epoch snapshot).
pub struct AStarSearch<'a, G: GraphView = KnowledgeGraph> {
    graph: &'a G,
    plan: &'a SubQueryPlan,
    arena: Vec<StateRec>,
    heap: BinaryHeap<Frontier>,
    /// Algorithm 1's `visited`, keyed `(node, segment)`.
    visited: FxHashSet<(u32, u16)>,
    /// Counters.
    pub stats: SearchStats,
    /// Algorithm 2 mode: complete matches are collected the moment they are
    /// *discovered* during expansion (lines 10–11) instead of being pushed
    /// into the frontier and returned at pop time. The emitted order is then
    /// no longer globally sorted — the time-bounded caller sorts its M̂ᵢ.
    anytime: bool,
    /// Matches discovered so far in anytime mode.
    discovered: Vec<SubMatch>,
}

impl<'a, G: GraphView> AStarSearch<'a, G> {
    /// Seeds the frontier with every φ(v_s) source candidate (Alg. 1 line 1).
    pub fn new(graph: &'a G, plan: &'a SubQueryPlan) -> Self {
        Self::with_mode(graph, plan, false, None)
    }

    /// Like [`AStarSearch::new`], but the seeding phase — scoring every
    /// candidate source's `m(u)` adjacency bound, the per-query cost that
    /// scales with the vocabulary — scatters one scan job per storage shard
    /// on `pool` when the view is sharded and the candidate set is large.
    /// The gather re-applies the τ threshold and pushes in canonical source
    /// order, so the resulting frontier (arena, heap, visited set, stats)
    /// is bit-identical to the serial seed.
    pub fn new_on_pool(graph: &'a G, plan: &'a SubQueryPlan, pool: &WorkerPool) -> Self {
        Self::with_mode(graph, plan, false, Some(pool))
    }

    /// Algorithm 2 variant for the time-bounded query: matches surface via
    /// [`AStarSearch::take_discovered`] as soon as they are explored.
    pub fn new_anytime(graph: &'a G, plan: &'a SubQueryPlan) -> Self {
        Self::with_mode(graph, plan, true, None)
    }

    /// [`AStarSearch::new_anytime`] with the scatter seeding of
    /// [`AStarSearch::new_on_pool`].
    pub fn new_anytime_on_pool(graph: &'a G, plan: &'a SubQueryPlan, pool: &WorkerPool) -> Self {
        Self::with_mode(graph, plan, true, Some(pool))
    }

    fn with_mode(
        graph: &'a G,
        plan: &'a SubQueryPlan,
        anytime: bool,
        pool: Option<&WorkerPool>,
    ) -> Self {
        let mut search = Self {
            graph,
            plan,
            arena: Vec::new(),
            heap: BinaryHeap::new(),
            visited: FxHashSet::default(),
            stats: SearchStats::default(),
            anytime,
            discovered: Vec::new(),
        };
        if plan.is_trivially_empty() {
            return search;
        }
        // Stage 1 — dedup the candidate list in canonical order (the
        // visited set's contents are part of the determinism contract).
        let mut sources: Vec<NodeId> = Vec::with_capacity(plan.sources.len());
        for &us in &plan.sources {
            if search.visited.insert((us.0, 0)) {
                sources.push(us);
            }
        }
        // Stage 2 — score each candidate's m(u) bound (pure per-source
        // adjacency scans; per-shard parallel when it pays off).
        let bounds = seed_bounds(graph, plan, &sources, pool);
        // Stage 3 — threshold + push, in canonical order: arena indices
        // (the heap tie-breaker) come out exactly as the serial loop's.
        for (&us, &m_u) in sources.iter().zip(&bounds) {
            let priority = plan.estimator.estimate(0.0, m_u);
            if priority < plan.tau {
                search.stats.tau_pruned += 1;
                continue;
            }
            search.push(
                StateRec {
                    node: us,
                    parent: NO_PARENT,
                    edge: None,
                    seg: 0,
                    hops_in_seg: 0,
                    total_hops: 0,
                    log_sum: 0.0,
                },
                priority,
            );
        }
        search
    }

    /// True when the frontier is drained — no further matches exist within
    /// the τ / n̂ bounds.
    pub fn is_exhausted(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops until the next-best match surfaces (Alg. 1 lines 2–14). Returns
    /// `None` when the search space is exhausted. Successive calls return
    /// matches in non-increasing pss order (Theorem 2).
    pub fn next_match(&mut self) -> Option<SubMatch> {
        debug_assert!(
            !self.anytime,
            "use step()/take_discovered() in anytime mode"
        );
        while let Some(Frontier { idx, .. }) = self.heap.pop() {
            self.stats.popped += 1;
            let state = self.arena[idx as usize];
            if state.seg as usize == self.plan.segments() {
                return Some(self.reconstruct(idx));
            }
            self.expand(idx, state);
        }
        None
    }

    /// One next-hop selection + expansion (anytime mode). Returns `false`
    /// when the frontier is drained. Discovered matches accumulate in
    /// [`AStarSearch::take_discovered`].
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            Some(Frontier { idx, .. }) => {
                self.stats.popped += 1;
                let state = self.arena[idx as usize];
                debug_assert!((state.seg as usize) < self.plan.segments());
                self.expand(idx, state);
                true
            }
            None => false,
        }
    }

    /// Number of matches discovered so far (anytime mode) — the `|M̂ᵢ|` fed
    /// to Algorithm 3's time estimate.
    pub fn discovered_len(&self) -> usize {
        self.discovered.len()
    }

    /// Takes the matches discovered so far (anytime mode).
    pub fn take_discovered(&mut self) -> Vec<SubMatch> {
        std::mem::take(&mut self.discovered)
    }

    /// True when `node` already lies on the partial path ending at `idx` —
    /// matches are *paths* (simple, footnote 1), so revisits are rejected.
    /// The walk is bounded by the hop budget, a small constant.
    fn on_path(&self, mut idx: u32, node: NodeId) -> bool {
        loop {
            let rec = self.arena[idx as usize];
            if rec.node == node {
                return true;
            }
            if rec.parent == NO_PARENT {
                return false;
            }
            idx = rec.parent;
        }
    }

    /// Search-space expansion (Alg. 1 lines 4–10) generalised to segments.
    fn expand(&mut self, idx: u32, state: StateRec) {
        let seg = state.seg as usize;
        let segments = self.plan.segments();
        for nb in self.graph.neighbors(state.node) {
            self.stats.edges_examined += 1;
            if self.on_path(idx, nb.node) {
                continue;
            }
            let new_log = state.log_sum + self.plan.log_weight(seg, nb.predicate);
            let hops = state.hops_in_seg + 1;
            let total = state.total_hops + 1;
            if hops as usize > self.plan.n_hat {
                continue;
            }

            // Segment completion: the edge lands on a match of the next
            // query node.
            let mut terminal = false;
            if self.plan.constraints[seg].admits(self.graph, nb.node) {
                if seg + 1 == segments {
                    terminal = true;
                    // Complete match — exact ψ becomes the priority (ψ̂ = ψ
                    // when u_i = u_t, Eq. 7).
                    let psi = exact_pss(new_log, total as usize);
                    if psi < self.plan.tau {
                        self.stats.tau_pruned += 1;
                    } else if self.visited.insert((nb.node.0, segments as u16)) {
                        let rec = StateRec {
                            node: nb.node,
                            parent: idx,
                            edge: Some(nb.edge),
                            seg: segments as u16,
                            hops_in_seg: hops,
                            total_hops: total,
                            log_sum: new_log,
                        };
                        if self.anytime {
                            // Algorithm 2 lines 10–11: collect immediately.
                            let arena_idx = self.arena.len() as u32;
                            self.arena.push(rec);
                            let m = self.reconstruct(arena_idx);
                            self.discovered.push(m);
                        } else {
                            self.push(rec, psi);
                        }
                    }
                } else if !self.visited.contains(&(nb.node.0, seg as u16 + 1)) {
                    let m_u = self.plan.max_adjacent_weight(self.graph, nb.node, seg + 1);
                    let priority = self.plan.estimator.estimate(new_log, m_u);
                    if priority < self.plan.tau {
                        self.stats.tau_pruned += 1;
                    } else {
                        self.visited.insert((nb.node.0, seg as u16 + 1));
                        self.push(
                            StateRec {
                                node: nb.node,
                                parent: idx,
                                edge: Some(nb.edge),
                                seg: seg as u16 + 1,
                                hops_in_seg: 0,
                                total_hops: total,
                                log_sum: new_log,
                            },
                            priority,
                        );
                    }
                }
            }

            // Continue within the current segment (edge-to-path mapping):
            // only useful when another hop may still be appended. Pivot
            // matches are terminal (Alg. 1 line 4 does not expand nodes in
            // φ(v_t)), so the search does not pass *through* them.
            if !terminal
                && (hops as usize) < self.plan.n_hat
                && !self.visited.contains(&(nb.node.0, state.seg))
            {
                let m_u = self.plan.max_adjacent_weight(self.graph, nb.node, seg);
                let priority = self.plan.estimator.estimate(new_log, m_u);
                if priority < self.plan.tau {
                    self.stats.tau_pruned += 1;
                } else {
                    self.visited.insert((nb.node.0, state.seg));
                    self.push(
                        StateRec {
                            node: nb.node,
                            parent: idx,
                            edge: Some(nb.edge),
                            seg: state.seg,
                            hops_in_seg: hops,
                            total_hops: total,
                            log_sum: new_log,
                        },
                        priority,
                    );
                }
            }
        }
    }

    fn push(&mut self, rec: StateRec, priority: f64) {
        let idx = self.arena.len() as u32;
        self.arena.push(rec);
        self.heap.push(Frontier { priority, idx });
        self.stats.pushed += 1;
    }
}

/// Computes `m(u)` (the seed priority input) for every candidate source.
///
/// On a sharded view with a large candidate set this is the scatter phase:
/// one job per shard, each scanning only the adjacency its shard owns (data
/// affinity — a shard job never touches another shard's CSR slices), with
/// the τ-thresholded gather done by the caller in canonical order. The
/// result vector is positionally identical to the serial computation, so
/// sharded and monolithic seeds cannot diverge.
fn seed_bounds<G: GraphView>(
    graph: &G,
    plan: &SubQueryPlan,
    sources: &[NodeId],
    pool: Option<&WorkerPool>,
) -> Vec<f64> {
    let shards = graph.shard_count();
    if let Some(pool) = pool {
        if shards > 1 && pool.workers() > 1 && sources.len() >= SCATTER_MIN_SOURCES {
            let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
            for (pos, &us) in sources.iter().enumerate() {
                by_shard[graph.shard_of(us)].push(pos as u32);
            }
            let mut jobs: Vec<(Vec<u32>, Vec<f64>)> = by_shard
                .into_iter()
                .filter(|positions| !positions.is_empty())
                .map(|positions| (positions, Vec::new()))
                .collect();
            pool.scope(|scope| {
                for job in jobs.iter_mut() {
                    scope.spawn(move || {
                        let (positions, out) = job;
                        score_positions(graph, plan, sources, positions, out);
                    });
                }
            });
            let mut bounds = vec![0.0f64; sources.len()];
            for (positions, out) in jobs {
                for (pos, m_u) in positions.into_iter().zip(out) {
                    bounds[pos as usize] = m_u;
                }
            }
            return bounds;
        }
    }
    let positions: Vec<u32> = (0..sources.len() as u32).collect();
    let mut out = Vec::with_capacity(sources.len());
    score_positions(graph, plan, sources, &positions, &mut out);
    out
}

/// Scores the seed bound for the sources at `positions`, appending to `out`
/// in position order — the shared inner loop of the serial seed and of each
/// per-shard scatter job.
fn score_positions<G: GraphView>(
    graph: &G,
    plan: &SubQueryPlan,
    sources: &[NodeId],
    positions: &[u32],
    out: &mut Vec<f64>,
) {
    out.reserve_exact(positions.len());
    // τ = 0 admits everything, so the prefilter pass would be a pure
    // double scan; fall through to the direct exact scan.
    if plan.scan == ScanMode::Kernel && plan.tau > 0.0 {
        score_positions_two_pass(graph, plan, sources, positions, out);
    } else {
        for &pos in positions {
            out.push(plan.max_adjacent_weight(graph, sources[pos as usize], 0));
        }
    }
}

/// The smallest non-negative f32 `m` with `ψ̂(0, m) ≥ τ`, or `+∞` when even
/// `m = 1` (the weight ceiling) fails τ. Found by binary search over the
/// f32 bit patterns — positive floats order like their bits — so the result
/// is *float-exact*: for every f32 `v` in `[0, 1]`, `v ≥ threshold` holds
/// iff `ψ̂(0, v) ≥ τ`. (The estimator's float-level weak monotonicity in
/// `m` is what makes the bisection sound; `pss.rs` proptests it strictly,
/// down to adjacent representable pairs.)
fn tau_threshold_f32(plan: &SubQueryPlan) -> f32 {
    if plan.estimator.estimate(0.0, 1.0) < plan.tau {
        return f32::INFINITY;
    }
    let mut lo = 0u32;
    let mut hi = 1.0f32.to_bits();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if plan.estimator.estimate(0.0, f64::from(f32::from_bits(mid))) >= plan.tau {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    f32::from_bits(lo)
}

/// Two-pass SoA seed scoring. Pass 1 bounds every candidate's `m(u)` from
/// the round-up f32 row — half the row traffic of the exact scan — into a
/// structure-of-arrays bounds buffer, cutting each scan short as soon as
/// the bound either proves survival (crosses the τ threshold) or hits the
/// row maximum; a batched threshold classification over the bounds then
/// selects the survivors with one compare per candidate instead of an
/// `exp`. Pass 2 rescores only the survivors against the exact f64 row,
/// gathering each survivor's adjacency slice through a reused buffer;
/// pruned candidates keep their (dominating) quantised bound, which the
/// caller's threshold re-check rejects.
///
/// Bit-identity with the scalar scan:
/// * [`tau_threshold_f32`] is float-exact, so classifying `m32 ≥ threshold`
///   decides *exactly* `ψ̂(m32) ≥ τ`;
/// * the f32 row dominates the exact row element-wise, and the ψ̂ estimator
///   is weakly monotone in `m(u)` (proptested in `pss.rs`), so
///   `ψ̂(quantised) < τ ⟹ ψ̂(exact) < τ` — prefilter pruning is admissible
///   and the caller prunes exactly the candidates the scalar path prunes;
/// * a pass-1 scan that stopped early at the threshold leaves a partial
///   (iteration-order-dependent) bound, but only for survivors — whose slot
///   pass 2 overwrites with the exact max before anyone reads it; pruned
///   candidates always complete the scan, so every value that leaves this
///   function is order-insensitive;
/// * survivors get the exact gather-max, which over the same element set
///   with the same floor is order-insensitive and bitwise equal to the
///   scalar running max.
fn score_positions_two_pass<G: GraphView>(
    graph: &G,
    plan: &SubQueryPlan,
    sources: &[NodeId],
    positions: &[u32],
    out: &mut Vec<f64>,
) {
    let exact = &plan.remaining_max[0];
    let upper = &plan.remaining_upper[0];
    let stop64 = plan.remaining_row_max[0];
    let stop32 = plan.remaining_upper_max[0];
    let init32 = kernels::round_up_f32(MIN_WEIGHT);
    let threshold = tau_threshold_f32(plan);
    // Stop a pass-1 scan at whichever comes first: proof of survival or
    // the row maximum (past which the bound cannot grow).
    let cut32 = threshold.min(stop32);
    let base = out.len();
    for &pos in positions {
        let mut m32 = init32;
        for nb in graph.neighbors(sources[pos as usize]) {
            let w = upper[nb.predicate.index()];
            if w > m32 {
                m32 = w;
                if m32 >= cut32 {
                    break;
                }
            }
        }
        out.push(f64::from(m32));
    }
    let mut survivors: Vec<u32> = Vec::new();
    kernels::classify_ge(&out[base..], f64::from(threshold), &mut survivors);
    let mut idx: Vec<u32> = Vec::new();
    for &slot in &survivors {
        idx.clear();
        for nb in graph.neighbors(sources[positions[slot as usize] as usize]) {
            idx.push(nb.predicate.0);
        }
        out[base + slot as usize] = kernels::gather_max(exact, &idx, MIN_WEIGHT, stop64);
    }
}

impl<'a, G: GraphView> AStarSearch<'a, G> {
    /// Rebuilds the path of a complete state by walking parents, recording
    /// the binding of each query node (the nodes where a segment begins or
    /// ends) along the way.
    fn reconstruct(&self, idx: u32) -> SubMatch {
        let complete = self.arena[idx as usize];
        let mut nodes = Vec::with_capacity(complete.total_hops as usize + 1);
        let mut edges = Vec::with_capacity(complete.total_hops as usize);
        let mut bindings = Vec::with_capacity(self.plan.query_nodes.len());
        let mut cursor = idx;
        loop {
            let rec = self.arena[cursor as usize];
            nodes.push(rec.node);
            match rec.edge {
                Some(e) => {
                    // A segment boundary: this state entered segment
                    // `rec.seg` while its parent was still in `rec.seg - 1`,
                    // so `rec.node` binds query node index `rec.seg`.
                    let parent_seg = self.arena[rec.parent as usize].seg;
                    if rec.seg > parent_seg {
                        bindings.push((self.plan.query_nodes[rec.seg as usize], rec.node));
                    }
                    edges.push(e);
                }
                None => {
                    bindings.push((self.plan.query_nodes[0], rec.node));
                    break;
                }
            }
            cursor = rec.parent;
        }
        nodes.reverse();
        edges.reverse();
        bindings.reverse();
        debug_assert_eq!(bindings.len(), self.plan.query_nodes.len());
        SubMatch {
            source: nodes[0],
            pivot: complete.node,
            pss: exact_pss(complete.log_sum, complete.total_hops as usize),
            nodes,
            edges,
            bindings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotStrategy;
    use crate::decompose::decompose;
    use crate::query::QueryGraph;
    use embedding::PredicateSpace;
    use kgraph::{GraphBuilder, KnowledgeGraph};
    use lexicon::{NodeMatcher, TransformationLibrary};
    use proptest::prelude::*;

    /// Registers the query predicate `q` in the graph's vocabulary via a
    /// dummy disconnected edge (query predicates must exist in the predicate
    /// space, §IV-A).
    fn register_q(b: &mut GraphBuilder) {
        let qa = b.add_node("DummyQA", "Dummy");
        let qb = b.add_node("DummyQB", "Dummy");
        b.add_edge(qa, qb, "q");
    }

    /// A predicate space where predicate `w<P>` has similarity `P/100` to
    /// the query predicate `q` — lets tests dial in exact edge weights.
    fn dial_space(graph: &KnowledgeGraph) -> PredicateSpace {
        let mut vectors = Vec::new();
        let mut labels = Vec::new();
        for (_, label) in graph.predicates() {
            let sim: f32 = if label == "q" {
                1.0
            } else {
                label
                    .strip_prefix('w')
                    .and_then(|s| s.parse::<f32>().ok())
                    .map_or(0.0, |p| p / 100.0)
            };
            vectors.push(vec![sim, (1.0 - sim * sim).max(0.0).sqrt()]);
            labels.push(label.to_string());
        }
        PredicateSpace::from_raw(vectors, labels)
    }

    struct Fixture {
        graph: KnowledgeGraph,
        space: PredicateSpace,
        lib: TransformationLibrary,
        query: QueryGraph,
    }

    impl Fixture {
        fn plan(&self, n_hat: usize, tau: f64) -> SubQueryPlan {
            let matcher = NodeMatcher::new(&self.graph, &self.lib);
            let d = decompose(&self.query, PivotStrategy::MinCost, 4.0, n_hat).unwrap();
            assert_eq!(d.subqueries.len(), 1, "fixtures use single sub-queries");
            SubQueryPlan::build(
                &self.graph,
                &self.space,
                &matcher,
                &self.query,
                &d.subqueries[0],
                n_hat,
                tau,
            )
        }

        fn matches(&self, n_hat: usize, tau: f64, k: usize) -> Vec<SubMatch> {
            let plan = self.plan(n_hat, tau);
            let mut search = AStarSearch::new(&self.graph, &plan);
            let mut out = Vec::new();
            while out.len() < k {
                match search.next_match() {
                    Some(m) => out.push(m),
                    None => break,
                }
            }
            out
        }
    }

    /// Star of 1-hop answers with distinct weights, plus a 2-hop path.
    fn star_fixture() -> Fixture {
        let mut b = GraphBuilder::new();
        let src = b.add_node("S", "Anchor");
        for (i, w) in [98u32, 85, 60, 40].iter().enumerate() {
            let t = b.add_node(&format!("T{i}"), "Goal");
            b.add_edge(t, src, &format!("w{w}"));
        }
        // 2-hop: S --w90-- M --w90-- T4 (pss = 0.9)
        let mid = b.add_node("M", "Mid");
        let t4 = b.add_node("T4", "Goal");
        b.add_edge(mid, src, "w90");
        b.add_edge(t4, mid, "w90");
        register_q(&mut b);
        let graph = b.finish();
        let space = dial_space(&graph);
        let mut query = QueryGraph::new();
        let goal = query.add_target("Goal");
        let anchor = query.add_specific("S", "Anchor");
        query.add_edge(goal, "q", anchor);
        Fixture {
            graph,
            space,
            lib: TransformationLibrary::new(),
            query,
        }
    }

    #[test]
    fn matches_arrive_in_nonincreasing_pss_order() {
        let f = star_fixture();
        let ms = f.matches(4, 0.0, 10);
        assert_eq!(ms.len(), 5);
        for pair in ms.windows(2) {
            assert!(pair[0].pss >= pair[1].pss - 1e-12);
        }
        // Best is the 0.98 edge; the 0.9 geometric-mean 2-hop path ranks
        // second, above the 0.85 single hop.
        assert_eq!(f.graph.node_name(ms[0].pivot), "T0");
        assert!((ms[0].pss - 0.98).abs() < 1e-6);
        assert_eq!(f.graph.node_name(ms[1].pivot), "T4");
        assert!((ms[1].pss - 0.90).abs() < 1e-6);
    }

    #[test]
    fn edge_to_path_mapping_respects_n_hat() {
        let f = star_fixture();
        // n̂ = 1 forbids the 2-hop match.
        let ms = f.matches(1, 0.0, 10);
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.hops() == 1));
        assert!(!ms.iter().any(|m| f.graph.node_name(m.pivot) == "T4"));
    }

    #[test]
    fn tau_prunes_low_pss_matches() {
        let f = star_fixture();
        let ms = f.matches(4, 0.8, 10);
        assert!(ms.iter().all(|m| m.pss >= 0.8));
        assert_eq!(ms.len(), 3); // 0.98, 0.90, 0.85
        let plan = f.plan(4, 0.8);
        let mut search = AStarSearch::new(&f.graph, &plan);
        while search.next_match().is_some() {}
        assert!(search.stats.tau_pruned > 0);
    }

    #[test]
    fn exhaustion_returns_none_and_is_sticky() {
        let f = star_fixture();
        let plan = f.plan(4, 0.0);
        let mut search = AStarSearch::new(&f.graph, &plan);
        let mut n = 0;
        while search.next_match().is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(search.is_exhausted());
        assert!(search.next_match().is_none());
    }

    #[test]
    fn each_pivot_yields_at_most_one_match() {
        // Two parallel paths to the same pivot: visited semantics keep one.
        let mut b = GraphBuilder::new();
        let src = b.add_node("S", "Anchor");
        let t = b.add_node("T", "Goal");
        let m1 = b.add_node("M1", "Mid");
        let m2 = b.add_node("M2", "Mid");
        b.add_edge(src, m1, "w90");
        b.add_edge(m1, t, "w90");
        b.add_edge(src, m2, "w70");
        b.add_edge(m2, t, "w70");
        register_q(&mut b);
        let graph = b.finish();
        let space = dial_space(&graph);
        let mut query = QueryGraph::new();
        let goal = query.add_target("Goal");
        let anchor = query.add_specific("S", "Anchor");
        query.add_edge(goal, "q", anchor);
        let f = Fixture {
            graph,
            space,
            lib: TransformationLibrary::new(),
            query,
        };
        let ms = f.matches(4, 0.0, 10);
        assert_eq!(ms.len(), 1);
        assert!((ms[0].pss - 0.9).abs() < 1e-6, "the better path wins");
    }

    #[test]
    fn multi_segment_subquery_checks_intermediate_type() {
        // Query: Germany --q-- ?Mid --q-- ?Goal (2 segments), graph offers
        // one path through a Mid node and one through a Wrong node.
        let mut b = GraphBuilder::new();
        let de = b.add_node("Germany", "Country");
        let mid = b.add_node("EngineX", "Mid");
        let wrong = b.add_node("PersonY", "Wrong");
        let goal1 = b.add_node("CarA", "Goal");
        let goal2 = b.add_node("CarB", "Goal");
        b.add_edge(mid, de, "w95");
        b.add_edge(goal1, mid, "w95");
        b.add_edge(wrong, de, "w99");
        b.add_edge(goal2, wrong, "w99");
        register_q(&mut b);
        let graph = b.finish();
        let space = dial_space(&graph);
        let mut query = QueryGraph::new();
        let de_q = query.add_specific("Germany", "Country");
        let mid_q = query.add_target("Mid");
        let goal_q = query.add_target("Goal");
        query.add_edge(mid_q, "q", de_q);
        query.add_edge(goal_q, "q", mid_q);
        let f = Fixture {
            graph,
            space,
            lib: TransformationLibrary::new(),
            query,
        };
        let ms = f.matches(2, 0.0, 10);
        // Only the path through the Mid-typed node is a valid match of the
        // 2-segment sub-query with a 1-hop-per-segment mapping… but the
        // Wrong-typed path is still reachable by mapping the *first* query
        // edge to a 2-hop path. With n̂ = 2 both segment mappings are legal,
        // so CarB may match too — verify the Mid-typed route ranks first
        // and intermediate constraints held where segments transition.
        assert!(!ms.is_empty());
        assert_eq!(f.graph.node_name(ms[0].pivot), "CarA");
        for m in &ms {
            // Every match's segment transition node (nodes[1] when both
            // segments are 1 hop) satisfies the Mid constraint or the match
            // used a longer first segment.
            assert!(m.hops() >= 2);
        }
    }

    #[test]
    fn source_equals_constraint_type_does_not_self_match() {
        // Sub-queries have ≥ 1 edge, so a source satisfying the pivot
        // constraint is not itself a match.
        let mut b = GraphBuilder::new();
        let s = b.add_node("S", "Goal"); // source also has Goal type
        let t = b.add_node("T", "Goal");
        b.add_edge(s, t, "w90");
        register_q(&mut b);
        let graph = b.finish();
        let space = dial_space(&graph);
        let mut query = QueryGraph::new();
        let goal = query.add_target("Goal");
        let anchor = query.add_specific("S", "Goal");
        query.add_edge(goal, "q", anchor);
        let f = Fixture {
            graph,
            space,
            lib: TransformationLibrary::new(),
            query,
        };
        let ms = f.matches(4, 0.0, 10);
        assert_eq!(ms.len(), 1);
        assert_eq!(f.graph.node_name(ms[0].pivot), "T");
        assert_eq!(ms[0].hops(), 1);
    }

    #[test]
    fn empty_plan_yields_no_matches() {
        let f = star_fixture();
        let mut query = QueryGraph::new();
        let goal = query.add_target("Nonexistent");
        let anchor = query.add_specific("S", "Anchor");
        query.add_edge(goal, "q", anchor);
        let f2 = Fixture { query, ..f };
        assert!(f2.matches(4, 0.0, 10).is_empty());
    }

    /// `n`'s bits choose the uppercase positions of `base` — distinct raw
    /// names that all normalise to the same φ key, the way real dumps carry
    /// case variants of one label.
    fn case_variant(base: &str, n: usize) -> String {
        base.chars()
            .enumerate()
            .map(|(i, c)| {
                if i < usize::BITS as usize && n & (1 << i) != 0 {
                    c.to_ascii_uppercase()
                } else {
                    c
                }
            })
            .collect()
    }

    /// Scatter seeding over a sharded view must produce a frontier — and
    /// therefore the full match stream — bit-identical to the serial seed
    /// and to the monolithic graph. 400 φ candidates (case collisions of
    /// one source label) clear the `SCATTER_MIN_SOURCES` gate.
    #[test]
    fn scatter_seeding_is_bit_identical_to_serial() {
        let build = || {
            let mut b = GraphBuilder::new();
            for i in 0..400usize {
                let s = b.add_node(&case_variant("sourcehubnodealpha", i), "Anchor");
                let t = b.add_node(&format!("T{i}"), "Goal");
                b.add_edge(s, t, &format!("w{}", 30 + (i % 65)));
            }
            register_q(&mut b);
            b.finish()
        };
        let mono = build();
        let space = dial_space(&mono);
        let lib = TransformationLibrary::new();
        let mut query = QueryGraph::new();
        let goal = query.add_target("Goal");
        let anchor = query.add_specific("sourcehubnodealpha", "Anchor");
        query.add_edge(goal, "q", anchor);
        let d = decompose(&query, PivotStrategy::MinCost, 4.0, 2).unwrap();

        let drain = |mut search: AStarSearch<'_, kgraph::ShardedGraph>| {
            let mut out = Vec::new();
            while let Some(m) = search.next_match() {
                out.push(m);
            }
            (out, search.stats)
        };
        // Monolithic reference stream.
        let matcher = NodeMatcher::new(&mono, &lib);
        let plan = SubQueryPlan::build(&mono, &space, &matcher, &query, &d.subqueries[0], 2, 0.4);
        assert!(plan.sources.len() >= 400, "collision family must resolve");
        let mut reference = Vec::new();
        let mut search = AStarSearch::new(&mono, &plan);
        while let Some(m) = search.next_match() {
            reference.push(m);
        }
        let reference_stats = search.stats;

        for shards in [2usize, 4, 8] {
            let sharded = kgraph::ShardedGraph::from_graph(build(), shards).unwrap();
            let matcher = NodeMatcher::new(sharded.clone(), &lib);
            let plan =
                SubQueryPlan::build(&sharded, &space, &matcher, &query, &d.subqueries[0], 2, 0.4);
            let pool = WorkerPool::new(4);
            let (pooled, pooled_stats) = drain(AStarSearch::new_on_pool(&sharded, &plan, &pool));
            let (serial, serial_stats) = drain(AStarSearch::new(&sharded, &plan));
            assert_eq!(pooled, serial, "{shards} shards: scatter diverged");
            assert_eq!(pooled_stats, serial_stats);
            assert_eq!(pooled, reference, "{shards} shards: sharded view diverged");
            assert_eq!(pooled_stats, reference_stats);
        }
    }

    /// Brute-force reference: enumerate all simple source→goal paths of
    /// ≤ n̂ hops and rank by geometric-mean weight.
    fn brute_force_best(graph: &KnowledgeGraph, plan: &SubQueryPlan) -> Option<f64> {
        fn dfs(
            graph: &KnowledgeGraph,
            plan: &SubQueryPlan,
            node: NodeId,
            hops: usize,
            log_sum: f64,
            seen: &mut Vec<NodeId>,
            best: &mut Option<f64>,
        ) {
            if hops > 0 && plan.constraints[0].admits(graph, node) {
                let psi = exact_pss(log_sum, hops);
                if best.is_none_or(|b| psi > b) {
                    *best = Some(psi);
                }
                return; // matches terminate at goal nodes, like the search
            }
            if hops == plan.n_hat {
                return;
            }
            for nb in graph.neighbors(node) {
                if seen.contains(&nb.node) {
                    continue;
                }
                seen.push(nb.node);
                dfs(
                    graph,
                    plan,
                    nb.node,
                    hops + 1,
                    log_sum + plan.weight(0, nb.predicate).ln(),
                    seen,
                    best,
                );
                seen.pop();
            }
        }
        let mut best = None;
        for &s in &plan.sources {
            let mut seen = vec![s];
            dfs(graph, plan, s, 0, 0.0, &mut seen, &mut best);
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// On random *trees* (where the visited-set pruning can never hide
        /// an alternative path), the A* top-1 equals brute force (Thm. 2).
        #[test]
        fn prop_top1_optimal_on_trees(
            n in 2usize..24,
            weights in proptest::collection::vec(5u32..100, 30),
            goals in proptest::collection::vec(0usize..100, 1..6),
            seed in 0u64..1000,
        ) {
            let mut b = GraphBuilder::new();
            let root = b.add_node("S", "Anchor");
            let mut nodes = vec![root];
            let goal_idx: std::collections::HashSet<usize> =
                goals.iter().map(|g| g % n).collect();
            for i in 1..n {
                let ty = if goal_idx.contains(&i) { "Goal" } else { "Inner" };
                let child = b.add_node(&format!("N{i}"), ty);
                // Attach to a pseudo-random existing node → tree.
                let parent = nodes[(seed as usize + i * 7) % nodes.len()];
                let w = weights[i % weights.len()];
                b.add_edge(parent, child, &format!("w{w}"));
                nodes.push(child);
            }
            register_q(&mut b);
            let graph = b.finish();
            if graph.type_id("Goal").is_none() {
                return Ok(());
            }
            let space = dial_space(&graph);
            let lib = TransformationLibrary::new();
            let matcher = NodeMatcher::new(&graph, &lib);
            let mut query = QueryGraph::new();
            let goal = query.add_target("Goal");
            let anchor = query.add_specific("S", "Anchor");
            query.add_edge(goal, "q", anchor);
            let d = decompose(&query, PivotStrategy::MinCost, 4.0, 3).unwrap();
            let plan = SubQueryPlan::build(
                &graph, &space, &matcher, &query, &d.subqueries[0], 3, 0.0,
            );
            let mut search = AStarSearch::new(&graph, &plan);
            let astar_best = search.next_match().map(|m| m.pss);
            let brute_best = brute_force_best(&graph, &plan);
            match (astar_best, brute_best) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9,
                    "a* {a} vs brute {b}"),
                (None, None) => {}
                (a, b) => prop_assert!(false, "disagree: {a:?} vs {b:?}"),
            }
        }
    }
}
