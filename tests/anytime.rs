//! TBQ integration: Theorem 4's convergence and deadline behaviour.

use semkg::datagen::metrics::jaccard;
use semkg::datagen::workload::produced_workload;
use semkg::prelude::*;
use std::time::Duration;

fn setup() -> (BenchDataset, PredicateSpace) {
    let ds = DatasetSpec::dbpedia_like(2.0).build();
    let space = ds.oracle_space();
    (ds, space)
}

#[test]
fn generous_bound_converges_to_exact_answer() {
    let (ds, space) = setup();
    let q = &produced_workload(&ds)[0];
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 50,
            ..SgqConfig::default()
        },
    );
    let exact = engine.query(&q.graph).unwrap().answer_nodes();
    let tb = TimeBoundConfig::with_bound(Duration::from_secs(10));
    let approx = engine.query_time_bounded(&q.graph, &tb).unwrap();
    assert_eq!(
        jaccard(&approx.answer_nodes(), &exact),
        1.0,
        "M̂ = M with enough time (Theorem 4)"
    );
}

#[test]
fn approximation_quality_is_monotone_in_the_bound_on_average() {
    // Lemma 6/Theorem 4 hold per-run for nested explorations; across
    // wall-clock bounds the trend must show on average.
    let (ds, space) = setup();
    let workload = produced_workload(&ds);
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 50,
            tau: 0.3,
            ..SgqConfig::default()
        },
    );
    let mut mean_jaccard = Vec::new();
    for bound_us in [300u64, 100_000] {
        let tb = TimeBoundConfig::with_bound(Duration::from_micros(bound_us));
        let mut scores = Vec::new();
        for q in workload.iter().take(4) {
            let exact = engine.query(&q.graph).unwrap().answer_nodes();
            let approx = engine.query_time_bounded(&q.graph, &tb).unwrap();
            scores.push(jaccard(&approx.answer_nodes(), &exact));
        }
        mean_jaccard.push(scores.iter().sum::<f64>() / scores.len() as f64);
    }
    assert!(
        mean_jaccard[1] >= mean_jaccard[0],
        "more time must not hurt approximation quality: {mean_jaccard:?}"
    );
    assert!(
        mean_jaccard[1] > 0.99,
        "a generous bound reaches the exact answer: {mean_jaccard:?}"
    );
}

#[test]
fn tiny_bound_returns_quickly_and_is_well_formed() {
    let (ds, space) = setup();
    let q = &produced_workload(&ds)[0];
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 50,
            tau: 0.1,
            ..SgqConfig::default()
        },
    );
    let tb = TimeBoundConfig::with_bound(Duration::from_micros(300));
    let t0 = std::time::Instant::now();
    let result = engine.query_time_bounded(&q.graph, &tb).unwrap();
    let elapsed = t0.elapsed();
    // Scores are well-formed and sorted.
    for w in result.matches.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    // The run must terminate promptly (controller granularity + assembly
    // overhead allow a small multiple of the bound, not unbounded search).
    assert!(
        elapsed < Duration::from_secs(2),
        "TBQ must respect tight bounds, took {elapsed:?}"
    );
}

#[test]
fn calibration_feeds_the_estimator() {
    let t = semkg::sgq::timebound::calibrate_ta_cost();
    assert!(t.as_nanos() > 0);
    let cfg = TimeBoundConfig {
        per_match_ta_cost: t,
        ..TimeBoundConfig::default()
    };
    assert_eq!(cfg.per_match_ta_cost, t);
}
