/root/repo/target/release/examples/quickstart-f11e07dad2f2c81c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f11e07dad2f2c81c: examples/quickstart.rs

examples/quickstart.rs:
