/root/repo/target/debug/deps/anytime-882be99b1493984c.d: tests/anytime.rs Cargo.toml

/root/repo/target/debug/deps/libanytime-882be99b1493984c.rmeta: tests/anytime.rs Cargo.toml

tests/anytime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
