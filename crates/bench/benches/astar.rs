//! A\* semantic search latency (the micro view behind Figs. 12–14(d)):
//! single-edge and multi-segment sub-queries at several k.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::workload::{chain_query, produced_workload};
use sgq::{SgqConfig, SgqEngine};
use std::hint::black_box;

fn bench_astar(c: &mut Criterion) {
    let ds = DatasetSpec::dbpedia_like(3.0).build();
    let space = ds.oracle_space();
    let workload = produced_workload(&ds);
    let chain = chain_query(&ds, 0);

    let mut group = c.benchmark_group("astar");
    group.sample_size(20);
    for k in [20usize, 100] {
        let engine = SgqEngine::new(
            &ds.graph,
            &space,
            &ds.library,
            SgqConfig {
                k,
                ..SgqConfig::default()
            },
        );
        group.bench_function(format!("sgq_single_edge_k{k}"), |b| {
            b.iter(|| black_box(engine.query(&workload[0].graph).unwrap().matches.len()))
        });
    }
    let engine = SgqEngine::new(
        &ds.graph,
        &space,
        &ds.library,
        SgqConfig {
            k: 20,
            ..SgqConfig::default()
        },
    );
    group.bench_function("sgq_chain_two_subqueries_k20", |b| {
        b.iter(|| black_box(engine.query(&chain.graph).unwrap().matches.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_astar);
criterion_main!(benches);
