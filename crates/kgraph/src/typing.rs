//! Probabilistic entity typing.
//!
//! Paper Example 1: *"If the type of a node in G is unknown, we employ a
//! probabilistic model-based entity typing method to assign a type on it"*
//! (citing Nakashole et al., ACL 2013). We implement the same idea as a
//! naive-Bayes classifier over the incident predicate/direction pattern of a
//! node: `P(type | evidence) ∝ P(type) · ∏ P(predicate, direction | type)`,
//! with add-one smoothing, trained on the typed portion of the graph.

use crate::graph::KnowledgeGraph;
use crate::ids::{NodeId, TypeId};
use rustc_hash::FxHashMap;

/// The sentinel type label carried by untyped nodes.
pub const UNKNOWN_TYPE: &str = "?";

/// A trained typing model: per-type priors and per-type conditional
/// likelihoods of observing `(predicate, direction)` evidence.
#[derive(Debug, Clone)]
pub struct TypingModel {
    /// Log prior per type id.
    log_prior: Vec<f64>,
    /// `(type, predicate, outgoing)` → log likelihood.
    log_like: FxHashMap<(u32, u32, bool), f64>,
    /// Fallback log likelihood per type (unseen evidence, smoothed).
    log_unseen: Vec<f64>,
    /// Types the model can emit (excludes the unknown sentinel).
    candidate_types: Vec<TypeId>,
}

impl TypingModel {
    /// Trains the model on all nodes of `graph` whose type is known.
    pub fn train(graph: &KnowledgeGraph) -> Self {
        let unknown = graph.type_id(UNKNOWN_TYPE);
        let type_count = graph.type_count();
        let mut type_nodes = vec![0usize; type_count];
        let mut evidence_counts: FxHashMap<(u32, u32, bool), usize> = FxHashMap::default();
        let mut evidence_total = vec![0usize; type_count];

        for node in graph.nodes() {
            let ty = graph.node_type(node);
            if Some(ty) == unknown {
                continue;
            }
            type_nodes[ty.index()] += 1;
            for nb in graph.neighbors(node) {
                *evidence_counts
                    .entry((ty.0, nb.predicate.0, nb.outgoing))
                    .or_insert(0) += 1;
                evidence_total[ty.index()] += 1;
            }
        }

        let typed_nodes: usize = type_nodes.iter().sum();
        let vocab = (graph.predicate_count() * 2).max(1); // smoothing vocabulary
        let mut log_prior = vec![f64::NEG_INFINITY; type_count];
        let mut log_unseen = vec![f64::NEG_INFINITY; type_count];
        let mut candidate_types = Vec::new();
        for ty in 0..type_count {
            if type_nodes[ty] == 0 {
                continue;
            }
            candidate_types.push(TypeId::new(ty as u32));
            log_prior[ty] =
                ((type_nodes[ty] as f64 + 1.0) / (typed_nodes as f64 + type_count as f64)).ln();
            log_unseen[ty] = (1.0 / (evidence_total[ty] as f64 + vocab as f64)).ln();
        }
        let log_like = evidence_counts
            .into_iter()
            .map(|((ty, pred, dir), count)| {
                let denom = evidence_total[ty as usize] as f64 + vocab as f64;
                ((ty, pred, dir), ((count as f64 + 1.0) / denom).ln())
            })
            .collect();

        Self {
            log_prior,
            log_like,
            log_unseen,
            candidate_types,
        }
    }

    /// Scores `node`'s evidence against every candidate type and returns the
    /// argmax with its log posterior (unnormalised). `None` when the model
    /// has no candidate types or the node has no evidence.
    pub fn classify(&self, graph: &KnowledgeGraph, node: NodeId) -> Option<(TypeId, f64)> {
        if self.candidate_types.is_empty() {
            return None;
        }
        let evidence: Vec<(u32, bool)> = graph
            .neighbors(node)
            .map(|nb| (nb.predicate.0, nb.outgoing))
            .collect();
        if evidence.is_empty() {
            return None;
        }
        let mut best: Option<(TypeId, f64)> = None;
        for &ty in &self.candidate_types {
            let mut score = self.log_prior[ty.index()];
            for &(pred, dir) in &evidence {
                score += self
                    .log_like
                    .get(&(ty.0, pred, dir))
                    .copied()
                    .unwrap_or(self.log_unseen[ty.index()]);
            }
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((ty, score));
            }
        }
        best
    }
}

/// Assigns a type to every `UNKNOWN_TYPE` node of `graph` using a model
/// trained on the typed remainder. Returns the number of nodes retyped.
pub fn assign_unknown_types(graph: &mut KnowledgeGraph) -> usize {
    let Some(unknown) = graph.type_id(UNKNOWN_TYPE) else {
        return 0;
    };
    let model = TypingModel::train(graph);
    let untyped: Vec<NodeId> = graph.nodes_with_type(unknown).to_vec();
    let mut assigned = 0;
    for node in untyped {
        if let Some((ty, _)) = model.classify(graph, node) {
            graph.retype_node(node, ty);
            assigned += 1;
        }
    }
    assigned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Cars point at countries with `assembly`; people point at countries
    /// with `nationality`. An untyped node with an `assembly` out-edge should
    /// be classified as a car.
    fn build() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let de = b.add_node("Germany", "Country");
        for i in 0..5 {
            let car = b.add_node(&format!("Car{i}"), "Automobile");
            b.add_edge(car, de, "assembly");
        }
        for i in 0..5 {
            let p = b.add_node(&format!("Person{i}"), "Person");
            b.add_edge(p, de, "nationality");
        }
        let mystery = b.add_untyped_node("Mystery");
        b.add_edge(mystery, de, "assembly");
        let loner = b.add_untyped_node("Loner"); // no edges at all
        let _ = loner;
        b.finish()
    }

    #[test]
    fn classifies_by_predicate_pattern() {
        let g = build();
        let model = TypingModel::train(&g);
        let mystery = g.node_by_name("Mystery").unwrap();
        let (ty, _) = model.classify(&g, mystery).unwrap();
        assert_eq!(g.type_name(ty), "Automobile");
    }

    #[test]
    fn direction_matters() {
        // `assembly` arrives *at* countries, so a node with an incoming
        // assembly edge looks like a Country, not an Automobile.
        let mut b = GraphBuilder::new();
        let de = b.add_node("Germany", "Country");
        let fr = b.add_node("France", "Country");
        for i in 0..4 {
            let car = b.add_node(&format!("Car{i}"), "Automobile");
            b.add_edge(car, if i % 2 == 0 { de } else { fr }, "assembly");
        }
        let mystery = b.add_untyped_node("Mystery");
        let car0 = b.node_by_name("Car0").unwrap();
        b.add_edge(car0, mystery, "assembly");
        let g = {
            let mut g = b.finish();
            assign_unknown_types(&mut g);
            g
        };
        let mystery = g.node_by_name("Mystery").unwrap();
        assert_eq!(g.node_type_name(mystery), "Country");
    }

    #[test]
    fn assign_unknown_types_counts() {
        let mut g = build();
        let n = assign_unknown_types(&mut g);
        assert_eq!(n, 1, "only the evidence-bearing node is classified");
        let mystery = g.node_by_name("Mystery").unwrap();
        assert_eq!(g.node_type_name(mystery), "Automobile");
        let loner = g.node_by_name("Loner").unwrap();
        assert_eq!(g.node_type_name(loner), UNKNOWN_TYPE);
    }

    #[test]
    fn no_unknowns_is_a_noop() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", "T");
        let c = b.add_node("B", "T");
        b.add_edge(a, c, "p");
        let mut g = b.finish();
        assert_eq!(assign_unknown_types(&mut g), 0);
    }

    #[test]
    fn classify_none_without_candidates() {
        let mut b = GraphBuilder::new();
        let a = b.add_untyped_node("A");
        let c = b.add_untyped_node("B");
        b.add_edge(a, c, "p");
        let g = b.finish();
        let model = TypingModel::train(&g);
        assert!(model.classify(&g, a).is_none());
    }
}
