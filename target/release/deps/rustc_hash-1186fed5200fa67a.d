/root/repo/target/release/deps/rustc_hash-1186fed5200fa67a.d: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-1186fed5200fa67a.rlib: vendor/rustc-hash/src/lib.rs

/root/repo/target/release/deps/librustc_hash-1186fed5200fa67a.rmeta: vendor/rustc-hash/src/lib.rs

vendor/rustc-hash/src/lib.rs:
