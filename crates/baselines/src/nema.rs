//! NeMa (Khan et al., PVLDB 2013) — neighborhood-based structural
//! similarity search.
//!
//! NeMa matches query nodes through label similarity and allows a query
//! edge to map to a path of up to `h` hops, scored by structural proximity
//! (closer is better). Predicates are *not* considered during the path
//! mapping — the paper's Table I shows this costs precision: semantically
//! wrong paths of the right shape are returned.

use crate::common::{
    run_baseline, Features, GraphQueryMethod, MethodAnswer, NodeMode, SegmentScorer,
};
use kgraph::{KnowledgeGraph, PredicateId};
use lexicon::TransformationLibrary;
use sgq::query::QueryGraph;

/// The NeMa comparator.
#[derive(Debug, Clone, Copy)]
pub struct NeMa {
    max_hops: usize,
}

impl NeMa {
    /// `max_hops` mirrors NeMa's neighborhood radius `h`.
    pub fn new(max_hops: usize) -> Self {
        Self {
            max_hops: max_hops.max(1),
        }
    }
}

/// Structural proximity: a mapping onto an `h`-hop path scores `1/h`.
struct Proximity {
    max_hops: usize,
}

impl SegmentScorer for Proximity {
    fn max_hops(&self) -> usize {
        self.max_hops
    }
    fn score(&self, _: &KnowledgeGraph, _: &str, preds: &[PredicateId]) -> Option<f64> {
        Some(1.0 / preds.len() as f64)
    }
}

impl GraphQueryMethod for NeMa {
    fn name(&self) -> &'static str {
        "NeMa"
    }

    fn features(&self) -> Features {
        Features {
            node_similarity: true,
            edge_to_path: true,
            predicates: false,
            idea: "structural similarity",
        }
    }

    fn query(
        &self,
        graph: &KnowledgeGraph,
        library: &TransformationLibrary,
        query: &QueryGraph,
        k: usize,
    ) -> Vec<MethodAnswer> {
        run_baseline(
            graph,
            library,
            query,
            k,
            NodeMode::Similar,
            &Proximity {
                max_hops: self.max_hops,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    #[test]
    fn finds_paths_regardless_of_predicate() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("A1", "Automobile");
        let a2 = b.add_node("A2", "Automobile");
        let p = b.add_node("Peter", "Person");
        let de = b.add_node("Germany", "Country");
        b.add_edge(a1, de, "assembly"); // semantically right
        b.add_edge(p, a2, "designer"); // semantically wrong route
        b.add_edge(p, de, "nationality");
        let g = b.finish();
        let lib = TransformationLibrary::new();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de_q = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de_q);
        let ans = NeMa::new(4).query(&g, &lib, &q, 10);
        // Both are found (no predicate awareness); the 1-hop one ranks first.
        assert_eq!(ans.len(), 2);
        assert_eq!(g.node_name(ans[0].node), "A1");
        assert!(ans[0].score > ans[1].score);
    }

    #[test]
    fn hop_radius_limits_reach() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("A", "Automobile");
        let x = b.add_node("X", "T");
        let y = b.add_node("Y", "T");
        let de = b.add_node("Germany", "Country");
        b.add_edge(de, x, "p");
        b.add_edge(x, y, "p");
        b.add_edge(y, a, "p");
        let g = b.finish();
        let lib = TransformationLibrary::new();
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de_q = q.add_specific("Germany", "Country");
        q.add_edge(auto, "made", de_q);
        assert!(NeMa::new(2).query(&g, &lib, &q, 10).is_empty());
        assert_eq!(NeMa::new(3).query(&g, &lib, &q, 10).len(), 1);
    }
}
