//! Differential harness for the deadline-aware batch scheduler.
//!
//! The scheduler's contract (see `sgq::sched`): with slack deadlines, a
//! scheduled response is **bit-identical** to the direct, unscheduled
//! [`QueryService`] path; under deadline pressure every response is either
//! exact, a *flagged* TBQ degradation, or an explicit shed — never a
//! silently wrong answer. The workloads are the seeded `datagen::workload`
//! streams (dataset seeds fix both graph and queries), so every run
//! compares the same scheduled traffic against the same reference answers.

use datagen::dataset::{BenchDataset, DatasetSpec};
use datagen::workload::{chain_query, produced_workload, q117_variants, soccer_query};
use embedding::PredicateSpace;
use kgraph::VersionedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sgq::sched::{BatchScheduler, Priority, SchedOutcome, SchedResponse};
use sgq::{FinalMatch, LiveQueryService, QueryGraph, QueryService, SchedConfig, SgqConfig};
use std::sync::Arc;
use std::time::Duration;

fn config() -> SgqConfig {
    SgqConfig {
        k: 20,
        tau: 0.3,
        workers: 4,
        ..SgqConfig::default()
    }
}

fn setup() -> (BenchDataset, PredicateSpace) {
    let ds = DatasetSpec::dbpedia_like(1.0).build();
    let space = ds.oracle_space();
    (ds, space)
}

/// The full seeded differential workload: the bulk produced stream, the
/// four Fig. 1 Q117 variants, a Fig. 3(a) chain and a Fig. 16 soccer query
/// — simple through complex decompositions.
fn workload(ds: &BenchDataset) -> Vec<QueryGraph> {
    let mut queries: Vec<QueryGraph> = produced_workload(ds).into_iter().map(|q| q.graph).collect();
    queries.extend(
        q117_variants(ds, &ds.countries[0])
            .into_iter()
            .map(|q| q.graph),
    );
    queries.push(chain_query(ds, 0).graph);
    queries.push(soccer_query(ds, 0).0.graph);
    queries
}

/// With no deadline pressure, every scheduled answer must be bit-identical
/// to the direct `QueryService` path — across many concurrent clients,
/// arbitrary per-client orderings, and batched (coalesced) execution.
#[test]
fn scheduled_equals_direct_when_deadlines_are_slack() {
    let (ds, space) = setup();
    let service = QueryService::build(&ds.graph, &space, &ds.library, config());
    let queries = workload(&ds);
    let baseline: Vec<Vec<FinalMatch>> = queries
        .iter()
        .map(|q| service.query(q).expect("direct path answers").matches)
        .collect();

    let stats = BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        std::thread::scope(|s| {
            for client in 0..8u64 {
                let handle = &handle;
                let queries = &queries;
                let baseline = &baseline;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x5eed_c11e + client);
                    for _ in 0..2 * queries.len() {
                        let idx = rng.random_range(0..queries.len());
                        let response = handle.query_within(
                            &queries[idx],
                            Duration::from_secs(30),
                            Priority::Normal,
                        );
                        match response.outcome {
                            SchedOutcome::Exact(r) => assert_eq!(
                                r.matches, baseline[idx],
                                "scheduled answer diverged from the direct path on query {idx}"
                            ),
                            other => {
                                panic!("slack deadline must never shed or degrade, got {other:?}")
                            }
                        }
                    }
                });
            }
        });
        handle.stats()
    })
    .expect("valid scheduler config");

    let expected = 8 * 2 * queries.len() as u64;
    assert_eq!(stats.submitted, expected);
    assert_eq!(stats.exact, expected);
    assert_eq!(stats.degraded + stats.shed() + stats.failed, 0);
    // Every request either flowed through a batch or was served from the
    // answer cache — and the per-response assertions above compared every
    // cache-served answer bit-identically against the direct path.
    assert_eq!(
        stats.batched_requests + stats.answer_cache_served(),
        expected,
        "every admitted request flows through a batch or the answer cache"
    );
    assert!(
        stats.answer_cache_served() > 0,
        "8 clients replaying a fixed workload must repeat queries: {stats:?}"
    );
}

/// Under pressure — a mix of slack, tight and already-expired deadlines at
/// 16 clients — every response must be exact (and then bit-identical),
/// a flagged degradation, or an explicit shed. Nothing may fail, hang, or
/// come back wrong without a flag.
#[test]
fn under_pressure_every_response_is_exact_flagged_or_shed() {
    let (ds, space) = setup();
    let service = QueryService::build(&ds.graph, &space, &ds.library, config());
    let queries = workload(&ds);
    let baseline: Vec<Vec<FinalMatch>> = queries
        .iter()
        .map(|q| service.query(q).expect("direct path answers").matches)
        .collect();

    // Deadline schedule per request: slack, tight (microseconds — around
    // the per-query cost, forcing degradations and unmeetable sheds on
    // loaded runs), and instantly-expired.
    let deadline_for = |tick: u64| -> Duration {
        match tick % 4 {
            0 => Duration::from_secs(30),    // slack
            1 => Duration::from_micros(400), // tight
            2 => Duration::from_micros(50),  // tighter than the margin
            _ => Duration::ZERO,             // already expired
        }
    };

    let (outcomes, stats) = BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        let collected: Vec<(usize, SchedResponse)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..16u64)
                .map(|client| {
                    let handle = &handle;
                    let queries = &queries;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0xdead_1225 + client);
                        let mut out = Vec::new();
                        for tick in 0..queries.len() as u64 {
                            let idx = rng.random_range(0..queries.len());
                            let priority = match tick % 3 {
                                0 => Priority::High,
                                1 => Priority::Normal,
                                _ => Priority::Low,
                            };
                            let response =
                                handle.query_within(&queries[idx], deadline_for(tick), priority);
                            out.push((idx, response));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        (collected, handle.stats())
    })
    .expect("valid scheduler config");

    let mut exact = 0u64;
    let mut degraded = 0u64;
    let mut shed = 0u64;
    for (idx, response) in &outcomes {
        match &response.outcome {
            SchedOutcome::Exact(r) => {
                exact += 1;
                assert_eq!(
                    r.matches, baseline[*idx],
                    "an Exact response under pressure must still be bit-identical"
                );
            }
            SchedOutcome::Degraded { result, bound } => {
                degraded += 1;
                // The degradation is flagged and its budget was a real
                // reduction, not a pass-through of a slack deadline.
                assert!(*bound <= Duration::from_micros(400), "bound {bound:?}");
                assert!(result.matches.len() <= config().k);
            }
            SchedOutcome::Shed(_) => shed += 1,
            SchedOutcome::Failed(e) => panic!("no request may fail under pressure: {e}"),
        }
    }
    let total = 16 * queries.len() as u64;
    assert_eq!(exact + degraded + shed, total, "every request resolves");
    assert_eq!(stats.exact, exact);
    assert_eq!(stats.degraded, degraded);
    assert_eq!(stats.shed(), shed);
    assert!(
        shed >= total / 4,
        "the zero-deadline quarter must shed: {shed} sheds of {total}"
    );
    assert!(exact > 0, "slack quarter must produce exact answers");
}

/// The live wiring: scheduled traffic over a `LiveQueryService` while a
/// writer commits underneath. Epoch adoption must drain in-flight batches
/// cleanly (no failures, no hangs), batches never mix epochs (proptested
/// separately at the Batcher level), and once the writer quiesces the
/// scheduled answers equal the direct live path.
#[test]
fn live_scheduler_drains_epoch_adoption_cleanly() {
    let (ds, space) = setup();
    let versioned = Arc::new(VersionedGraph::new(ds.graph.clone()));
    let service = LiveQueryService::new(Arc::clone(&versioned), &space, &ds.library, config());
    let queries = workload(&ds);

    let stats = BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        std::thread::scope(|s| {
            // Writer: commits land mid-traffic; each one publishes a new
            // epoch the scheduler must adopt between batches.
            s.spawn(|| {
                for i in 0..40 {
                    versioned.insert_triple(
                        (format!("Car_live_{i}").as_str(), "Automobile"),
                        "assembly",
                        ("Country_1", "Country"),
                    );
                    versioned.commit();
                    std::thread::yield_now();
                }
            });
            for client in 0..6u64 {
                let handle = &handle;
                let queries = &queries;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x11fe + client);
                    for _ in 0..queries.len() {
                        let idx = rng.random_range(0..queries.len());
                        let response = handle.query_within(
                            &queries[idx],
                            Duration::from_secs(30),
                            Priority::Normal,
                        );
                        assert!(
                            matches!(response.outcome, SchedOutcome::Exact(_)),
                            "slack live traffic must stay exact, got {:?}",
                            response.outcome
                        );
                    }
                });
            }
        });
        handle.stats()
    })
    .expect("valid scheduler config");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shed(), 0);

    // Quiesced: scheduled == direct live path, on the final epoch.
    service.refresh();
    assert_eq!(service.published_epoch(), 40);
    let baseline: Vec<Vec<FinalMatch>> = queries
        .iter()
        .map(|q| service.query(q).expect("live direct path").matches)
        .collect();
    BatchScheduler::serve(&service, SchedConfig::default(), |handle| {
        for (idx, q) in queries.iter().enumerate() {
            let response = handle.query_within(q, Duration::from_secs(30), Priority::Normal);
            match response.outcome {
                SchedOutcome::Exact(r) => assert_eq!(
                    r.matches, baseline[idx],
                    "quiesced scheduled live answer diverged on query {idx}"
                ),
                other => panic!("expected exact, got {other:?}"),
            }
        }
    })
    .expect("valid scheduler config");
}
