//! SIMD-friendly scan kernels for the vocabulary-scale hot loops.
//!
//! The query engine's inner loops — the Eq. 5 similarity-row reads, the
//! Lemma 1 `m(u)` adjacency bound and the seed-time τ classification — are
//! gather/reduce scans over rows the size of the predicate vocabulary.
//! This module holds the chunked, branchless safe-Rust primitives those
//! scans compile down to, plus the two derived row forms
//! [`crate::SimilarityIndex`] issues alongside every exact `f64` row:
//!
//! * **Round-up `f32` upper-bound rows** ([`quantize_row_up`]): each element
//!   is the *smallest* `f32` ≥ its exact `f64` element, so a bound computed
//!   from the quantized row dominates the exact bound by construction.
//!   A τ-prefilter on the quantized row is therefore admissible — anything
//!   it prunes, the exact row would have pruned too — while scanning half
//!   the bytes per element.
//! * **Precomputed `ln` rows** ([`ln_row`]): `ln` of the same `f64` is
//!   deterministic within one binary, so replacing a per-edge `w.ln()` with
//!   a table lookup is bit-identical, and drops a libm call from the
//!   per-edge expansion path.
//!
//! ## Determinism contract
//!
//! Every kernel here is a drop-in for a scalar loop under the repo's
//! bit-identical-answers contract. `max` is insensitive to scan order, so
//! the chunked accumulators of [`gather_max`] and the early exit at a
//! precomputed row maximum return the exact same `f64` bits as the naive
//! loop ([`gather_max_scalar`], kept as the differential reference). The
//! kernels assume the weight domain established by `clamp_weight`: finite,
//! non-NaN values (plan rows live in `[1e-6, 1]`).
//!
//! Chunk shape: fixed-width lane accumulators with a data-independent
//! `if v > a { v } else { a }` select per lane — the idiom LLVM lowers to
//! `max`+`select` vector instructions — and one early-exit branch per chunk
//! rather than per element.

/// Accumulator lanes per chunk. Eight f64 lanes span one AVX-512 register
/// or two AVX2 registers; the remainder loop handles short adjacencies.
const LANES: usize = 8;

/// The smallest `f32` that is ≥ `x` (round-up quantization).
///
/// `x` must be finite (plan rows always are). Values above `f32::MAX`
/// saturate to `f32::INFINITY`, which still dominates — the bound stays an
/// upper bound, it just prunes nothing.
#[inline]
pub fn round_up_f32(x: f64) -> f32 {
    debug_assert!(!x.is_nan(), "round_up_f32 is defined on non-NaN input");
    // `as` rounds to nearest: the result is off by at most one ulp below x.
    let q = x as f32;
    if f64::from(q) >= x {
        q
    } else {
        q.next_up()
    }
}

/// Round-up `f32` quantization of a whole row: `out[i]` is the smallest
/// `f32` ≥ `row[i]`, so any max taken over `out` dominates the same max
/// over `row`.
pub fn quantize_row_up(row: &[f64]) -> Vec<f32> {
    row.iter().map(|&w| round_up_f32(w)).collect()
}

/// Element-wise `ln` of a row. Bit-identical to calling `.ln()` at use
/// sites: libm's `ln` is a pure function of the input bits.
pub fn ln_row(row: &[f64]) -> Vec<f64> {
    row.iter().map(|&w| w.ln()).collect()
}

/// Maximum element of `row`, starting from `init` (returned for empty
/// rows). Branchless chunked reduction; exact — max is order-insensitive.
pub fn row_max(row: &[f64], init: f64) -> f64 {
    let mut acc = [init; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for (a, &v) in acc.iter_mut().zip(chunk) {
            *a = if v > *a { v } else { *a };
        }
    }
    let mut m = fold_max(&acc, init);
    for &v in chunks.remainder() {
        m = if v > m { v } else { m };
    }
    m
}

/// [`row_max`] over an `f32` row.
pub fn row_max_f32(row: &[f32], init: f32) -> f32 {
    let mut acc = [init; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for (a, &v) in acc.iter_mut().zip(chunk) {
            *a = if v > *a { v } else { *a };
        }
    }
    let mut m = fold_max_f32(&acc, init);
    for &v in chunks.remainder() {
        m = if v > m { v } else { m };
    }
    m
}

/// Gather-max of a predicate row over an adjacency slice: the maximum of
/// `row[idx[..]]`, starting from `init`.
///
/// `stop` is the row's precomputed maximum element (or `f64::INFINITY` to
/// disable the early exit): once the running max reaches it, no later
/// element can raise the result — `max` is insensitive to scan order — so
/// the scan returns early. Checked once per chunk, not per element, to
/// keep the inner loop branchless. Requires `init ≤ stop` and every
/// gathered element ≤ `stop` for the exit to be exact.
pub fn gather_max(row: &[f64], idx: &[u32], init: f64, stop: f64) -> f64 {
    let mut acc = [init; LANES];
    let mut chunks = idx.chunks_exact(LANES);
    let mut m = init;
    for chunk in chunks.by_ref() {
        for (a, &i) in acc.iter_mut().zip(chunk) {
            let v = row[i as usize];
            *a = if v > *a { v } else { *a };
        }
        m = fold_max(&acc, init);
        if m >= stop {
            return m;
        }
    }
    for &i in chunks.remainder() {
        let v = row[i as usize];
        m = if v > m { v } else { m };
        if m >= stop {
            return m;
        }
    }
    m
}

/// [`gather_max`] over a round-up `f32` row. Gathering from the quantized
/// row yields an upper bound of the exact gather at half the row bytes.
pub fn gather_max_f32(row: &[f32], idx: &[u32], init: f32, stop: f32) -> f32 {
    let mut acc = [init; LANES];
    let mut chunks = idx.chunks_exact(LANES);
    let mut m = init;
    for chunk in chunks.by_ref() {
        for (a, &i) in acc.iter_mut().zip(chunk) {
            let v = row[i as usize];
            *a = if v > *a { v } else { *a };
        }
        m = fold_max_f32(&acc, init);
        if m >= stop {
            return m;
        }
    }
    for &i in chunks.remainder() {
        let v = row[i as usize];
        m = if v > m { v } else { m };
        if m >= stop {
            return m;
        }
    }
    m
}

/// The scalar reference loop [`gather_max`] replaces — kept for the
/// kernel-vs-scalar differential tests and the before/after bench.
pub fn gather_max_scalar(row: &[f64], idx: &[u32], init: f64) -> f64 {
    let mut m = init;
    for &i in idx {
        let v = row[i as usize];
        if v > m {
            m = v;
        }
    }
    m
}

/// Batched τ-threshold classification over a structure-of-arrays candidate
/// buffer: appends to `out` the index of every element of `values` that is
/// ≥ `threshold`, in order. Branchless compaction — the write happens
/// unconditionally and the cursor advances by the comparison bit — so the
/// loop carries no unpredictable branch across a mostly-pruned buffer.
pub fn classify_ge(values: &[f64], threshold: f64, out: &mut Vec<u32>) {
    out.clear();
    out.resize(values.len(), 0);
    let mut k = 0usize;
    for (i, &v) in values.iter().enumerate() {
        out[k] = i as u32;
        k += usize::from(v >= threshold);
    }
    out.truncate(k);
}

#[inline]
fn fold_max(acc: &[f64; LANES], init: f64) -> f64 {
    acc.iter().fold(init, |m, &a| if a > m { a } else { m })
}

#[inline]
fn fold_max_f32(acc: &[f32; LANES], init: f32) -> f32 {
    acc.iter().fold(init, |m, &a| if a > m { a } else { m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_up_handles_exact_and_inexact_values() {
        // Exactly representable: unchanged.
        assert_eq!(round_up_f32(0.5), 0.5f32);
        assert_eq!(round_up_f32(1.0), 1.0f32);
        assert_eq!(round_up_f32(0.0), 0.0f32);
        // Not representable: rounds up, never down.
        let x = 0.1f64; // 0.1f32 > 0.1f64
        assert!(f64::from(round_up_f32(x)) >= x);
        let y = 1e-6f64; // MIN_WEIGHT is below f32 resolution near 1e-6
        assert!(f64::from(round_up_f32(y)) >= y);
        // Beyond f32 range: saturates upward.
        assert_eq!(round_up_f32(1e300), f32::INFINITY);
        assert_eq!(round_up_f32(-1e300), f32::MIN);
    }

    #[test]
    fn classify_ge_compacts_in_order() {
        let mut out = Vec::new();
        classify_ge(&[0.9, 0.1, 0.8, 0.8, 0.2], 0.8, &mut out);
        assert_eq!(out, vec![0, 2, 3]);
        classify_ge(&[], 0.5, &mut out);
        assert!(out.is_empty());
        classify_ge(&[0.1, 0.2], 0.5, &mut out);
        assert!(out.is_empty());
        classify_ge(&[0.6, 0.7], 0.5, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn gather_max_empty_returns_init() {
        let row = [0.3f64, 0.9];
        assert_eq!(gather_max(&row, &[], 1e-6, 0.9), 1e-6);
        assert_eq!(gather_max_f32(&[0.3f32], &[], 0.5, 1.0), 0.5);
    }

    #[test]
    fn early_exit_triggers_on_constant_rows() {
        // A constant row's max equals its first element: the exit must fire
        // and still return the true max.
        let row = vec![1e-6f64; 1000];
        let idx: Vec<u32> = (0..1000).collect();
        assert_eq!(gather_max(&row, &idx, 1e-6, 1e-6), 1e-6);
    }

    proptest! {
        /// Round-up invariant: the quantized element always dominates the
        /// exact element, and is the *smallest* f32 that does.
        #[test]
        fn prop_round_up_dominates_and_is_tight(x in -1e30f64..1e30) {
            let q = round_up_f32(x);
            prop_assert!(f64::from(q) >= x, "{q} must dominate {x}");
            let below = q.next_down();
            prop_assert!(
                f64::from(below) < x,
                "{q} must be the smallest dominating f32 for {x}"
            );
        }

        /// Chunked gather-max (with and without the early exit) is bitwise
        /// identical to the scalar reference loop on weight-domain rows.
        #[test]
        fn prop_gather_max_matches_scalar(
            row in proptest::collection::vec(1e-6f64..=1.0, 1..200),
            picks in proptest::collection::vec(0usize..200, 0..300),
        ) {
            let idx: Vec<u32> = picks
                .iter()
                .map(|&p| (p % row.len()) as u32)
                .collect();
            let reference = gather_max_scalar(&row, &idx, 1e-6);
            let stop = row_max(&row, 1e-6);
            prop_assert_eq!(
                gather_max(&row, &idx, 1e-6, stop).to_bits(),
                reference.to_bits()
            );
            prop_assert_eq!(
                gather_max(&row, &idx, 1e-6, f64::INFINITY).to_bits(),
                reference.to_bits()
            );
        }

        /// The f32 gather over the quantized row dominates the exact f64
        /// gather — the prefilter's admissibility invariant.
        #[test]
        fn prop_f32_gather_dominates_exact(
            row in proptest::collection::vec(1e-6f64..=1.0, 1..200),
            picks in proptest::collection::vec(0usize..200, 0..300),
        ) {
            let idx: Vec<u32> = picks
                .iter()
                .map(|&p| (p % row.len()) as u32)
                .collect();
            let upper = quantize_row_up(&row);
            let stop32 = row_max_f32(&upper, round_up_f32(1e-6));
            let m32 = gather_max_f32(&upper, &idx, round_up_f32(1e-6), stop32);
            let m64 = gather_max(&row, &idx, 1e-6, f64::INFINITY);
            prop_assert!(f64::from(m32) >= m64);
        }

        /// Precomputed ln rows are bitwise what `.ln()` at the use site
        /// would produce.
        #[test]
        fn prop_ln_row_is_bitwise_ln(
            row in proptest::collection::vec(1e-6f64..=1.0, 0..64),
        ) {
            let ln = ln_row(&row);
            for (l, w) in ln.iter().zip(&row) {
                prop_assert_eq!(l.to_bits(), w.ln().to_bits());
            }
        }

        /// classify_ge equals the straightforward filter.
        #[test]
        fn prop_classify_matches_filter(
            values in proptest::collection::vec(0.0f64..=1.0, 0..100),
            threshold in 0.0f64..=1.0,
        ) {
            let mut out = Vec::new();
            classify_ge(&values, threshold, &mut out);
            let expected: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v >= threshold)
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(out, expected);
        }

        /// row_max equals the fold, bitwise.
        #[test]
        fn prop_row_max_matches_fold(
            row in proptest::collection::vec(1e-6f64..=1.0, 0..100),
        ) {
            let reference = row.iter().fold(1e-6f64, |m, &v| if v > m { v } else { m });
            prop_assert_eq!(row_max(&row, 1e-6).to_bits(), reference.to_bits());
        }
    }
}
