//! Label normalisation.
//!
//! Library lookups are case-insensitive and whitespace/underscore-agnostic
//! so that `"audi tt"`, `"Audi_TT"` and `"AUDI TT"` all address the same
//! record — mirroring how entity labels vary between query formulations and
//! knowledge-graph dumps.

/// Normalises a label: lowercase, underscores → spaces, collapsed internal
/// whitespace, trimmed.
pub fn normalize_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_space = true; // suppress leading space
    for ch in label.chars() {
        let ch = if ch == '_' { ' ' } else { ch };
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lower in ch.to_lowercase() {
                out.push(lower);
            }
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_forms_collapse() {
        assert_eq!(normalize_label("Audi_TT"), "audi tt");
        assert_eq!(normalize_label("audi tt"), "audi tt");
        assert_eq!(normalize_label("  AUDI   TT  "), "audi tt");
    }

    #[test]
    fn empty_and_space_only() {
        assert_eq!(normalize_label(""), "");
        assert_eq!(normalize_label("   "), "");
        assert_eq!(normalize_label("___"), "");
    }

    #[test]
    fn unicode_lowercase() {
        assert_eq!(normalize_label("MÜNCHEN"), "münchen");
    }

    proptest! {
        #[test]
        fn prop_idempotent(s in ".{0,30}") {
            let once = normalize_label(&s);
            prop_assert_eq!(normalize_label(&once), once);
        }

        #[test]
        fn prop_no_leading_trailing_space(s in ".{0,30}") {
            let n = normalize_label(&s);
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }
    }
}
