//! Time-bounded approximate optimisation — TBQ (paper §VI, Algorithms 2–3).
//!
//! Instead of waiting for the globally optimal top-k, TBQ returns the best
//! answers discoverable within a user-specified time bound `T`:
//!
//! * each sub-query search runs in **anytime** mode (Algorithm 2): complete
//!   matches are collected into `M̂ᵢ` the moment they are explored, so early
//!   non-optimal matches are available immediately;
//! * a synchronised **time estimator** (Algorithm 3) watches
//!   `T̂ = max{T_A*} + Σ|M̂ᵢ|·t` — elapsed search time plus the projected TA
//!   assembly cost at `t` seconds per collected match — and triggers
//!   assembly when `T̂ ≥ T·r%` (the alert ratio, 80% in the paper);
//! * the per-match assembly cost `t` is measured empirically by a
//!   *simulated* TA run ([`calibrate_ta_cost`]), as in the paper.
//!
//! The searches run as jobs on the engine's persistent
//! [`WorkerPool`] — no threads are spawned per query. Algorithm 3's
//! estimator is decentralised: instead of a dedicated controller thread,
//! every search job re-evaluates `T̂` against the shared discovered-match
//! counter every few steps and raises the shared stop flag when the alert
//! threshold is crossed; the shared wall clock and shared counter make this
//! exactly the paper's synchronised check, minus one idle thread.
//!
//! Lemmas 6–7 / Theorem 4 carry over: the collected `M̂ᵢ` grow monotonically
//! with `T`, and with a generous bound the result converges to the exact
//! SGQ answer (verified by integration tests).

use crate::answer::SubMatch;
use crate::astar::{AStarSearch, SearchStats};
use crate::runtime::WorkerPool;
use crate::semgraph::SubQueryPlan;
use crate::ta;
use kgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Parameters of the time-bounded query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBoundConfig {
    /// The user-specified system-response-time bound `T`.
    pub bound: Duration,
    /// Alert ratio `r%`: assembly starts once the estimated total time
    /// reaches `bound · alert_ratio` (paper uses 80%).
    pub alert_ratio: f64,
    /// Empirical per-match TA processing time `t`; measure it once with
    /// [`calibrate_ta_cost`] and reuse across queries.
    pub per_match_ta_cost: Duration,
}

impl Default for TimeBoundConfig {
    fn default() -> Self {
        Self {
            bound: Duration::from_millis(100),
            alert_ratio: 0.8,
            per_match_ta_cost: Duration::from_nanos(300),
        }
    }
}

impl TimeBoundConfig {
    /// A config with the given bound and calibrated TA cost.
    pub fn with_bound(bound: Duration) -> Self {
        Self {
            bound,
            ..Self::default()
        }
    }
}

/// Measures the empirical per-match TA assembly cost `t` by running a
/// simulated assembly over fabricated match lists (paper §VI: "we get this
/// empirical time via the simulated TA based assembly").
pub fn calibrate_ta_cost() -> Duration {
    const STREAMS: usize = 3;
    const PER_STREAM: u32 = 512;
    let streams: Vec<Vec<SubMatch>> = (0..STREAMS)
        .map(|s| {
            (0..PER_STREAM)
                .map(|i| SubMatch {
                    source: NodeId::new(10_000 + i),
                    pivot: NodeId::new((i * 7 + s as u32) % 128),
                    pss: 1.0 - f64::from(i) / f64::from(PER_STREAM),
                    nodes: vec![NodeId::new(10_000 + i), NodeId::new(i % 128)],
                    edges: vec![kgraph::EdgeId::new(i)],
                    bindings: Vec::new(),
                })
                .collect()
        })
        .collect();
    let exhausted = vec![true; STREAMS];
    let start = Instant::now();
    let mut accesses = 0usize;
    for _ in 0..8 {
        // k large enough that the TA drains the lists → worst-case cost.
        let out = ta::assemble(&streams, &exhausted, 256);
        accesses += out.accesses;
    }
    let elapsed = start.elapsed();
    if accesses == 0 {
        return Duration::from_nanos(300);
    }
    Duration::from_nanos((elapsed.as_nanos() / accesses as u128).max(1) as u64)
}

/// Algorithm 3's estimate `T̂ = elapsed + Σ|M̂ᵢ|·t`, computed in `u128`
/// nanoseconds. `Σ|M̂ᵢ|` is a `usize` that can exceed `u32::MAX` on big
/// graphs with generous match caps; a former `as u32` truncation here could
/// wrap the estimate back *below* the alert threshold and miss the bound.
///
/// Public because the batch scheduler ([`crate::sched`]) reuses it for
/// admission control: with `elapsed` set to an observed (or fixed-overhead)
/// search time and `collected` to the profile's TA access count, `T̂`
/// predicts whether a deadline is meetable before any work is spent.
#[inline]
pub fn estimate_ns(elapsed: Duration, per_match_ns: u128, collected: usize) -> u128 {
    elapsed.as_nanos() + per_match_ns.saturating_mul(collected as u128)
}

/// Output of one anytime search phase.
pub(crate) struct AnytimeOutcome {
    /// Per sub-query: discovered matches sorted by pss descending (`M̂ᵢ`).
    pub streams: Vec<Vec<SubMatch>>,
    /// Per sub-query: search drained naturally (⇒ `M̂ᵢ ⊇ Mᵢ`, Lemma 7).
    pub exhausted: Vec<bool>,
    /// Per sub-query: search wall-clock microseconds.
    pub per_subquery_us: Vec<u64>,
    /// Aggregated search counters.
    pub stats: SearchStats,
    /// True when the controller stopped the searches because of the bound.
    pub bound_hit: bool,
}

/// Runs Algorithm 2 on every plan concurrently (as pooled jobs) under
/// Algorithm 3's synchronised time estimation.
pub(crate) fn run_anytime<G: GraphView>(
    graph: &G,
    plans: &[SubQueryPlan],
    max_matches_per_subquery: usize,
    tb: &TimeBoundConfig,
    pool: &WorkerPool,
) -> AnytimeOutcome {
    let n = plans.len();
    let stop = AtomicBool::new(false);
    let bound_hit_flag = AtomicBool::new(false);
    // Σ|M̂ᵢ| across all sub-queries, updated incrementally by every job.
    let total_collected = AtomicUsize::new(0);
    let start = Instant::now();
    let deadline_ns = tb.bound.mul_f64(tb.alert_ratio.clamp(0.0, 1.0)).as_nanos();
    let per_match_ns = tb.per_match_ta_cost.as_nanos();
    let cap = if max_matches_per_subquery == 0 {
        usize::MAX
    } else {
        max_matches_per_subquery
    };

    type JobOutput = (Vec<SubMatch>, bool, Duration, SearchStats);
    let mut slots: Vec<Option<JobOutput>> = (0..n).map(|_| None).collect();

    pool.scope(|scope| {
        for (plan, slot) in plans.iter().zip(slots.iter_mut()) {
            let stop = &stop;
            let bound_hit_flag = &bound_hit_flag;
            let total_collected = &total_collected;
            scope.spawn(move || {
                let t0 = Instant::now();
                let mut search = AStarSearch::new_anytime_on_pool(graph, plan, pool);
                let mut drained = false;
                let mut tick = 0u32;
                let mut reported = 0usize;
                loop {
                    if search.discovered_len() >= cap {
                        break;
                    }
                    // Algorithm 3, decentralised: every 16 next-hop
                    // selections (and once before the first), publish the
                    // local |M̂ᵢ| delta and test T̂ = elapsed + Σ|M̂ᵢ|·t
                    // against the alert threshold.
                    if tick.is_multiple_of(16) {
                        let found = search.discovered_len();
                        if found > reported {
                            total_collected.fetch_add(found - reported, Ordering::Relaxed); // lint-ok(atomic-ordering): monotone estimator input; Algorithm 3 tolerates stale sums by design
                            reported = found;
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let collected = total_collected.load(Ordering::Relaxed); // lint-ok(atomic-ordering): a stale sum only delays the alert by one 16-step tick; never affects answer content
                        let t_hat = estimate_ns(start.elapsed(), per_match_ns, collected);
                        if t_hat >= deadline_ns {
                            stop.store(true, Ordering::Release);
                            bound_hit_flag.store(true, Ordering::Relaxed); // lint-ok(atomic-ordering): read only after scope() joins, which synchronizes
                            break;
                        }
                    }
                    if !search.step() {
                        drained = true;
                        break;
                    }
                    tick = tick.wrapping_add(1);
                }
                let found = search.discovered_len();
                if found > reported {
                    // lint-ok(atomic-ordering): final publish before the scope join; join synchronizes
                    total_collected.fetch_add(found - reported, Ordering::Relaxed);
                }
                let mut matches = search.take_discovered();
                // M̂ᵢ is kept as a max-heap in the paper; sorted order is
                // what the TA sorted access needs.
                matches.sort_by(|a, b| b.pss.total_cmp(&a.pss));
                *slot = Some((matches, drained, t0.elapsed(), search.stats));
            });
        }
    });

    let mut streams = Vec::with_capacity(n);
    let mut exhausted = Vec::with_capacity(n);
    let mut per_subquery_us = Vec::with_capacity(n);
    let mut stats = SearchStats::default();
    for slot in slots {
        let (matches, drained, elapsed, s) =
            slot.expect("pooled search job did not report its outcome"); // lint-ok(panic-freedom): scope() joins before returning, so every spawned job has filled its slot
        streams.push(matches);
        exhausted.push(drained);
        per_subquery_us.push(elapsed.as_micros() as u64);
        stats.popped += s.popped;
        stats.pushed += s.pushed;
        stats.tau_pruned += s.tau_pruned;
        stats.edges_examined += s.edges_examined;
    }

    AnytimeOutcome {
        streams,
        exhausted,
        per_subquery_us,
        stats,
        bound_hit: bound_hit_flag.load(Ordering::Relaxed), // lint-ok(atomic-ordering): scope() joined above; all worker stores happen-before this load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = TimeBoundConfig::default();
        assert_eq!(c.alert_ratio, 0.8);
        assert!(c.bound > Duration::ZERO);
    }

    #[test]
    fn with_bound_sets_bound_only() {
        let c = TimeBoundConfig::with_bound(Duration::from_millis(20));
        assert_eq!(c.bound, Duration::from_millis(20));
        assert_eq!(c.alert_ratio, 0.8);
    }

    #[test]
    fn calibration_returns_positive_cost() {
        let t = calibrate_ta_cost();
        assert!(t >= Duration::from_nanos(1));
        assert!(
            t < Duration::from_millis(1),
            "per-access cost should be sub-millisecond, got {t:?}"
        );
    }

    #[test]
    fn estimate_does_not_wrap_on_huge_match_counts() {
        let per_match_ns = Duration::from_nanos(300).as_nanos();
        // Exactly 2³² collected matches: the old `as u32` truncation mapped
        // this to 0 projected assembly cost, keeping T̂ below any threshold.
        let collected = 1usize << 32;
        let t_hat = estimate_ns(Duration::from_millis(1), per_match_ns, collected);
        let deadline = Duration::from_millis(80).as_nanos();
        assert!(
            t_hat >= deadline,
            "2³² matches × 300ns must dwarf an 80ms deadline, got {t_hat}ns"
        );
        // Monotonic in the collected count.
        assert!(t_hat > estimate_ns(Duration::from_millis(1), per_match_ns, collected - 1));
    }
}
