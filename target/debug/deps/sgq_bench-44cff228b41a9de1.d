/root/repo/target/debug/deps/sgq_bench-44cff228b41a9de1.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libsgq_bench-44cff228b41a9de1.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libsgq_bench-44cff228b41a9de1.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
