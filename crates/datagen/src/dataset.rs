//! Schema-driven synthetic knowledge-graph generation.
//!
//! Each generated dataset reproduces the *situation* of the paper's Fig. 1:
//! one query intent ("cars produced in X") is materialised through several
//! paraphrase schemas with controlled cardinalities — a direct `assembly`
//! edge, a 2-hop city route, 2-hop company routes — plus "reasonable but
//! not validated" schemas (the paper's §VII-B table shows SGQ finding
//! those) and semantically-wrong distractor routes of the right shape
//! (designer/nationality), which punish structure-only baselines. Ground
//! truth is recorded during generation, never recomputed.

use crate::workload::country_abbreviation;
use kgraph::{GraphBuilder, KnowledgeGraph, NodeId};
use lexicon::TransformationLibrary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

/// Answer cardinalities per country for the "produced in" intent
/// (Fig. 1's right-hand side, scaled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaCounts {
    /// `Auto —assembly→ Country` (correct; Fig. 1's 234-answer schema).
    pub direct_assembly: usize,
    /// `Auto —product→ Country` (correct).
    pub direct_product: usize,
    /// `Auto —assembly→ City —country→ Country` (correct; the 133 schema).
    pub via_city: usize,
    /// `Auto —assembly→ City —federalState→ Region —country→ Country`
    /// (correct, 3-hop; the Fig. 8 `federalState` route — only reachable
    /// with n̂ ≥ 3, which drives the Table X sensitivity).
    pub via_city_state: usize,
    /// `Auto —manufacturer→ Company —location→ Country` (correct; 53).
    pub via_company_location: usize,
    /// `Auto —manufacturer→ Company —locationCountry→ Country` (correct; 44).
    pub via_company_loc_country: usize,
    /// `Auto —assembly→ Company —location→ Country` (reasonable, **not** in
    /// the validation set — found by SGQ in the paper's §VII-B table).
    pub assembly_company: usize,
    /// `Auto —designCompany→ Company —location→ Country` (reasonable, not
    /// validated).
    pub design_company: usize,
    /// `Auto ←designer— Person —nationality→ Country` (semantically wrong:
    /// designed by a national, not produced there).
    pub designer_distractor: usize,
    /// `Auto —popularIn→ Country` (semantically wrong but structurally
    /// *identical* to the correct 1-hop schema — sold there, not produced
    /// there; punishes predicate-blind methods precisely as the paper's
    /// Table I shows for NeMa/p-hom/GraB).
    pub popular_distractor: usize,
}

impl SchemaCounts {
    fn scaled(&self, s: f64) -> Self {
        let f = |x: usize| ((x as f64 * s).round() as usize).max(1);
        Self {
            direct_assembly: f(self.direct_assembly),
            direct_product: f(self.direct_product),
            via_city: f(self.via_city),
            via_city_state: f(self.via_city_state),
            via_company_location: f(self.via_company_location),
            via_company_loc_country: f(self.via_company_loc_country),
            assembly_company: f(self.assembly_company),
            design_company: f(self.design_company),
            designer_distractor: f(self.designer_distractor),
            popular_distractor: f(self.popular_distractor),
        }
    }

    /// Size of the validation set per country.
    pub fn validated(&self) -> usize {
        self.direct_assembly
            + self.direct_product
            + self.via_city
            + self.via_city_state
            + self.via_company_location
            + self.via_company_loc_country
    }
}

/// Specification of one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset display name (Table IV style).
    pub name: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Number of countries (each gets its own answer sets).
    pub countries: usize,
    /// Per-country schema cardinalities.
    pub counts: SchemaCounts,
    /// Per country-pair: autos assembled in cᵢ with an engine from cᵢ₊₁
    /// (`Auto —engine→ Device —manufacturer→ Country`, the Fig. 3(a) chain).
    pub engines_per_pair: usize,
    /// Soccer domain: clubs per country (`Club —ground→ City —country→
    /// Country`) for the Fig. 16 complex query.
    pub clubs_per_country: usize,
    /// Players per club (`Person —team→ Club`, `Person —nationality→
    /// Country`).
    pub players_per_club: usize,
    /// Entities attached through the `misc` cluster (languages etc.).
    pub misc_entities: usize,
    /// Uniform random `related` edges (graph noise / hub degree).
    pub noise_edges: usize,
    /// Extra low-population entity types (Freebase's type-count profile).
    pub extra_type_variety: usize,
}

impl DatasetSpec {
    /// DBpedia-like profile (few types, production schemas dominate).
    pub fn dbpedia_like(scale: f64) -> Self {
        Self {
            name: "DBpedia-like".into(),
            seed: 0xDB,
            countries: 8,
            counts: SchemaCounts {
                direct_assembly: 23,
                direct_product: 8,
                via_city: 13,
                via_city_state: 6,
                via_company_location: 5,
                via_company_loc_country: 4,
                assembly_company: 4,
                design_company: 3,
                designer_distractor: 10,
                popular_distractor: 25,
            }
            .scaled(scale),
            engines_per_pair: ((8.0 * scale).round() as usize).max(1),
            clubs_per_country: 3,
            players_per_club: ((6.0 * scale).round() as usize).max(2),
            misc_entities: ((120.0 * scale).round() as usize).max(10),
            noise_edges: ((400.0 * scale).round() as usize).max(20),
            extra_type_variety: 12,
        }
    }

    /// Freebase-like profile (many entity types, denser).
    pub fn freebase_like(scale: f64) -> Self {
        Self {
            name: "Freebase-like".into(),
            seed: 0xFB,
            countries: 10,
            extra_type_variety: 60,
            noise_edges: ((800.0 * scale).round() as usize).max(40),
            ..Self::dbpedia_like(scale)
        }
    }

    /// YAGO2-like profile (more entities, leaner predicate use).
    pub fn yago2_like(scale: f64) -> Self {
        Self {
            name: "YAGO2-like".into(),
            seed: 0x7A,
            countries: 12,
            misc_entities: ((300.0 * scale).round() as usize).max(20),
            extra_type_variety: 30,
            ..Self::dbpedia_like(scale)
        }
    }

    /// A miniature profile for unit tests.
    pub fn tiny() -> Self {
        Self {
            name: "Tiny".into(),
            seed: 42,
            countries: 3,
            counts: SchemaCounts {
                direct_assembly: 4,
                direct_product: 2,
                via_city: 3,
                via_city_state: 2,
                via_company_location: 2,
                via_company_loc_country: 2,
                assembly_company: 1,
                design_company: 1,
                designer_distractor: 3,
                popular_distractor: 3,
            },
            engines_per_pair: 2,
            clubs_per_country: 2,
            players_per_club: 2,
            misc_entities: 5,
            noise_edges: 10,
            extra_type_variety: 2,
        }
    }

    /// Generates the dataset.
    pub fn build(&self) -> BenchDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::new();

        let country_names: Vec<String> = REAL_COUNTRIES
            .iter()
            .map(|s| s.to_string())
            .chain((REAL_COUNTRIES.len()..self.countries).map(|i| format!("Country_{i}")))
            .take(self.countries)
            .collect();
        let countries: Vec<NodeId> = country_names
            .iter()
            .map(|n| b.add_node(n, "Country"))
            .collect();

        let mut produced_truth: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        let mut assembled_truth: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        let mut reasonable: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        let mut distractors: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        let mut engine_truth: FxHashMap<(String, String), Vec<NodeId>> = FxHashMap::default();
        let mut players_truth: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();

        // ------------------------------------------------------- production
        for (ci, cname) in country_names.iter().enumerate() {
            let c = countries[ci];
            let mut car_no = 0usize;
            let new_car = |b: &mut GraphBuilder, tag: &str, n: &mut usize| {
                let id = b.add_node(&format!("{cname}_{tag}_Car_{n}"), "Automobile");
                *n += 1;
                id
            };
            let truth = produced_truth.entry(cname.clone()).or_default();
            let assembled = assembled_truth.entry(cname.clone()).or_default();
            for _ in 0..self.counts.direct_assembly {
                let car = new_car(&mut b, "asm", &mut car_no);
                b.add_edge(car, c, "assembly");
                truth.push(car);
                assembled.push(car);
            }
            for _ in 0..self.counts.direct_product {
                let car = new_car(&mut b, "prod", &mut car_no);
                b.add_edge(car, c, "product");
                truth.push(car);
            }
            for i in 0..self.counts.via_city {
                let car = new_car(&mut b, "city", &mut car_no);
                let city = b.add_node(&format!("{cname}_City_{}", i % 5), "City");
                b.add_edge(car, city, "assembly");
                b.add_edge(city, c, "country");
                truth.push(car);
                assembled.push(car);
            }
            for i in 0..self.counts.via_city_state {
                let car = new_car(&mut b, "cityState", &mut car_no);
                let city = b.add_node(&format!("{cname}_RegCity_{}", i % 3), "City");
                let region = b.add_node(&format!("{cname}_Region_{}", i % 2), "Region");
                b.add_edge(car, city, "assembly");
                b.add_edge(city, region, "federalState");
                b.add_edge(region, c, "country");
                truth.push(car);
                assembled.push(car);
            }
            for i in 0..self.counts.via_company_location {
                let car = new_car(&mut b, "coL", &mut car_no);
                let co = b.add_node(&format!("{cname}_Co_{}", i % 4), "Company");
                b.add_edge(car, co, "manufacturer");
                b.add_edge(co, c, "location");
                truth.push(car);
            }
            for i in 0..self.counts.via_company_loc_country {
                let car = new_car(&mut b, "coLC", &mut car_no);
                let co = b.add_node(&format!("{cname}_CoLC_{}", i % 4), "Company");
                b.add_edge(car, co, "manufacturer");
                b.add_edge(co, c, "locationCountry");
                truth.push(car);
            }
            let reas = reasonable.entry(cname.clone()).or_default();
            for i in 0..self.counts.assembly_company {
                let car = new_car(&mut b, "asmCo", &mut car_no);
                let co = b.add_node(&format!("{cname}_AsmCo_{}", i % 3), "Company");
                b.add_edge(car, co, "assembly");
                b.add_edge(co, c, "location");
                reas.push(car);
            }
            for i in 0..self.counts.design_company {
                let car = new_car(&mut b, "dsgCo", &mut car_no);
                let co = b.add_node(&format!("{cname}_DsgCo_{}", i % 3), "Company");
                b.add_edge(car, co, "designCompany");
                b.add_edge(co, c, "location");
                reas.push(car);
            }
            let dis = distractors.entry(cname.clone()).or_default();
            for i in 0..self.counts.popular_distractor {
                let car = new_car(&mut b, "pop", &mut car_no);
                b.add_edge(car, c, if i % 2 == 0 { "popularIn" } else { "soldIn" });
                dis.push(car);
            }
            for i in 0..self.counts.designer_distractor {
                let car = new_car(&mut b, "dsgnr", &mut car_no);
                let person = b.add_node(&format!("{cname}_Designer_{i}"), "Person");
                b.add_edge(person, car, "designer");
                b.add_edge(person, c, "nationality");
                dis.push(car);
            }
        }

        // ----------------------------------------------- engines (Fig. 3a)
        for ci in 0..self.countries {
            let cj = (ci + 1) % self.countries;
            let (ca, ce) = (&country_names[ci], &country_names[cj]);
            let entry = engine_truth.entry((ca.clone(), ce.clone())).or_default();
            for i in 0..self.engines_per_pair {
                let car = b.add_node(&format!("{ca}_{ce}_EngCar_{i}"), "Automobile");
                b.add_edge(car, countries[ci], "assembly");
                let dev = b.add_node(&format!("{ce}_Engine_{i}"), "Device");
                b.add_edge(car, dev, "engine");
                b.add_edge(dev, countries[cj], "manufacturer");
                produced_truth.get_mut(ca).expect("seen").push(car);
                assembled_truth.get_mut(ca).expect("seen").push(car);
                entry.push(car);
            }
        }

        // ------------------------------------------------- soccer (Fig. 16)
        for (ci, cname) in country_names.iter().enumerate() {
            let c = countries[ci];
            let foreign = (ci + 1) % self.countries;
            let mut clubs = Vec::new();
            for i in 0..self.clubs_per_country {
                let club = b.add_node(&format!("{cname}_Club_{i}"), "SoccerClub");
                let city = b.add_node(&format!("{cname}_StadiumCity_{i}"), "City");
                b.add_edge(club, city, "ground");
                b.add_edge(city, c, "country");
                clubs.push(club);
            }
            for (i, &club) in clubs.iter().enumerate() {
                for j in 0..self.players_per_club {
                    let p = b.add_node(&format!("{cname}_Player_{i}_{j}"), "Person");
                    b.add_edge(p, club, "team");
                    b.add_edge(p, c, "nationality");
                    // Half the players also played for a club of the next
                    // country — these satisfy the Fig. 16 complex query
                    // (nationality cᵢ, team grounded in cᵢ, team grounded
                    // in cᵢ₊₁).
                    if j % 2 == 0 {
                        let fclub = b.add_node(
                            &format!(
                                "{}_Club_{}",
                                country_names[foreign],
                                i % self.clubs_per_country
                            ),
                            "SoccerClub",
                        );
                        b.add_edge(p, fclub, "team");
                        players_truth.entry(cname.clone()).or_default().push(p);
                    }
                }
            }
        }

        // --------------------------------------------------- misc + noise
        for (ci, &c) in countries.iter().enumerate() {
            let lang = b.add_node(&format!("Language_{ci}"), "Language");
            b.add_edge(c, lang, "language");
            let cur = b.add_node(&format!("Currency_{ci}"), "Currency");
            b.add_edge(c, cur, "currency");
        }
        for i in 0..self.misc_entities {
            let m = b.add_node(&format!("Misc_{i}"), "Thing");
            let c = countries[rng.random_range(0..countries.len())];
            b.add_edge(m, c, "knownFor");
        }
        for t in 0..self.extra_type_variety {
            for i in 0..3 {
                let e = b.add_node(&format!("Rare_{t}_{i}"), &format!("RareType_{t}"));
                let c = countries[rng.random_range(0..countries.len())];
                b.add_edge(e, c, "related");
            }
        }
        let total_nodes = b.node_count() as u32;
        for _ in 0..self.noise_edges {
            let x = NodeId::new(rng.random_range(0..total_nodes));
            let y = NodeId::new(rng.random_range(0..total_nodes));
            if x != y {
                b.add_edge(x, y, "related");
            }
        }

        let graph = b.finish();
        let library = build_library(&country_names);
        BenchDataset {
            name: self.name.clone(),
            spec: self.clone(),
            graph,
            library,
            countries: country_names,
            produced_truth,
            assembled_truth,
            reasonable,
            distractors,
            engine_truth,
            players_truth,
        }
    }
}

/// Real country names for readable examples; more are generated on demand.
const REAL_COUNTRIES: &[&str] = &[
    "Germany", "China", "Korea", "France", "Japan", "Spain", "England", "Italy", "USA", "India",
    "Brazil", "Canada",
];

/// The Table III transformation library covering the generated vocabulary.
fn build_library(countries: &[String]) -> TransformationLibrary {
    let mut lib = TransformationLibrary::new();
    lib.add_synonym_row("Automobile", &["Car", "Motorcar", "Auto", "Vehicle"]);
    lib.add_synonym_row("Person", &["Human", "Individual"]);
    lib.add_synonym_row("SoccerClub", &["FootballClub", "Football Team"]);
    lib.add_synonym_row("Company", &["Firm", "Corporation"]);
    lib.add_synonym_row("Device", &["Machine", "Apparatus"]);
    lib.add_synonym_row("Country", &["Nation", "State"]);
    lib.add_synonym_row("product", &["produced", "produce"]);
    for c in countries {
        lib.add_abbreviation_row(c, &[&country_abbreviation(c)]);
    }
    lib
}

/// A generated dataset with its exact ground truth.
#[derive(Debug, Clone)]
pub struct BenchDataset {
    /// Display name.
    pub name: String,
    /// The spec that produced it.
    pub spec: DatasetSpec,
    /// The knowledge graph.
    pub graph: KnowledgeGraph,
    /// Transformation library covering the vocabulary.
    pub library: TransformationLibrary,
    /// Country names in id order.
    pub countries: Vec<String>,
    /// Validation set of "cars produced in c" (the correct schemas).
    pub produced_truth: FxHashMap<String, Vec<NodeId>>,
    /// Cars *assembled* in c (assembly schemas only).
    pub assembled_truth: FxHashMap<String, Vec<NodeId>>,
    /// Reasonable-but-not-validated answers per country (§VII-B table).
    pub reasonable: FxHashMap<String, Vec<NodeId>>,
    /// Semantically wrong same-shape answers per country.
    pub distractors: FxHashMap<String, Vec<NodeId>>,
    /// Cars assembled in `pair.0` with an engine manufactured in `pair.1`.
    pub engine_truth: FxHashMap<(String, String), Vec<NodeId>>,
    /// Fig. 16 players per home country.
    pub players_truth: FxHashMap<String, Vec<NodeId>>,
}

impl BenchDataset {
    /// The oracle predicate space for this dataset (see [`crate::schema`]).
    pub fn oracle_space(&self) -> embedding::PredicateSpace {
        crate::schema::oracle_space(&self.graph, self.spec.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphStats;

    #[test]
    fn tiny_dataset_builds_with_expected_truth_sizes() {
        let ds = DatasetSpec::tiny().build();
        assert_eq!(ds.countries.len(), 3);
        let truth = &ds.produced_truth["Germany"];
        // validated() + engine cars assembled in Germany.
        assert_eq!(
            truth.len(),
            ds.spec.counts.validated() + ds.spec.engines_per_pair
        );
        assert_eq!(ds.reasonable["Germany"].len(), 2);
        assert_eq!(ds.distractors["Germany"].len(), 6);
        assert!(!ds.engine_truth[&("Germany".into(), "China".into())].is_empty());
    }

    #[test]
    fn truth_nodes_have_the_right_type() {
        let ds = DatasetSpec::tiny().build();
        for cars in ds.produced_truth.values() {
            for &car in cars {
                assert_eq!(ds.graph.node_type_name(car), "Automobile");
            }
        }
        for players in ds.players_truth.values() {
            for &p in players {
                assert_eq!(ds.graph.node_type_name(p), "Person");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::tiny().build();
        let b = DatasetSpec::tiny().build();
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.produced_truth["China"], b.produced_truth["China"]);
    }

    #[test]
    fn profiles_differ_as_designed() {
        let db = DatasetSpec::dbpedia_like(0.2).build();
        let fb = DatasetSpec::freebase_like(0.2).build();
        let yg = DatasetSpec::yago2_like(0.2).build();
        let (sdb, sfb, syg) = (
            GraphStats::of(&db.graph),
            GraphStats::of(&fb.graph),
            GraphStats::of(&yg.graph),
        );
        assert!(
            sfb.entity_types > sdb.entity_types,
            "Freebase has more types"
        );
        assert!(syg.entities > sdb.entities, "YAGO has more entities");
        assert!(sdb.relations > 0 && sfb.relations > 0 && syg.relations > 0);
    }

    #[test]
    fn library_covers_fig1_mismatches() {
        let ds = DatasetSpec::tiny().build();
        assert!(ds.library.matches("Car", "Automobile"));
        assert!(ds.library.matches("GER", "Germany"));
    }

    #[test]
    fn scaling_multiplies_cardinalities() {
        let small = DatasetSpec::dbpedia_like(0.5);
        let big = DatasetSpec::dbpedia_like(2.0);
        assert!(big.counts.direct_assembly > small.counts.direct_assembly);
        let g_small = small.build().graph;
        let g_big = big.build().graph;
        assert!(g_big.edge_count() > g_small.edge_count() * 2);
    }

    #[test]
    fn oracle_space_covers_all_predicates() {
        let ds = DatasetSpec::tiny().build();
        let space = ds.oracle_space();
        assert_eq!(space.len(), ds.graph.predicate_count());
        let p = |l: &str| ds.graph.predicate_id(l).unwrap();
        assert!(space.sim(p("product"), p("assembly")) > 0.85);
        // designer sits at the paper's moderate affinity (~0.85), clearly
        // below the within-cluster band.
        let designer = space.sim(p("product"), p("designer"));
        assert!(designer < space.sim(p("product"), p("assembly")));
        assert!((0.7..0.95).contains(&designer));
    }
}
