/root/repo/target/debug/deps/semkg-e42133eff864eb61.d: src/lib.rs

/root/repo/target/debug/deps/libsemkg-e42133eff864eb61.rlib: src/lib.rs

/root/repo/target/debug/deps/libsemkg-e42133eff864eb61.rmeta: src/lib.rs

src/lib.rs:
