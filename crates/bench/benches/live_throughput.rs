//! Mixed read/write throughput over the versioned store.
//!
//! Three configurations, same workload and client count:
//!
//! * **static** — the PR-1 [`QueryService`] over the frozen CSR (the
//!   no-regression baseline for the live read path);
//! * **live idle** — [`LiveQueryService`] over a [`VersionedGraph`] nobody
//!   writes to (measures the pure cost of epoch pinning: one atomic epoch
//!   check + two `Arc` bumps per query);
//! * **live churn** — the same service while a writer thread streams edge
//!   updates with periodic commits and compactions.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::churn::{apply_churn, churn_stream};
use datagen::dataset::DatasetSpec;
use datagen::workload::produced_workload;
use kgraph::VersionedGraph;
use sgq::{LiveQueryService, QueryService, SgqConfig};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 8;
/// Queries each client issues per measured round.
const QUERIES_PER_CLIENT: usize = 20;

fn config() -> SgqConfig {
    SgqConfig {
        k: 20,
        ..SgqConfig::default()
    }
}

fn bench_live_throughput(c: &mut Criterion) {
    let ds = DatasetSpec::dbpedia_like(1.5).build();
    let space = ds.oracle_space();
    let workload = produced_workload(&ds);

    let static_service = QueryService::build(&ds.graph, &space, &ds.library, config());
    // Two independent live stores: the idle one is never written, so idle
    // measurements stay clean no matter when the churn rounds run.
    let live_idle = LiveQueryService::new(
        Arc::new(VersionedGraph::new(ds.graph.clone())),
        &space,
        &ds.library,
        config(),
    );
    let live_churn = LiveQueryService::new(
        Arc::new(VersionedGraph::new(ds.graph.clone())),
        &space,
        &ds.library,
        config(),
    );
    // A long churn stream the writer walks cyclically (op effects degrade to
    // duplicates/no-op deletes on later laps, which is fine for a perf run).
    let ops = churn_stream(&ds, 20_000, 11);
    let op_cursor = AtomicUsize::new(0);

    let read_round = |use_live: bool| {
        std::thread::scope(|s| {
            for client in 0..CLIENTS {
                let static_service = &static_service;
                let live_idle = &live_idle;
                let workload = &workload;
                s.spawn(move || {
                    for i in 0..QUERIES_PER_CLIENT {
                        let q = &workload[(client + i) % workload.len()].graph;
                        let r = if use_live {
                            live_idle.query(q)
                        } else {
                            static_service.query(q)
                        };
                        black_box(r.expect("query succeeds").matches.len());
                    }
                });
            }
        });
    };
    // One measured round with an active writer: clients read while the
    // writer streams ~10k updates/s with a commit every 256 ops (~40
    // epochs/s — far above any real KG's update feed) and periodic
    // compactions.
    let churn_round = || {
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let live = live_churn.versioned();
            let stop = &stop;
            let op_cursor = &op_cursor;
            let ops = &ops;
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    // The cursor is global and monotonic, so commit /
                    // compaction cadence carries across measured rounds and
                    // the overlay cannot grow without bound.
                    let i = op_cursor.fetch_add(1, Ordering::Relaxed);
                    apply_churn(live, &ops[i % ops.len()]);
                    if (i + 1).is_multiple_of(256) {
                        live.commit();
                    }
                    if (i + 1).is_multiple_of(8192) {
                        live.compact();
                    }
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                live.commit();
            });
            // Inner scope: joins every reader before the writer is told to
            // stop, so the whole measured round runs under write pressure.
            std::thread::scope(|readers| {
                for client in 0..CLIENTS {
                    let live_churn = &live_churn;
                    let workload = &workload;
                    readers.spawn(move || {
                        for i in 0..QUERIES_PER_CLIENT {
                            let q = &workload[(client + i) % workload.len()].graph;
                            black_box(live_churn.query(q).expect("query").matches.len());
                        }
                    });
                }
            });
            stop.store(true, Ordering::Release);
        });
    };

    let mut group = c.benchmark_group("live_throughput");
    group.sample_size(10);
    group.bench_function(format!("static_clients_{CLIENTS}"), |b| {
        b.iter(|| read_round(false))
    });
    group.bench_function(format!("live_idle_clients_{CLIENTS}"), |b| {
        b.iter(|| read_round(true))
    });
    group.bench_function(format!("live_churn_clients_{CLIENTS}"), |b| {
        b.iter(churn_round)
    });
    group.finish();

    // Explicit queries/sec summary (the ROADMAP number).
    println!("\nqueries/sec ({} clients, k=20):", CLIENTS);
    for (label, live, churn) in [
        ("static    ", false, false),
        ("live idle ", true, false),
        ("live churn", true, true),
    ] {
        let rounds = 5;
        let start = Instant::now();
        for _ in 0..rounds {
            if churn {
                churn_round();
            } else {
                read_round(live);
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let queries = (rounds * CLIENTS * QUERIES_PER_CLIENT) as f64;
        println!("  {label}  {:>10.0} q/s", queries / elapsed);
    }
    let stats = live_churn.stats();
    let store = live_churn.versioned().stats();
    let sim = live_churn.similarity_stats();
    println!(
        "live service: {} queries at epoch {} ({} refreshes, {} delta edges, {} tombstones)",
        stats.queries,
        stats.epoch,
        stats.engine_refreshes,
        stats.delta_edges,
        stats.delta_tombstones
    );
    println!(
        "store: {} commits, {} compactions, {} inserts, {} deletes; sim cache {} hits / {} misses / {} invalidations",
        store.commits, store.compactions, store.inserts, store.deletes,
        sim.row_hits + sim.max_row_hits,
        sim.row_misses + sim.max_row_misses,
        sim.invalidations
    );
}

criterion_group!(benches, bench_live_throughput);
criterion_main!(benches);
