//! Error type shared by the graph substrate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KgError>;

/// Errors produced while constructing, loading, or querying a knowledge graph.
#[derive(Debug)]
pub enum KgError {
    /// A node id was out of range for this graph.
    NodeOutOfRange {
        /// Offending id value.
        id: u32,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge id was out of range for this graph.
    EdgeOutOfRange {
        /// Offending id value.
        id: u32,
        /// Number of edges in the graph.
        len: usize,
    },
    /// Two distinct nodes were registered under the same unique name.
    DuplicateName(String),
    /// A triple line could not be parsed.
    ParseTriple {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Serialization failure.
    Serde(String),
    /// A snapshot file could not be loaded or saved: the error carries the
    /// path and on-disk format so a raw serde/decoder message never
    /// surfaces without file context.
    Snapshot {
        /// Path of the offending file.
        path: std::path::PathBuf,
        /// On-disk format (`"json"`, `"binary"`, `"tsv"`).
        format: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// A write-ahead-log file is unreadable or internally inconsistent
    /// beyond the tolerated torn tail record.
    Wal {
        /// Path of the offending WAL file.
        path: std::path::PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// An invalid shard layout: bad shard count, or on-disk shard files
    /// that disagree with their manifest.
    Shard(String),
}

impl KgError {
    /// Wraps any error as a [`KgError::Snapshot`] with file context.
    pub fn snapshot(
        path: impl Into<std::path::PathBuf>,
        format: &'static str,
        detail: impl std::fmt::Display,
    ) -> Self {
        KgError::Snapshot {
            path: path.into(),
            format,
            detail: detail.to_string(),
        }
    }

    /// Wraps any error as a [`KgError::Wal`] with file context.
    pub fn wal(path: impl Into<std::path::PathBuf>, detail: impl std::fmt::Display) -> Self {
        KgError::Wal {
            path: path.into(),
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::NodeOutOfRange { id, len } => {
                write!(f, "node id {id} out of range (graph has {len} nodes)")
            }
            KgError::EdgeOutOfRange { id, len } => {
                write!(f, "edge id {id} out of range (graph has {len} edges)")
            }
            KgError::DuplicateName(name) => {
                write!(f, "duplicate unique node name {name:?}")
            }
            KgError::ParseTriple { line, reason } => {
                write!(f, "malformed triple at line {line}: {reason}")
            }
            KgError::Io(e) => write!(f, "i/o error: {e}"),
            KgError::Serde(e) => write!(f, "serialization error: {e}"),
            KgError::Snapshot {
                path,
                format,
                detail,
            } => write!(f, "snapshot {} ({format} format): {detail}", path.display()),
            KgError::Wal { path, detail } => {
                write!(f, "write-ahead log {}: {detail}", path.display())
            }
            KgError::Shard(detail) => write!(f, "shard layout: {detail}"),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KgError {
    fn from(e: std::io::Error) -> Self {
        KgError::Io(e)
    }
}

impl From<serde_json::Error> for KgError {
    fn from(e: serde_json::Error) -> Self {
        KgError::Serde(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KgError::NodeOutOfRange { id: 9, len: 3 };
        assert!(e.to_string().contains("node id 9"));
        let e = KgError::DuplicateName("Audi_TT".into());
        assert!(e.to_string().contains("Audi_TT"));
        let e = KgError::ParseTriple {
            line: 2,
            reason: "expected 3 fields".into(),
        };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = KgError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn storage_errors_carry_path_and_format() {
        let e = KgError::snapshot("/tmp/g.json", "json", "unexpected end of input");
        let msg = e.to_string();
        assert!(msg.contains("/tmp/g.json"), "{msg}");
        assert!(msg.contains("json format"), "{msg}");
        assert!(msg.contains("unexpected end of input"), "{msg}");
        let e = KgError::wal("/tmp/wal.log", "bad magic");
        let msg = e.to_string();
        assert!(msg.contains("/tmp/wal.log"), "{msg}");
        assert!(msg.contains("bad magic"), "{msg}");
    }
}
