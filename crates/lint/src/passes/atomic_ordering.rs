//! `atomic-ordering`: the audit surface for the lock-free counters.
//!
//! Two sides of the same contract:
//!
//! * `Ordering::Relaxed` in a file on the configured audit surface must be
//!   waived with a written reason. Relaxed is usually right for monotone
//!   telemetry counters, but "usually" is exactly what the PR 7
//!   scheduler-counter race got wrong — so each site says *why* relaxed
//!   cannot reorder into another thread's decision.
//! * `Ordering::SeqCst` is denied everywhere unless waived: the workspace's
//!   synchronization is acquire/release-shaped, and a SeqCst that "fixes"
//!   something is hiding a protocol bug behind the strongest fence.

use super::{path_matches, token_positions};
use crate::config::Config;
use crate::lexer::SourceFile;
use crate::Finding;

pub fn check(config: &Config, file: &SourceFile) -> Vec<Finding> {
    let audited = path_matches(&file.path, &config.atomic_audit);
    let mut out = Vec::new();
    for (lineno, line) in file.code_lines() {
        if audited && !token_positions(&line.code, "Ordering::Relaxed").is_empty() {
            out.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "atomic-ordering",
                message: "`Ordering::Relaxed` on the audit surface — waive with the reason this cannot reorder into another thread's decision".into(),
            });
        }
        if !token_positions(&line.code, "Ordering::SeqCst").is_empty() {
            out.push(Finding {
                path: file.path.clone(),
                line: lineno,
                rule: "atomic-ordering",
                message: "`Ordering::SeqCst` is overly strong — use acquire/release and state the protocol, or waive with the reason a total order is required".into(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            atomic_audit: vec!["audited.rs".into()],
            ..Config::default()
        }
    }

    #[test]
    fn relaxed_in_audited_file_is_flagged() {
        let f = SourceFile::scan("audited.rs", "x.fetch_add(1, Ordering::Relaxed);\n");
        assert_eq!(check(&cfg(), &f).len(), 1);
    }

    #[test]
    fn relaxed_outside_audit_surface_is_clean() {
        let f = SourceFile::scan("other.rs", "x.fetch_add(1, Ordering::Relaxed);\n");
        assert!(check(&cfg(), &f).is_empty());
    }

    #[test]
    fn seqcst_is_flagged_everywhere() {
        let f = SourceFile::scan("other.rs", "x.store(1, Ordering::SeqCst);\n");
        assert_eq!(check(&cfg(), &f).len(), 1);
    }

    #[test]
    fn acquire_release_are_clean() {
        let f = SourceFile::scan(
            "audited.rs",
            "x.store(1, Ordering::Release);\nlet v = x.load(Ordering::Acquire);\n",
        );
        assert!(check(&cfg(), &f).is_empty());
    }
}
