//! Minimal offline shim of `serde_json`: renders the serde shim's
//! [`serde::Value`] tree to JSON text and parses JSON text back into it.
//! Covers the workspace's usage: [`to_string`], [`from_str`], [`to_writer`],
//! [`from_reader`], and an [`Error`] convertible into domain errors.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("i/o error: {e}"))
    }
}

/// Result alias matching upstream's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip float formatting; force a
                // fractional part so the token re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Upstream serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect_keyword("\\u")?;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated surrogate pair"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| self.err("invalid surrogate"))?,
                                    16,
                                )
                                .map_err(|_| self.err("invalid surrogate"))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so slices at
                    // char boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }
}

/// Parses a JSON string into the intermediate value tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    Ok(T::from_value(&parse_value(text)?)?)
}

/// Deserializes a value from a JSON byte slice.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let pairs = vec![(1u32, "x".to_string())];
        let back: Vec<(u32, String)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789012345] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f);
        }
        for f in [0.1f32, 0.333_333_34f32] {
            let back: f32 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn whitespace_and_unicode() {
        let v: Vec<String> = from_str(" [ \"gr\\u00fcn\" , \"ü\" ] ").unwrap();
        assert_eq!(v, vec!["grün".to_string(), "ü".to_string()]);
    }

    #[test]
    fn errors_have_positions() {
        let err = from_str::<u32>("[1").unwrap_err();
        assert!(err.to_string().contains("byte"));
        assert!(from_str::<u32>("42 junk").is_err());
    }

    #[test]
    fn reader_writer_roundtrip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![7u32, 8]).unwrap();
        let back: Vec<u32> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![7, 8]);
    }
}
