//! Differential harness for per-query phase tracing.
//!
//! The tracing contract (see `sgq::trace` and the README's "Observability"
//! section): enabling `trace_sample_every` — or calling the explicit
//! `*_traced` APIs — only *observes* an execution. Every answer, every path
//! edge id and every deterministic search counter must equal the
//! tracing-off path's, byte for byte, monolithic and at 2/4/8 shards,
//! because the trace plumbing adds one branch per phase and never touches
//! the search state. These tests drive that claim over the seeded
//! workloads.

use datagen::dataset::{BenchDataset, DatasetSpec};
use datagen::workload::{chain_query, produced_workload, q117_variants, soccer_query};
use embedding::PredicateSpace;
use sgq::{QueryGraph, QueryResult, QueryService, SgqConfig};

fn config(trace_sample_every: u64) -> SgqConfig {
    SgqConfig {
        k: 20,
        tau: 0.3,
        workers: 4,
        trace_sample_every,
        ..SgqConfig::default()
    }
}

fn setup() -> (BenchDataset, PredicateSpace) {
    let ds = DatasetSpec::dbpedia_like(1.0).build();
    let space = ds.oracle_space();
    (ds, space)
}

/// The seeded differential workload: the bulk produced stream, the four
/// Fig. 1 Q117 variants, a chain and a soccer query.
fn workload(ds: &BenchDataset) -> Vec<QueryGraph> {
    let mut queries: Vec<QueryGraph> = produced_workload(ds).into_iter().map(|q| q.graph).collect();
    queries.extend(
        q117_variants(ds, &ds.countries[0])
            .into_iter()
            .map(|q| q.graph),
    );
    queries.push(chain_query(ds, 0).graph);
    queries.push(soccer_query(ds, 0).0.graph);
    queries
}

/// The deterministic face of [`sgq::QueryStats`] — everything except the
/// wall-clock fields, which legitimately differ between runs.
fn scrub(r: &QueryResult) -> (usize, usize, usize, usize, usize, bool, usize) {
    let s = &r.stats;
    (
        s.popped,
        s.pushed,
        s.tau_pruned,
        s.edges_examined,
        s.ta_accesses,
        s.ta_certified,
        s.subqueries,
    )
}

/// Tracing on (sampled 1-in-1 and 1-in-3) vs tracing off: answers
/// (including path edge ids via `FinalMatch` equality), deterministic
/// stats and prepared replay are bit-identical, monolithic and at 2/4/8
/// shards — and the sampled services actually record traces while the
/// baseline records none.
#[test]
fn traced_answers_are_bit_identical_to_untraced() {
    let (ds, space) = setup();
    let queries = workload(&ds);

    let untraced = QueryService::build(&ds.graph, &space, &ds.library, config(0));
    let baseline: Vec<QueryResult> = queries
        .iter()
        .map(|q| untraced.query(q).expect("untraced path answers"))
        .collect();
    assert!(
        untraced.traces().is_empty(),
        "sample_every = 0 must never record a trace"
    );

    for sample_every in [1u64, 3] {
        // Monolithic traced path.
        let service = QueryService::build(&ds.graph, &space, &ds.library, config(sample_every));
        for (idx, q) in queries.iter().enumerate() {
            let r = service.query(q).expect("traced path answers");
            assert_eq!(
                r.matches, baseline[idx].matches,
                "sample={sample_every}: traced answer diverged on query {idx}"
            );
            assert_eq!(
                scrub(&r),
                scrub(&baseline[idx]),
                "sample={sample_every}: traced stats diverged on query {idx}"
            );
            let prepared = service.prepare(q).expect("prepare");
            assert_eq!(
                service.execute(&prepared).expect("replay").matches,
                baseline[idx].matches,
                "sample={sample_every}: traced prepared replay diverged on query {idx}"
            );
        }
        // query() + execute() above both tick the sampler: 2 ticks per
        // query, every `sample_every`-th one recorded.
        let ticks = 2 * queries.len() as u64;
        let expected = ticks.div_ceil(sample_every);
        assert_eq!(
            service.traces().recorded(),
            expected,
            "deterministic 1-in-{sample_every} sampling over {ticks} executions"
        );

        // Sharded traced path.
        for shards in [2usize, 4, 8] {
            let service = QueryService::build_sharded(
                ds.graph.clone(),
                shards,
                &space,
                &ds.library,
                config(sample_every),
            )
            .expect("valid shard count");
            for (idx, q) in queries.iter().enumerate() {
                let r = service.query(q).expect("sharded traced answers");
                assert_eq!(
                    r.matches, baseline[idx].matches,
                    "sample={sample_every}, {shards} shards: answer diverged on query {idx}"
                );
                assert_eq!(
                    scrub(&r),
                    scrub(&baseline[idx]),
                    "sample={sample_every}, {shards} shards: stats diverged on query {idx}"
                );
            }
            assert!(
                service.traces().recorded() > 0,
                "sample={sample_every}, {shards} shards: sampling must record traces"
            );
        }
    }
}

/// The explicit traced APIs return the same answer as the plain ones and a
/// trace whose phases are filled consistently: engine phases sum to at
/// most the recorded total, every query reports its sub-query count, and
/// expanding queries report rounds and popped states.
#[test]
fn explicit_traces_report_coherent_phases() {
    let (ds, space) = setup();
    let queries = workload(&ds);
    let service = QueryService::build(&ds.graph, &space, &ds.library, config(0));

    let mut expanded_any = false;
    for (idx, q) in queries.iter().enumerate() {
        let plain = service.query(q).expect("plain answers");
        let (traced, trace) = service.query_traced(q).expect("traced answers");
        assert_eq!(
            traced.matches, plain.matches,
            "query_traced diverged on query {idx}"
        );
        assert_eq!(scrub(&traced), scrub(&plain));

        assert!(
            trace.total_ns > 0,
            "total is wall time of the run: {trace:?}"
        );
        assert!(trace.plan_ns > 0, "ad-hoc queries pay the plan phase");
        assert!(
            trace.seed_ns + trace.expand_ns + trace.merge_ns <= trace.total_ns,
            "execution phases nest inside the execution total (plan is timed \
             separately, fan-out belongs to the scheduler): {trace:?}"
        );
        assert_eq!(trace.subqueries as usize, plain.stats.subqueries);
        assert_eq!(trace.matches as usize, plain.matches.len());
        assert_eq!(trace.certified, plain.stats.ta_certified);
        if plain.stats.popped > 0 {
            assert!(trace.rounds > 0, "expansion implies rounds: {trace:?}");
            assert_eq!(trace.popped as usize, plain.stats.popped);
            expanded_any = true;
        }

        // Prepared replay through the traced API: plan phase is prepaid,
        // so the trace reports it as zero.
        let prepared = service.prepare(q).expect("prepare");
        let (replayed, replay_trace) = service.execute_traced(&prepared).expect("traced replay");
        assert_eq!(replayed.matches, plain.matches);
        assert_eq!(replay_trace.plan_ns, 0, "prepared replay pays no plan cost");
    }
    assert!(expanded_any, "workload must exercise expansion");
    assert!(
        service.traces().is_empty(),
        "explicit traced calls return the trace to the caller, not the sink"
    );
}
