/root/repo/target/release/deps/embedding_bench-aa4e9f32b8339ceb.d: crates/bench/benches/embedding_bench.rs

/root/repo/target/release/deps/embedding_bench-aa4e9f32b8339ceb: crates/bench/benches/embedding_bench.rs

crates/bench/benches/embedding_bench.rs:
