/root/repo/target/debug/deps/rand-d488dc81fb59ccfa.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d488dc81fb59ccfa.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d488dc81fb59ccfa.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
