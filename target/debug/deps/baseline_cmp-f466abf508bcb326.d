/root/repo/target/debug/deps/baseline_cmp-f466abf508bcb326.d: crates/bench/benches/baseline_cmp.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cmp-f466abf508bcb326.rmeta: crates/bench/benches/baseline_cmp.rs Cargo.toml

crates/bench/benches/baseline_cmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
