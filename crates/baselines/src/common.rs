//! Shared harness contract and path-enumeration skeleton for the baselines.
//!
//! Every baseline decomposes the query graph with the same minimum-cost
//! pivot logic as SGQ (so comparisons isolate the *matching* behaviour),
//! enumerates sub-query matches by bounded DFS, and joins them at the pivot
//! match. What differs per method is captured by two knobs:
//!
//! * [`NodeMode`] — whether query nodes match through the transformation
//!   library (Table II "Node similarity") or only by identical labels;
//! * [`SegmentScorer`] — whether a query edge may map to an n-hop path
//!   (Table II "E-to-P mapping"), whether predicates constrain the mapping
//!   (Table II "GQ w/ predicates"), and how a mapping is scored.

use kgraph::{KnowledgeGraph, NodeId, PredicateId};
use lexicon::{NodeMatcher, TransformationLibrary};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use sgq::decompose::decompose;
use sgq::query::QueryGraph;
use sgq::semgraph::NodeConstraint;
use sgq::PivotStrategy;

/// One ranked answer of a baseline: a pivot entity and a method-specific
/// score (only the ordering is comparable across methods).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodAnswer {
    /// The discovered pivot entity.
    pub node: NodeId,
    /// Method-specific score, higher is better.
    pub score: f64,
}

/// The Table II capability row of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Features {
    /// Supports synonym/abbreviation node matching.
    pub node_similarity: bool,
    /// Supports mapping a query edge to an n-hop path.
    pub edge_to_path: bool,
    /// Respects predicates on query edges.
    pub predicates: bool,
    /// One-line description of the method's main idea (Table II).
    pub idea: &'static str,
}

/// The harness contract every comparator implements.
pub trait GraphQueryMethod: Send + Sync {
    /// Display name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Table II capability row.
    fn features(&self) -> Features;

    /// Runs the method, returning up to `k` ranked answers.
    fn query(
        &self,
        graph: &KnowledgeGraph,
        library: &TransformationLibrary,
        query: &QueryGraph,
        k: usize,
    ) -> Vec<MethodAnswer>;
}

/// Node-matching behaviour (Table II column 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMode {
    /// Identical labels only (after normalisation) — no library lookups.
    Exact,
    /// φ through the transformation library (identical/synonym/abbreviation).
    Similar,
}

/// How a method maps one query edge onto a knowledge-graph path.
pub trait SegmentScorer {
    /// Maximum knowledge-graph hops one query edge may map to (1 = no
    /// edge-to-path support).
    fn max_hops(&self) -> usize;

    /// Scores a candidate mapping of query edge `query_pred` onto the path
    /// with predicate sequence `preds`; `None` rejects the mapping. Scores
    /// must lie in (0, 1] so sub-match scores average meaningfully.
    fn score(&self, graph: &KnowledgeGraph, query_pred: &str, preds: &[PredicateId])
        -> Option<f64>;
}

/// Hard cap on DFS expansions per sub-query — keeps pathological baselines
/// from dominating benchmark wall-clock.
const MAX_EXPANSIONS: usize = 2_000_000;

/// Runs the shared decompose → enumerate → join pipeline for one method.
pub fn run_baseline(
    graph: &KnowledgeGraph,
    library: &TransformationLibrary,
    query: &QueryGraph,
    k: usize,
    mode: NodeMode,
    scorer: &dyn SegmentScorer,
) -> Vec<MethodAnswer> {
    static EMPTY: std::sync::OnceLock<TransformationLibrary> = std::sync::OnceLock::new();
    let effective_library = match mode {
        NodeMode::Similar => library,
        NodeMode::Exact => EMPTY.get_or_init(TransformationLibrary::new),
    };
    let matcher = NodeMatcher::new(graph, effective_library);

    let avg_degree = kgraph::GraphStats::of(graph).avg_degree;
    let Ok(decomp) = decompose(query, PivotStrategy::MinCost, avg_degree, scorer.max_hops()) else {
        return Vec::new();
    };

    // Per sub-query: pivot match → best score.
    let mut per_sub: Vec<FxHashMap<NodeId, f64>> = Vec::with_capacity(decomp.subqueries.len());
    for sub in &decomp.subqueries {
        let sources = match query.node(sub.source()).name() {
            Some(name) => matcher.match_name(name),
            None => matcher.match_nodes_by_type(query.node(sub.source()).type_label()),
        };
        let constraints: Vec<NodeConstraint> = sub.nodes[1..]
            .iter()
            .map(|&qn| {
                let node = query.node(qn);
                match node.name() {
                    Some(name) => {
                        NodeConstraint::Nodes(matcher.match_name(name).into_iter().collect())
                    }
                    None => NodeConstraint::TypeMask(matcher.type_mask(node.type_label())),
                }
            })
            .collect();
        let predicates: Vec<&str> = sub
            .edges
            .iter()
            .map(|&e| query.edge(e).predicate.as_str())
            .collect();

        let mut best: FxHashMap<NodeId, f64> = FxHashMap::default();
        let mut budget = MAX_EXPANSIONS;
        for source in sources {
            let mut path = vec![source];
            let mut seg_scores = Vec::new();
            let mut seg_preds = Vec::new();
            dfs(
                graph,
                scorer,
                &constraints,
                &predicates,
                &mut path,
                &mut seg_preds,
                0,
                &mut seg_scores,
                &mut best,
                &mut budget,
            );
        }
        per_sub.push(best);
    }

    // Join at the pivot: every sub-query must contribute (Eq. 2 analogue).
    let mut joined: FxHashMap<NodeId, (f64, usize)> = FxHashMap::default();
    for sub in &per_sub {
        for (&pivot, &score) in sub {
            let e = joined.entry(pivot).or_insert((0.0, 0));
            e.0 += score;
            e.1 += 1;
        }
    }
    let mut answers: Vec<MethodAnswer> = joined
        .into_iter()
        .filter(|(_, (_, cnt))| *cnt == per_sub.len())
        .map(|(node, (score, _))| MethodAnswer { node, score })
        .collect();
    answers.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.node.cmp(&b.node)));
    answers.truncate(k);
    answers
}

/// Depth-first enumeration of one sub-query's matches. `seg` is the index of
/// the query edge currently being mapped; `seg_preds` the predicates of the
/// partial knowledge-graph path for that edge.
#[allow(clippy::too_many_arguments)]
fn dfs(
    graph: &KnowledgeGraph,
    scorer: &dyn SegmentScorer,
    constraints: &[NodeConstraint],
    predicates: &[&str],
    path: &mut Vec<NodeId>,
    seg_preds: &mut Vec<PredicateId>,
    seg: usize,
    seg_scores: &mut Vec<f64>,
    best: &mut FxHashMap<NodeId, f64>,
    budget: &mut usize,
) {
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    let here = *path.last().expect("non-empty path");
    for nb in graph.neighbors(here) {
        if path.contains(&nb.node) {
            continue; // simple paths only
        }
        if seg_preds.len() >= scorer.max_hops() {
            break; // cannot extend this segment further
        }
        seg_preds.push(nb.predicate);
        path.push(nb.node);

        // Try to close the current segment here.
        if constraints[seg].admits(graph, nb.node) {
            if let Some(score) = scorer.score(graph, predicates[seg], seg_preds) {
                seg_scores.push(score);
                if seg + 1 == predicates.len() {
                    // Sub-query complete: average segment scores.
                    let total: f64 = seg_scores.iter().sum::<f64>() / seg_scores.len() as f64;
                    let entry = best.entry(nb.node).or_insert(0.0);
                    if total > *entry {
                        *entry = total;
                    }
                } else {
                    let mut next_preds = Vec::new();
                    std::mem::swap(seg_preds, &mut next_preds);
                    dfs(
                        graph,
                        scorer,
                        constraints,
                        predicates,
                        path,
                        seg_preds,
                        seg + 1,
                        seg_scores,
                        best,
                        budget,
                    );
                    std::mem::swap(seg_preds, &mut next_preds);
                }
                seg_scores.pop();
            }
        }

        // Continue extending the current segment (edge-to-path methods).
        dfs(
            graph,
            scorer,
            constraints,
            predicates,
            path,
            seg_preds,
            seg,
            seg_scores,
            best,
            budget,
        );

        path.pop();
        seg_preds.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    /// 1-hop-exact scorer used to exercise the skeleton.
    struct ExactOneHop;
    impl SegmentScorer for ExactOneHop {
        fn max_hops(&self) -> usize {
            1
        }
        fn score(
            &self,
            graph: &KnowledgeGraph,
            query_pred: &str,
            preds: &[PredicateId],
        ) -> Option<f64> {
            (preds.len() == 1 && graph.predicate_name(preds[0]) == query_pred).then_some(1.0)
        }
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("A1", "Auto");
        let a2 = b.add_node("A2", "Auto");
        let de = b.add_node("Germany", "Country");
        let city = b.add_node("Munich", "City");
        b.add_edge(a1, de, "assembly");
        b.add_edge(a2, city, "assembly");
        b.add_edge(city, de, "country");
        b.finish()
    }

    fn q117() -> QueryGraph {
        let mut q = QueryGraph::new();
        let auto = q.add_target("Auto");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de);
        q
    }

    #[test]
    fn one_hop_exact_finds_direct_schema_only() {
        let g = graph();
        let lib = TransformationLibrary::new();
        let answers = run_baseline(&g, &lib, &q117(), 10, NodeMode::Exact, &ExactOneHop);
        assert_eq!(answers.len(), 1);
        assert_eq!(g.node_name(answers[0].node), "A1");
    }

    /// Any-predicate 2-hop scorer: structural methods' behaviour.
    struct AnyTwoHop;
    impl SegmentScorer for AnyTwoHop {
        fn max_hops(&self) -> usize {
            2
        }
        fn score(&self, _: &KnowledgeGraph, _: &str, preds: &[PredicateId]) -> Option<f64> {
            Some(1.0 / preds.len() as f64)
        }
    }

    #[test]
    fn multi_hop_scorer_reaches_indirect_schema() {
        let g = graph();
        let lib = TransformationLibrary::new();
        let answers = run_baseline(&g, &lib, &q117(), 10, NodeMode::Exact, &AnyTwoHop);
        let names: Vec<&str> = answers.iter().map(|a| g.node_name(a.node)).collect();
        assert_eq!(names, vec!["A1", "A2"], "direct hop outranks 2-hop");
    }

    #[test]
    fn similar_mode_uses_library() {
        let g = graph();
        let mut lib = TransformationLibrary::new();
        lib.add_synonym_row("Auto", &["Car"]);
        let mut q = QueryGraph::new();
        let auto = q.add_target("Car");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "assembly", de);
        assert!(run_baseline(&g, &lib, &q, 10, NodeMode::Exact, &ExactOneHop).is_empty());
        let found = run_baseline(&g, &lib, &q, 10, NodeMode::Similar, &ExactOneHop);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn k_truncation_and_ordering() {
        let g = graph();
        let lib = TransformationLibrary::new();
        let answers = run_baseline(&g, &lib, &q117(), 1, NodeMode::Exact, &AnyTwoHop);
        assert_eq!(answers.len(), 1);
        assert_eq!(g.node_name(answers[0].node), "A1");
    }
}
