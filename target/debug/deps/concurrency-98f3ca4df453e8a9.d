/root/repo/target/debug/deps/concurrency-98f3ca4df453e8a9.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-98f3ca4df453e8a9: tests/concurrency.rs

tests/concurrency.rs:
