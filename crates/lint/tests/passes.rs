//! Fixture-based self-tests: for every pass, a known-bad snippet is
//! flagged, and known-good / properly waived snippets come back clean.
//! These run through the full pipeline (`semkg_lint::run`), so waiver
//! resolution and the unused-waiver back-pressure are exercised too.

use semkg_lint::config::{Config, LockDecl};
use semkg_lint::{run, Finding, SourceFile};

/// A config exercising every rule: two ordered locks, an atomic audit
/// surface, a serving path with the index-denied tier, and an
/// answer-affecting module.
fn fixture_config() -> Config {
    Config {
        locks: vec![
            LockDecl {
                class: "outer".into(),
                file: "fixture/serving/locks.rs".into(),
                receivers: vec!["outer_lock".into()],
            },
            LockDecl {
                class: "inner".into(),
                file: "fixture/serving/locks.rs".into(),
                receivers: vec!["inner_lock".into()],
            },
            LockDecl {
                class: "query.state".into(),
                file: "fixture/serving/query.rs".into(),
                receivers: vec!["state".into()],
            },
            LockDecl {
                class: "query.map".into(),
                file: "fixture/serving/query.rs".into(),
                receivers: vec!["map".into()],
            },
        ],
        hierarchy: vec![
            "outer".into(),
            "inner".into(),
            "query.state".into(),
            "query.map".into(),
        ],
        atomic_audit: vec!["fixture/counters.rs".into()],
        panic_paths: vec!["fixture/serving/".into()],
        panic_index_paths: vec!["fixture/serving/front.rs".into()],
        allow_lock_poisoning: true,
        determinism_paths: vec!["fixture/exact.rs".into()],
    }
}

fn lint(path: &str, source: &str) -> Vec<Finding> {
    run(&fixture_config(), &[SourceFile::scan(path, source)])
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// --- lock-order ---------------------------------------------------------

#[test]
fn lock_order_flags_back_edge_and_accepts_forward_nesting() {
    let bad = "fn f(&self) {\n    let b = self.inner_lock.lock().unwrap();\n    let a = self.outer_lock.lock().unwrap();\n}\n";
    let findings = lint("fixture/serving/locks.rs", bad);
    assert_eq!(rules(&findings), vec!["lock-order"], "{findings:?}");
    assert!(findings[0].message.contains("hierarchy"));

    let good = "fn f(&self) {\n    let a = self.outer_lock.lock().unwrap();\n    let b = self.inner_lock.lock().unwrap();\n}\n";
    assert!(lint("fixture/serving/locks.rs", good).is_empty());
}

#[test]
fn lock_order_flags_undeclared_mutex() {
    let bad = "fn f(&self) {\n    let g = self.mystery.lock().unwrap();\n}\n";
    let findings = lint("fixture/serving/locks.rs", bad);
    assert_eq!(rules(&findings), vec!["lock-order"]);
    assert!(findings[0].message.contains("undeclared"));
}

#[test]
fn lock_order_waiver_suppresses() {
    let waived = "fn f(&self) {\n    let b = self.inner_lock.lock().unwrap();\n    let a = self.outer_lock.lock().unwrap(); // lint-ok(lock-order): startup-only path, single-threaded at this point\n}\n";
    assert!(lint("fixture/serving/locks.rs", waived).is_empty());
}

// --- atomic-ordering ----------------------------------------------------

#[test]
fn atomic_ordering_flags_unwaived_relaxed_on_audit_surface() {
    let bad = "fn f(&self) {\n    self.hits.fetch_add(1, Ordering::Relaxed);\n}\n";
    assert_eq!(
        rules(&lint("fixture/counters.rs", bad)),
        vec!["atomic-ordering"]
    );
    // The same code outside the audit surface is clean.
    assert!(lint("fixture/other.rs", bad).is_empty());
}

#[test]
fn atomic_ordering_flags_seqcst_everywhere() {
    let bad = "fn f(&self) {\n    self.flag.store(true, Ordering::SeqCst);\n}\n";
    assert_eq!(
        rules(&lint("fixture/other.rs", bad)),
        vec!["atomic-ordering"]
    );
}

#[test]
fn atomic_ordering_waiver_and_acq_rel_are_clean() {
    let ok = "fn f(&self) {\n    self.hits.fetch_add(1, Ordering::Relaxed); // lint-ok(atomic-ordering): monotone counter, no decision reads it\n    self.flag.store(true, Ordering::Release);\n    let v = self.flag.load(Ordering::Acquire);\n}\n";
    assert!(lint("fixture/counters.rs", ok).is_empty());
}

// --- panic-freedom ------------------------------------------------------

#[test]
fn panic_freedom_flags_unwrap_expect_and_macros() {
    let bad = "fn f() {\n    let v = maybe.unwrap();\n    let w = maybe.expect(\"present\");\n    panic!(\"boom\");\n    unreachable!();\n}\n";
    let findings = lint("fixture/serving/query.rs", bad);
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "panic-freedom"));
    // Same code off the serving paths is clean.
    assert!(lint("fixture/other.rs", bad).is_empty());
}

#[test]
fn panic_freedom_pre_waives_lock_poisoning() {
    let ok = "fn f(&self) {\n    let g = self.state.lock().unwrap();\n    let r = self.map.read().unwrap();\n    guard = self.cv.wait(guard).unwrap();\n}\n";
    assert!(lint("fixture/serving/query.rs", ok).is_empty());
}

#[test]
fn panic_freedom_flags_slice_index_only_in_front_tier() {
    let code = "fn f(counts: &mut [u64], i: usize) {\n    counts[i] += 1;\n}\n";
    assert_eq!(
        rules(&lint("fixture/serving/front.rs", code)),
        vec!["panic-freedom"]
    );
    assert!(lint("fixture/serving/kernel.rs", code).is_empty());
}

#[test]
fn panic_freedom_skips_test_code_and_strings() {
    let ok = "fn f() -> &'static str {\n    \"panic! unwrap()\"\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        maybe.unwrap();\n        panic!(\"test-only\");\n    }\n}\n";
    assert!(lint("fixture/serving/query.rs", ok).is_empty());
}

// --- determinism --------------------------------------------------------

#[test]
fn determinism_flags_clock_and_std_hash_iteration() {
    let bad = "fn f() {\n    let t = Instant::now();\n    let m: HashMap<u32, u32> = HashMap::new();\n    let s: HashSet<u32> = HashSet::new();\n}\n";
    let findings = lint("fixture/exact.rs", bad);
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "determinism"));
}

#[test]
fn determinism_accepts_fx_maps_and_waived_telemetry() {
    let ok = "fn f() {\n    let m: FxHashMap<u32, u32> = FxHashMap::default();\n    let s: FxHashSet<u32> = FxHashSet::default();\n    let t = Instant::now(); // lint-ok(determinism): telemetry only, never feeds results\n}\n";
    assert!(lint("fixture/exact.rs", ok).is_empty());
}

// --- unsafe-audit -------------------------------------------------------

#[test]
fn unsafe_audit_requires_safety_comment() {
    let bad = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules(&lint("fixture/other.rs", bad)), vec!["unsafe-audit"]);

    let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract — p is valid for reads.\n    unsafe { *p }\n}\n";
    assert!(lint("fixture/other.rs", ok).is_empty());
}

// --- waiver hygiene -----------------------------------------------------

#[test]
fn waiver_without_reason_is_rejected() {
    let bad = "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // lint-ok(unsafe-audit)\n}\n";
    let findings = lint("fixture/other.rs", bad);
    assert_eq!(rules(&findings), vec!["waiver-reason"], "{findings:?}");
}

#[test]
fn unused_waiver_is_rejected() {
    let bad = "fn f() {\n    let x = 1; // lint-ok(panic-freedom): nothing to suppress here\n}\n";
    let findings = lint("fixture/serving/query.rs", bad);
    assert_eq!(rules(&findings), vec!["unused-waiver"]);
}

#[test]
fn standalone_waiver_covers_the_next_code_line() {
    let ok = "fn f() {\n    // lint-ok(panic-freedom): upheld by construction in new()\n    let v = maybe.unwrap();\n}\n";
    assert!(lint("fixture/serving/query.rs", ok).is_empty());
}
