//! TransE (Bordes et al., NIPS 2013) — the embedding model the paper selects
//! for its experiments (§VII-A: "we selected the TransE model to obtain the
//! predicate semantic space").
//!
//! TransE models a relation as a translation in the embedding space:
//! `h + r ≈ t` for true triples. The plausibility score is the negated
//! squared L2 distance `−‖h + r − t‖²`; training minimises the margin
//! ranking loss against corrupted triples.

use crate::model::{row, row_mut, xavier_init, IdxTriple, KgeModel};
use crate::vector;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// TransE parameters: one flat matrix per element class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransE {
    dim: usize,
    entities: Vec<f32>,
    relations: Vec<f32>,
}

impl TransE {
    /// `h + r − t` into `out`.
    #[inline]
    fn delta(&self, (h, r, t): IdxTriple, out: &mut [f32]) {
        let hv = row(&self.entities, self.dim, h);
        let rv = row(&self.relations, self.dim, r);
        let tv = row(&self.entities, self.dim, t);
        for i in 0..self.dim {
            out[i] = hv[i] + rv[i] - tv[i];
        }
    }

    /// Number of entity rows.
    pub fn entity_count(&self) -> usize {
        self.entities.len() / self.dim
    }

    /// Number of relation rows.
    pub fn relation_count(&self) -> usize {
        self.relations.len() / self.dim
    }
}

impl KgeModel for TransE {
    fn init(n_entities: usize, n_relations: usize, dim: usize, rng: &mut StdRng) -> Self {
        let entities = xavier_init(dim, n_entities * dim, rng);
        let mut relations = xavier_init(dim, n_relations * dim, rng);
        // The TransE paper normalises relation vectors once at init.
        for r in 0..n_relations {
            vector::normalize(row_mut(&mut relations, dim, r));
        }
        Self {
            dim,
            entities,
            relations,
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn score(&self, triple: IdxTriple) -> f32 {
        let mut d = vec![0.0; self.dim];
        self.delta(triple, &mut d);
        -vector::dot(&d, &d)
    }

    fn sgd_step(&mut self, pos: IdxTriple, neg: IdxTriple, lr: f32, margin: f32) -> f32 {
        let mut dp = vec![0.0; self.dim];
        let mut dn = vec![0.0; self.dim];
        self.delta(pos, &mut dp);
        self.delta(neg, &mut dn);
        let d_pos = vector::dot(&dp, &dp);
        let d_neg = vector::dot(&dn, &dn);
        let loss = margin + d_pos - d_neg;
        if loss <= 0.0 {
            return 0.0;
        }
        // ∂‖h+r−t‖²/∂h = 2Δ, ∂/∂t = −2Δ, ∂/∂r = 2Δ. Descend on the positive
        // distance, ascend on the negative one. Updates are applied
        // sequentially so overlapping rows (shared head/tail, self-loops)
        // accumulate correctly.
        let step = 2.0 * lr;
        let (hp, rp, tp) = pos;
        let (hn, rn, tn) = neg;
        vector::axpy(row_mut(&mut self.entities, self.dim, hp), -step, &dp);
        vector::axpy(row_mut(&mut self.entities, self.dim, tp), step, &dp);
        vector::axpy(row_mut(&mut self.relations, self.dim, rp), -step, &dp);
        vector::axpy(row_mut(&mut self.entities, self.dim, hn), step, &dn);
        vector::axpy(row_mut(&mut self.entities, self.dim, tn), -step, &dn);
        vector::axpy(row_mut(&mut self.relations, self.dim, rn), step, &dn);
        loss
    }

    fn constrain(&mut self) {
        for e in 0..self.entity_count() {
            vector::project_to_unit_ball(row_mut(&mut self.entities, self.dim, e));
        }
    }

    fn relation_embedding(&self, r: usize) -> &[f32] {
        row(&self.relations, self.dim, r)
    }

    fn entity_embedding(&self, e: usize) -> &[f32] {
        row(&self.entities, self.dim, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> TransE {
        let mut rng = StdRng::seed_from_u64(7);
        TransE::init(6, 3, 8, &mut rng)
    }

    #[test]
    fn init_shapes() {
        let m = model();
        assert_eq!(m.entity_count(), 6);
        assert_eq!(m.relation_count(), 3);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.relation_embedding(2).len(), 8);
        // Relations are unit-normalised at init.
        assert!((vector::norm(m.relation_embedding(0)) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn score_is_negated_distance() {
        let m = model();
        assert!(m.score((0, 0, 1)) <= 0.0);
        // Identical endpoints: distance = ‖r‖² exactly.
        let r = vector::dot(m.relation_embedding(0), m.relation_embedding(0));
        assert!((m.score((2, 0, 2)) + r).abs() < 1e-5);
    }

    #[test]
    fn sgd_reduces_positive_distance() {
        let mut m = model();
        let pos = (0, 0, 1);
        let neg = (0, 0, 2);
        let before = -m.score(pos);
        for _ in 0..50 {
            m.sgd_step(pos, neg, 0.05, 1.0);
        }
        let after = -m.score(pos);
        assert!(
            after < before,
            "positive distance should shrink: {before} -> {after}"
        );
    }

    #[test]
    fn satisfied_margin_is_a_noop() {
        let mut m = model();
        // Drive the pair well past the margin first.
        for _ in 0..300 {
            m.sgd_step((0, 0, 1), (0, 0, 2), 0.05, 0.5);
        }
        let snapshot = m.entities.clone();
        let loss = m.sgd_step((0, 0, 1), (0, 0, 2), 0.05, 0.5);
        assert_eq!(loss, 0.0);
        assert_eq!(m.entities, snapshot, "no parameters move at zero loss");
    }

    #[test]
    fn constrain_projects_entities() {
        let mut m = model();
        for x in m.entities.iter_mut() {
            *x *= 100.0;
        }
        m.constrain();
        for e in 0..m.entity_count() {
            assert!(vector::norm(m.entity_embedding(e)) <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn self_loop_triples_do_not_panic() {
        let mut m = model();
        let loss = m.sgd_step((3, 1, 3), (3, 1, 4), 0.01, 1.0);
        assert!(loss >= 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = TransE::init(4, 2, 6, &mut r1);
        let b = TransE::init(4, 2, 6, &mut r2);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.relations, b.relations);
    }
}
