//! The lint passes. Each pass is a free function
//! `check(&Config, &SourceFile) -> Vec<Finding>` over masked lines; waiver
//! suppression happens in [`crate::run`], not here.

pub mod atomic_ordering;
pub mod determinism;
pub mod lock_order;
pub mod panic_freedom;
pub mod unsafe_audit;

use crate::lexer::is_ident_byte;

/// Byte offsets of word-boundary occurrences of `token` in `code`: the
/// character before the match must not be an identifier character (so
/// `HashMap` does not match inside `FxHashMap`), and when the token ends in
/// an identifier character the one after must not be either.
pub(crate) fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let tbytes = token.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let pre_ok =
            !is_ident_byte(tbytes[0]) || at == 0 || !is_ident_byte(code.as_bytes()[at - 1]);
        let end = at + token.len();
        let post_ok = !is_ident_byte(tbytes[tbytes.len() - 1])
            || end >= code.len()
            || !is_ident_byte(code.as_bytes()[end]);
        if pre_ok && post_ok {
            out.push(at);
        }
        start = at + token.len();
    }
    out
}

/// Whether `path` falls under any of the configured path fragments.
pub(crate) fn path_matches(path: &str, fragments: &[String]) -> bool {
    fragments.iter().any(|f| path.contains(f.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_positions_respect_word_boundaries() {
        assert_eq!(token_positions("HashMap<u32, u32>", "HashMap"), vec![0]);
        assert!(token_positions("FxHashMap<u32, u32>", "HashMap").is_empty());
        assert!(token_positions("HashMapLike", "HashMap").is_empty());
        assert_eq!(token_positions("x.unwrap();", ".unwrap()"), vec![1]);
    }
}
