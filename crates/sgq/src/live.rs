//! Live query service: the multi-client front-end over a
//! [`VersionedGraph`].
//!
//! [`LiveQueryService`] is [`crate::QueryService`]'s sibling for graphs
//! that change underneath the traffic. The moving part is the **epoch
//! engine**: one `Arc<SgqEngine<GraphSnapshot>>` built against one
//! published epoch. Every query *pins* the current epoch engine for its
//! whole execution — a commit or compaction landing mid-query cannot tear
//! its view — and the service lazily swaps in a fresh engine when it
//! observes a newer epoch (one lock-free atomic compare per query on the
//! fast path).
//!
//! Consistency contract:
//!
//! * an ad-hoc query sees the **newest committed epoch** at the moment it
//!   starts, and exactly that epoch until it finishes;
//! * a [`LivePreparedQuery`] pins the epoch it was prepared against for its
//!   whole lifetime: executing it is **bit-identical** before and after any
//!   number of later commits (re-prepare to pick up new data);
//! * the similarity-row cache is shared *across* epoch engines (rows
//!   survive commits; vocabulary growth invalidates them — see
//!   [`SimilarityIndex::ensure_vocab`]).
//!
//! Engine rebuild cost per adopted epoch is `O(n)` (φ-index) plus
//! `O(n + m)` (degree statistics) — amortised over all queries between
//! commits, not paid per query.

use crate::answer::QueryResult;
use crate::config::SgqConfig;
use crate::engine::{PreparedQuery, SgqEngine};
use crate::error::Result;
use crate::query::QueryGraph;
use crate::runtime::WorkerPool;
use crate::semgraph::weight_transform;
use crate::service::{ServiceCounters, ServiceStats};
use crate::timebound::TimeBoundConfig;
use embedding::{PredicateSpace, SimilarityIndex, SimilarityIndexStats};
use kgraph::{GraphSnapshot, VersionedGraph};
use lexicon::TransformationLibrary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An engine pinned to one published epoch of the versioned graph.
pub type EpochEngine<'a> = SgqEngine<'a, GraphSnapshot>;

/// A prepared query pinned — together with the engine that compiled it —
/// to the epoch it was prepared against. Executions replay bit-identically
/// regardless of commits that happened since; call
/// [`LiveQueryService::prepare`] again to adopt newer data.
pub struct LivePreparedQuery<'a> {
    prepared: PreparedQuery,
    engine: Arc<EpochEngine<'a>>,
}

impl<'a> LivePreparedQuery<'a> {
    /// The epoch this query is pinned to.
    pub fn epoch(&self) -> u64 {
        self.engine.graph().epoch()
    }

    /// The underlying compiled query.
    pub fn prepared(&self) -> &PreparedQuery {
        &self.prepared
    }
}

/// A query front-end serving many concurrent clients over a live,
/// versioned graph (see module docs).
pub struct LiveQueryService<'a> {
    versioned: Arc<VersionedGraph>,
    space: &'a PredicateSpace,
    library: &'a TransformationLibrary,
    config: SgqConfig,
    /// Shared across epoch engines so similarity rows survive commits.
    sim_index: Arc<SimilarityIndex<'a>>,
    /// Shared across epoch engines so adopting an epoch spawns no threads.
    pool: Arc<WorkerPool>,
    /// The engine for the newest adopted epoch.
    current: RwLock<Arc<EpochEngine<'a>>>,
    /// Serialises engine rebuilds so racing clients build one engine, not N.
    rebuild: Mutex<()>,
    counters: ServiceCounters,
    refreshes: AtomicU64,
}

impl<'a> LiveQueryService<'a> {
    /// Builds the service and its first epoch engine from the currently
    /// published snapshot.
    pub fn new(
        versioned: Arc<VersionedGraph>,
        space: &'a PredicateSpace,
        library: &'a TransformationLibrary,
        config: SgqConfig,
    ) -> Self {
        let sim_index = Arc::new(SimilarityIndex::with_transform(space, weight_transform));
        let pool = Arc::new(WorkerPool::new(SgqEngine::<GraphSnapshot>::pool_size(
            &config,
        )));
        let engine = Arc::new(SgqEngine::with_runtime(
            versioned.snapshot(),
            space,
            library,
            config.clone(),
            Arc::clone(&sim_index),
            Arc::clone(&pool),
        ));
        Self {
            versioned,
            space,
            library,
            config,
            sim_index,
            pool,
            current: RwLock::new(engine),
            rebuild: Mutex::new(()),
            counters: ServiceCounters::default(),
            refreshes: AtomicU64::new(0),
        }
    }

    /// The underlying versioned store (hand this to your writer thread).
    pub fn versioned(&self) -> &Arc<VersionedGraph> {
        &self.versioned
    }

    /// Pins the newest adopted epoch's engine. If the store has published a
    /// newer epoch, one caller rebuilds the engine (others keep serving the
    /// previous epoch rather than queueing behind the rebuild).
    pub fn pin(&self) -> Arc<EpochEngine<'a>> {
        let current = self.current.read().unwrap().clone();
        let newest = self.versioned.epoch();
        if current.graph().epoch() == newest {
            return current;
        }
        // Stale: adopt the new epoch, but only once — losers of the
        // try_lock race answer from the epoch they already hold.
        let Ok(_guard) = self.rebuild.try_lock() else {
            return current;
        };
        let current = self.current.read().unwrap().clone();
        if current.graph().epoch() == self.versioned.epoch() {
            return current;
        }
        let engine = Arc::new(SgqEngine::with_runtime(
            self.versioned.snapshot(),
            self.space,
            self.library,
            self.config.clone(),
            Arc::clone(&self.sim_index),
            Arc::clone(&self.pool),
        ));
        *self.current.write().unwrap() = Arc::clone(&engine);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        engine
    }

    /// Blocks until the adopted epoch is at least the one published when
    /// `refresh` was called, then returns the adopted epoch. Useful after a
    /// commit when the writer wants the next query to observe its changes
    /// for sure. Bounded: commits landing *after* the call don't extend the
    /// wait, so a writer outpacing engine rebuilds cannot starve it.
    pub fn refresh(&self) -> u64 {
        let target = self.versioned.epoch();
        loop {
            let pinned = self.pin();
            let epoch = pinned.graph().epoch();
            if epoch >= target {
                return epoch;
            }
            // A concurrent rebuild was in flight; wait our turn.
            let _guard = self.rebuild.lock().unwrap();
        }
    }

    /// Exact top-k query (SGQ) against the newest adopted epoch.
    pub fn query(&self, query: &QueryGraph) -> Result<QueryResult> {
        self.counters.record(self.pin().query(query), false)
    }

    /// Time-bounded approximate query (TBQ) against the newest epoch.
    pub fn query_time_bounded(
        &self,
        query: &QueryGraph,
        tb: &TimeBoundConfig,
    ) -> Result<QueryResult> {
        self.counters
            .record(self.pin().query_time_bounded(query, tb), true)
    }

    /// Compiles a query against the newest adopted epoch; the returned
    /// handle stays pinned there (see [`LivePreparedQuery`]).
    pub fn prepare(&self, query: &QueryGraph) -> Result<LivePreparedQuery<'a>> {
        let engine = self.pin();
        let prepared = engine.prepare(query)?;
        Ok(LivePreparedQuery { prepared, engine })
    }

    /// Executes a prepared query on its pinned epoch (bit-identical replay
    /// regardless of commits since preparation).
    pub fn execute(&self, prepared: &LivePreparedQuery<'a>) -> Result<QueryResult> {
        self.counters
            .record(prepared.engine.execute(&prepared.prepared), false)
    }

    /// Executes a prepared query on its pinned epoch under a time bound.
    pub fn execute_time_bounded(
        &self,
        prepared: &LivePreparedQuery<'a>,
        tb: &TimeBoundConfig,
    ) -> Result<QueryResult> {
        self.counters.record(
            prepared.engine.execute_time_bounded(&prepared.prepared, tb),
            true,
        )
    }

    /// Aggregated counters, including the live epoch/delta gauges.
    pub fn stats(&self) -> ServiceStats {
        let engine = self.current.read().unwrap().clone();
        let snapshot = engine.graph();
        ServiceStats {
            epoch: snapshot.epoch(),
            engine_refreshes: self.refreshes.load(Ordering::Relaxed),
            delta_edges: snapshot.delta_added_edges() as u64,
            delta_tombstones: snapshot.tombstone_count() as u64,
            ..self.counters.snapshot()
        }
    }

    /// Similarity-row cache counters of the shared cross-epoch index.
    pub fn similarity_stats(&self) -> SimilarityIndexStats {
        self.sim_index.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{GraphBuilder, GraphView, KnowledgeGraph};

    fn fixture() -> (KnowledgeGraph, PredicateSpace, TransformationLibrary) {
        let mut b = GraphBuilder::new();
        let audi = b.add_node("Audi_TT", "Automobile");
        let bmw = b.add_node("BMW_320", "Automobile");
        let de = b.add_node("Germany", "Country");
        b.add_edge(audi, de, "assembly");
        b.add_edge(bmw, de, "product");
        let g = b.finish();
        let (vecs, labels): (Vec<Vec<f32>>, Vec<String>) = g
            .predicates()
            .map(|(_, l)| (vec![1.0f32, 0.0], l.to_string()))
            .unzip();
        let space = PredicateSpace::from_raw(vecs, labels);
        (g, space, TransformationLibrary::new())
    }

    fn product_query() -> QueryGraph {
        let mut q = QueryGraph::new();
        let auto = q.add_target("Automobile");
        let de = q.add_specific("Germany", "Country");
        q.add_edge(auto, "product", de);
        q
    }

    fn config() -> SgqConfig {
        SgqConfig {
            k: 10,
            tau: 0.0,
            workers: 2,
            ..SgqConfig::default()
        }
    }

    #[test]
    fn adhoc_queries_observe_commits() {
        let (g, space, lib) = fixture();
        let service =
            LiveQueryService::new(Arc::new(VersionedGraph::new(g)), &space, &lib, config());
        assert_eq!(service.query(&product_query()).unwrap().matches.len(), 2);

        let v = Arc::clone(service.versioned());
        v.insert_triple(
            ("Lamando", "Automobile"),
            "assembly",
            ("Germany", "Country"),
        );
        // Staged only: still 2 answers.
        assert_eq!(service.query(&product_query()).unwrap().matches.len(), 2);
        v.commit();
        assert_eq!(service.query(&product_query()).unwrap().matches.len(), 3);

        let stats = service.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.engine_refreshes, 1);
        assert_eq!(stats.delta_edges, 1);
        assert_eq!(stats.delta_tombstones, 0);
    }

    #[test]
    fn prepared_queries_stay_pinned_to_their_epoch() {
        let (g, space, lib) = fixture();
        let service =
            LiveQueryService::new(Arc::new(VersionedGraph::new(g)), &space, &lib, config());
        let prepared = service.prepare(&product_query()).unwrap();
        assert_eq!(prepared.epoch(), 0);
        let before = service.execute(&prepared).unwrap();

        let v = Arc::clone(service.versioned());
        v.insert_triple(
            ("Lamando", "Automobile"),
            "assembly",
            ("Germany", "Country"),
        );
        v.delete_triple("BMW_320", "product", "Germany");
        v.commit();
        assert_eq!(service.refresh(), 1);

        // Bit-identical replay on the pinned epoch…
        let after = service.execute(&prepared).unwrap();
        assert_eq!(after.matches, before.matches);
        assert_eq!(prepared.epoch(), 0);
        // …while a re-prepare adopts the new epoch and new answers.
        let repinned = service.prepare(&product_query()).unwrap();
        assert_eq!(repinned.epoch(), 1);
        let fresh = service.execute(&repinned).unwrap();
        assert_ne!(fresh.matches, before.matches);
        let names: Vec<&str> = fresh
            .matches
            .iter()
            .map(|m| repinned.engine.graph().node_name(m.pivot))
            .collect();
        assert!(names.contains(&"Lamando"));
        assert!(!names.contains(&"BMW_320"));
    }

    #[test]
    fn compaction_is_transparent_to_results() {
        let (g, space, lib) = fixture();
        let service =
            LiveQueryService::new(Arc::new(VersionedGraph::new(g)), &space, &lib, config());
        let v = Arc::clone(service.versioned());
        v.insert_triple(
            ("Lamando", "Automobile"),
            "assembly",
            ("Germany", "Country"),
        );
        v.commit();
        let overlayed = service.query(&product_query()).unwrap();
        v.compact();
        let compacted = service.query(&product_query()).unwrap();
        assert_eq!(service.stats().epoch, 2);
        assert_eq!(
            service.stats().delta_edges,
            0,
            "compaction drained the overlay"
        );
        assert_eq!(compacted.matches.len(), overlayed.matches.len());
        for (a, b) in overlayed.matches.iter().zip(&compacted.matches) {
            assert_eq!(a.pivot, b.pivot, "node ids survive compaction");
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn vocabulary_growth_invalidates_shared_rows() {
        let (g, space, lib) = fixture();
        let service =
            LiveQueryService::new(Arc::new(VersionedGraph::new(g)), &space, &lib, config());
        let _ = service.query(&product_query()).unwrap();
        assert_eq!(service.similarity_stats().invalidations, 0);

        let v = Arc::clone(service.versioned());
        v.insert_triple(("Peter", "Person"), "designer", ("Audi_TT", "Automobile"));
        v.commit();
        let _ = service.query(&product_query()).unwrap();
        let sim = service.similarity_stats();
        assert_eq!(
            sim.invalidations, 1,
            "new predicate grew the vocabulary: {sim:?}"
        );

        // A query *using* the live-added predicate answers through its
        // identity row (exact-label matches only).
        let mut q = QueryGraph::new();
        let person = q.add_target("Person");
        let audi = q.add_specific("Audi_TT", "Automobile");
        q.add_edge(person, "designer", audi);
        let r = service.query(&q).unwrap();
        assert_eq!(r.matches.len(), 1);
        assert!((r.matches[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_are_counted() {
        let (g, space, lib) = fixture();
        let service = LiveQueryService::new(
            Arc::new(VersionedGraph::new(g)),
            &space,
            &lib,
            SgqConfig {
                k: 0, // invalid
                ..SgqConfig::default()
            },
        );
        assert!(service.query(&product_query()).is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.queries, 0);
    }
}
