/root/repo/target/debug/deps/repro-8360bdceef94207f.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-8360bdceef94207f.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
